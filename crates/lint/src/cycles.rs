//! Critical-cycle delay-set analysis and race classification.
//!
//! [`LintReport`] answers *whether* two accesses may race; this module
//! answers *what kind* of race it would be and *what ordering work* the
//! hardware must do. Following Shasha–Snir delay-set analysis, it builds
//! a static **conflict graph** whose nodes are the abstract accesses the
//! interpreter resolves: **program-order edges** (CFG reachability
//! within one processor) and **conflict edges** (cross-processor
//! overlapping accesses, at least one write). Mixed cycles through that
//! graph — each processor contributing one access or a program-ordered
//! pair — are the executions weak hardware can realize out of order; the
//! po edges of cycles that run through an `sc-also` conflict are the
//! **delay set** a `Fence` cover must enforce.
//!
//! # Classification
//!
//! Every may-race key is tagged:
//!
//! * **`weak-only`** — a static ordering witness ties the two sides to
//!   the program's synchronization skeleton, so on hardware obeying the
//!   paper's Condition 3.4 the pair is ordered (or mutually excluded)
//!   in every execution and only the *static* analysis, not the
//!   hardware, can realize the race. Three witnesses are recognized:
//!   1. **lock** — both sides must-hold a common `Test&Set` lock;
//!   2. **sync chain** — one side is (or is post-dominated by) a
//!      synchronization write of some location `L` and the other side
//!      is dominated by a *checked* synchronization read of `L` (a
//!      sync read whose value feeds a branch before being clobbered —
//!      the spin/guard idiom), i.e. a release→confirmed-acquire handoff
//!      orders the pair exactly as the detector's `hb1` would;
//!   3. **mutual guard** — each side executes only behind a checked
//!      sync read of a location the *other* processor sync-writes (the
//!      Dekker entry-protocol shape: the pair is mutually excluded
//!      under any sequentially consistent interleaving of the guards).
//! * **`sc-also`** — no witness: the race needs no weak-memory
//!   reordering to manifest, so fences cannot remove it (a fence orders
//!   accesses, it does not create `hb1` edges); repair must strengthen
//!   the accesses into synchronization operations instead.
//!
//! The witnesses are deliberately syntactic — no value reasoning — and
//! therefore heuristic in the `weak-only` direction; the
//! `explore --verify-repair` harness keeps them honest dynamically by
//! re-running every repaired program across all hardware backends.
//!
//! # Bounds
//!
//! Cycle enumeration is exact but bounded: every cycle visits each
//! processor at most once and contributes at most two accesses per
//! processor (minimal critical cycles need no more), only accesses with
//! statically resolved addresses participate, and at most
//! [`MAX_CYCLES`] distinct cycles are collected (`capped` reports
//! truncation). Pairs with an unresolved side are address-approximation
//! artifacts; they are classified but excluded from the delay set and
//! from repair (see DESIGN.md §11).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};
use wmrd_core::RaceKey;
use wmrd_sim::{Addr, Instr, Program};
use wmrd_trace::{Location, ProcId};

use crate::absint::Access;
use crate::cfg::Cfg;
use crate::report::LintReport;

/// Cap on distinct enumerated cycles; `CycleReport::capped` records a
/// hit. Generous: the whole catalog stays far below it.
pub const MAX_CYCLES: usize = 4096;

/// The two race classes of a may-race key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RaceClass {
    /// No ordering witness: the race can manifest under sequential
    /// consistency; repair requires sync strengthening, not fences.
    #[serde(rename = "sc-also")]
    ScAlso,
    /// A static witness orders or excludes the pair on conforming
    /// hardware: only weak reordering (or static over-approximation)
    /// realizes it.
    #[serde(rename = "weak-only")]
    WeakOnly,
}

impl fmt::Display for RaceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceClass::ScAlso => write!(f, "sc-also"),
            RaceClass::WeakOnly => write!(f, "weak-only"),
        }
    }
}

/// Why a pair (and hence a key) classifies `weak-only`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "kebab-case")]
pub enum Witness {
    /// Both sides must-hold this lock.
    Lock {
        /// The common must-held lock word.
        loc: Location,
    },
    /// Release→confirmed-acquire handoff through this location.
    SyncChain {
        /// The synchronization location carrying the handoff.
        loc: Location,
    },
    /// Dekker-style mutual guards on these two locations.
    MutualGuard {
        /// Location guarding the lower-processor side.
        a: Location,
        /// Location guarding the other side.
        b: Location,
    },
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Witness::Lock { loc } => write!(f, "lock {loc}"),
            Witness::SyncChain { loc } => write!(f, "sync chain via {loc}"),
            Witness::MutualGuard { a, b } => write!(f, "mutual guard {a}/{b}"),
        }
    }
}

/// One classified may-race key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyClass {
    /// The race identity, as in [`LintReport::keys`].
    pub key: RaceKey,
    /// Its class.
    pub class: RaceClass,
    /// The witness, for `weak-only` keys.
    pub witness: Option<Witness>,
    /// Distinct enumerated cycles through any conflict edge
    /// contributing this key.
    pub cycles: usize,
}

/// A program-order edge of some enumerated cycle: the Shasha–Snir
/// *delay* — hardware must globally perform `from` before `to`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DelayPair {
    /// The processor both ends execute on.
    pub proc: ProcId,
    /// Instruction index performed first.
    pub from: usize,
    /// Instruction index that must wait.
    pub to: usize,
    /// `true` iff conforming hardware already enforces the delay: the
    /// first end is a synchronization operation, the second is a
    /// synchronization write, or every path between them crosses a
    /// fence or synchronization operation.
    pub enforced: bool,
    /// `true` iff the delay lies on a cycle through an `sc-also`
    /// conflict — the class a fence cover must enforce.
    pub critical: bool,
}

/// The cycle/classification report layered over a [`LintReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleReport {
    /// Name of the analyzed program.
    pub program: String,
    /// Distinct cycles enumerated (over resolved accesses).
    pub cycles: usize,
    /// `true` iff enumeration stopped at [`MAX_CYCLES`].
    pub capped: bool,
    /// Classified keys, in [`LintReport::keys`] order.
    pub classes: Vec<KeyClass>,
    /// The delay set, deduplicated and ordered.
    pub delays: Vec<DelayPair>,
    /// Number of `sc-also` keys.
    pub sc_also: usize,
    /// Number of `weak-only` keys.
    pub weak_only: usize,
}

impl CycleReport {
    /// The classification of `key`, if it is in the may-race set.
    pub fn class_of(&self, key: &RaceKey) -> Option<RaceClass> {
        self.classes.iter().find(|c| &c.key == key).map(|c| c.class)
    }

    /// Delay pairs that are critical (on an `sc-also` cycle) and not
    /// already hardware-enforced — the fence-synthesis obligation.
    pub fn uncovered_delays(&self) -> impl Iterator<Item = &DelayPair> {
        self.delays.iter().filter(|d| d.critical && !d.enforced)
    }

    /// Renders the classification as human-readable text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let capped = if self.capped { " (capped)" } else { "" };
        let _ = writeln!(
            out,
            "cycle classification for '{}' ({} cycle(s){capped}, {} key(s): {} sc-also, {} weak-only)",
            self.program,
            self.cycles,
            self.classes.len(),
            self.sc_also,
            self.weak_only
        );
        let critical = self.delays.iter().filter(|d| d.critical).count();
        let uncovered = self.uncovered_delays().count();
        let _ = writeln!(
            out,
            "  delay set: {} pair(s) ({} critical, {} uncovered)",
            self.delays.len(),
            critical,
            uncovered
        );
        for d in self.delays.iter().filter(|d| d.critical) {
            let state = if d.enforced { "enforced" } else { "UNCOVERED" };
            let _ = writeln!(out, "    delay {}@{} -> @{} [{}]", d.proc, d.from, d.to, state);
        }
        for c in &self.classes {
            let why = match (&c.class, &c.witness) {
                (RaceClass::WeakOnly, Some(w)) => format!(" ({w})"),
                _ => String::new(),
            };
            let _ = writeln!(
                out,
                "  {}: {} x {} -> {}{}, {} cycle(s)",
                c.key.loc,
                side(&c.key.a),
                side(&c.key.b),
                c.class,
                why,
                c.cycles
            );
        }
        out
    }
}

fn side(s: &wmrd_core::SideKey) -> String {
    let class = if s.sync { "sync" } else { "data" };
    format!("{} {} {}", s.proc, s.kind, class)
}

/// The per-program static skeleton shared by classification and repair:
/// CFGs, accesses, reachability and the sync-ordering dataflows.
#[derive(Debug)]
pub(crate) struct Skeleton {
    pub(crate) cfgs: Vec<Cfg>,
    /// Per-processor instruction streams (fence positions feed the
    /// delay-enforcement check).
    pub(crate) code: Vec<Vec<Instr>>,
    /// Accesses grouped by processor, each in pc order.
    pub(crate) accesses: Vec<Vec<Access>>,
    /// `reach[p][i][j]`: a CFG path leads from pc `i` to pc `j` (i ≠ j
    /// allowed to both hold on loops; `i == j` only via a cycle).
    reach: Vec<Vec<Vec<bool>>>,
    /// `rel_after[p][pc]`: locations a sync *write* of which lies on
    /// every path strictly after `pc`.
    rel_after: Vec<Vec<BTreeSet<Location>>>,
    /// `acq_before[p][pc]`: locations a *checked* sync read of which
    /// lies on every path strictly before `pc`.
    acq_before: Vec<Vec<BTreeSet<Location>>>,
    /// `checked[p][pc]`: pc is a sync read whose value feeds a branch
    /// before being clobbered.
    checked: Vec<Vec<bool>>,
    /// Locations each processor sync-writes at a resolved address.
    sync_writes: Vec<BTreeSet<Location>>,
    /// Locations some processor `test&set`s — lock-protocol words, whose
    /// handoffs order outside accesses only conditionally (see
    /// [`Skeleton::witness`]).
    lock_like: BTreeSet<Location>,
    /// Locations with a nonzero initial value. A `test&set` of such a
    /// word confirms a *release happened* (only an `unset` can make the
    /// spin exit), so its handoff is ordering even without conflicting
    /// sections — the Figure 1b shape.
    init_nonzero: BTreeSet<Location>,
}

impl Skeleton {
    pub(crate) fn build(program: &Program) -> Self {
        let mut cfgs = Vec::new();
        let mut codes = Vec::new();
        let mut accesses = Vec::new();
        let mut reach = Vec::new();
        let mut rel_after = Vec::new();
        let mut acq_before = Vec::new();
        let mut checked = Vec::new();
        let mut sync_writes = Vec::new();
        let lock_like: BTreeSet<Location> = program
            .procs()
            .iter()
            .flatten()
            .filter_map(|i| match i {
                Instr::TestSet { addr: Addr::Abs(l), .. } => Some(*l),
                _ => None,
            })
            .collect();
        let init_nonzero: BTreeSet<Location> = program
            .initial_memory()
            .iter()
            .enumerate()
            .filter(|(_, v)| v.get() != 0)
            .map(|(i, _)| Location::new(i as u32))
            .collect();
        for (pi, code) in program.procs().iter().enumerate() {
            let cfg = Cfg::build(code);
            let states = crate::absint::analyze_proc(code);
            let accs = crate::absint::proc_accesses(
                ProcId::new(pi as u16),
                code,
                &states,
                program.num_locations(),
            );
            let n = code.len();
            let mut rch = vec![vec![false; n]; n];
            for (i, row) in rch.iter_mut().enumerate() {
                let mut work: VecDeque<usize> = cfg.succs(i).iter().copied().collect();
                while let Some(j) = work.pop_front() {
                    if !row[j] {
                        row[j] = true;
                        work.extend(cfg.succs(j));
                    }
                }
            }
            let chk: Vec<bool> = (0..n).map(|pc| is_checked_read(code, &cfg, pc)).collect();
            let rel = must_after_sync_writes(code, &cfg);
            let acq = must_before_checked_reads(code, &cfg, &chk);
            let sw: BTreeSet<Location> = accs
                .iter()
                .filter(|a| a.sync && a.writes && a.resolved)
                .map(|a| Location::new(a.lo))
                .collect();
            cfgs.push(cfg);
            codes.push(code.clone());
            accesses.push(accs);
            reach.push(rch);
            rel_after.push(rel);
            acq_before.push(acq);
            checked.push(chk);
            sync_writes.push(sw);
        }
        Skeleton {
            cfgs,
            code: codes,
            accesses,
            reach,
            rel_after,
            acq_before,
            checked,
            sync_writes,
            lock_like,
            init_nonzero,
        }
    }

    pub(crate) fn access(&self, proc: ProcId, pc: usize) -> Option<&Access> {
        self.accesses.get(proc.index())?.iter().find(|a| a.pc == pc)
    }

    fn reaches(&self, proc: usize, i: usize, j: usize) -> bool {
        self.reach[proc][i][j]
    }

    /// Sync-write locations every path strictly after the access passes,
    /// plus the access's own location if it is itself a resolved sync
    /// write — the release end of a chain.
    fn rel_after_star(&self, a: &Access) -> BTreeSet<Location> {
        let mut out = self.rel_after[a.proc.index()][a.pc].clone();
        if a.sync && a.writes && a.resolved {
            out.insert(Location::new(a.lo));
        }
        out
    }

    /// Checked-sync-read locations every path strictly before the
    /// access passes, plus the access itself if it is a resolved
    /// checked sync read — the confirmed-acquire end of a chain.
    fn acq_before_star(&self, a: &Access) -> BTreeSet<Location> {
        let mut out = self.acq_before[a.proc.index()][a.pc].clone();
        if a.sync && a.reads && a.resolved && self.checked[a.proc.index()][a.pc] {
            out.insert(Location::new(a.lo));
        }
        out
    }

    /// The critical sections of `L` on two processors conflict: some
    /// access of `p` holding `L` overlaps some access of `q` holding
    /// `L`, at least one a write. Sync accesses of `L` itself (the
    /// protocol's own `unset`s) do not count.
    fn sections_conflict(&self, p: ProcId, q: ProcId, l: Location) -> bool {
        let section = |proc: ProcId| {
            self.accesses[proc.index()]
                .iter()
                .filter(move |a| a.held.contains(&l) && !(a.sync && a.resolved && a.lo == l.addr()))
        };
        section(p)
            .any(|a| section(q).any(|b| a.lo.max(b.lo) <= a.hi.min(b.hi) && (a.writes || b.writes)))
    }

    /// The weak-only witness for a pair, if any.
    pub(crate) fn witness(&self, x: &Access, y: &Access) -> Option<Witness> {
        if let Some(l) = x.held.intersection(&y.held).next() {
            return Some(Witness::Lock { loc: *l });
        }
        // A chain through a lock-protocol word is ordering only when
        // the two critical sections themselves conflict, or the word
        // starts nonzero (the spin exit then proves an `unset` ran) —
        // acquiring an initially-free lock over a disjoint section
        // proves nothing about which release (if any) came before, so
        // those handoffs (the WCP counterexample shape) are incidental,
        // not ordering.
        let chain = |a: &Access, b: &Access| {
            self.rel_after_star(a)
                .intersection(&self.acq_before_star(b))
                .find(|&&l| {
                    !self.lock_like.contains(&l)
                        || self.init_nonzero.contains(&l)
                        || self.sections_conflict(a.proc, b.proc, l)
                })
                .copied()
        };
        if let Some(loc) = chain(x, y).or_else(|| chain(y, x)) {
            return Some(Witness::SyncChain { loc });
        }
        let guard = |a: &Access, other: &BTreeSet<Location>| {
            self.acq_before_star(a).intersection(other).next().copied()
        };
        let gx = guard(x, &self.sync_writes[y.proc.index()]);
        let gy = guard(y, &self.sync_writes[x.proc.index()]);
        if let (Some(a), Some(b)) = (gx, gy) {
            return Some(Witness::MutualGuard { a, b });
        }
        None
    }

    /// `true` iff conforming hardware already globally performs the po
    /// pair `(i, j)` in order (see [`DelayPair::enforced`]).
    pub(crate) fn delay_enforced(&self, proc: usize, i: usize, j: usize) -> bool {
        let code_sync = |pc: usize| self.accesses[proc].iter().any(|a| a.pc == pc && a.sync);
        let sync_write =
            |pc: usize| self.accesses[proc].iter().any(|a| a.pc == pc && a.sync && a.writes);
        if code_sync(i) || sync_write(j) {
            return true;
        }
        // Every path i -> j crosses a fence or sync operation iff j is
        // unreachable once those blockers are removed from the graph.
        let cfg = &self.cfgs[proc];
        let blocker = |pc: usize| code_sync(pc) || matches!(self.code[proc][pc], Instr::Fence);
        let mut seen = vec![false; cfg.len()];
        let mut work: VecDeque<usize> = cfg.succs(i).iter().copied().collect();
        while let Some(q) = work.pop_front() {
            if seen[q] || blocker(q) {
                continue;
            }
            if q == j {
                return false;
            }
            seen[q] = true;
            work.extend(cfg.succs(q));
        }
        true
    }
}

/// `pc` is a sync read whose destination register feeds a conditional
/// branch before any redefinition — the guard/spin idiom.
fn is_checked_read(code: &[Instr], cfg: &Cfg, pc: usize) -> bool {
    let r = match code[pc] {
        Instr::LdAcq { dst, .. } | Instr::LdSync { dst, .. } | Instr::TestSet { dst, .. } => dst,
        _ => return false,
    };
    feeds_branch(code, cfg, pc, r)
}

/// The value `pc` leaves in `r` feeds a conditional branch on some path
/// before any redefinition of `r`.
pub(crate) fn feeds_branch(code: &[Instr], cfg: &Cfg, pc: usize, r: wmrd_sim::Reg) -> bool {
    let mut seen = vec![false; code.len()];
    let mut work: VecDeque<usize> = cfg.succs(pc).iter().copied().collect();
    while let Some(q) = work.pop_front() {
        if seen[q] {
            continue;
        }
        seen[q] = true;
        match code[q] {
            Instr::Bz { cond, .. } | Instr::Bnz { cond, .. } if cond == r => return true,
            ref instr if instr.dst() == Some(r) => continue, // clobbered on this path
            _ => work.extend(cfg.succs(q)),
        }
    }
    false
}

/// Greatest fixpoint of "every path strictly from here onwards passes a
/// resolved sync write of L" — computed including the instruction's own
/// generation, then stripped to the strict-successor view.
fn must_after_sync_writes(code: &[Instr], cfg: &Cfg) -> Vec<BTreeSet<Location>> {
    let gen: Vec<Option<Location>> = code
        .iter()
        .map(|i| match i {
            Instr::StRel { addr: Addr::Abs(l), .. }
            | Instr::StSync { addr: Addr::Abs(l), .. }
            | Instr::TestSet { addr: Addr::Abs(l), .. }
            | Instr::Unset { addr: Addr::Abs(l) } => Some(*l),
            _ => None,
        })
        .collect();
    let universe: BTreeSet<Location> = gen.iter().flatten().copied().collect();
    let n = code.len();
    // out[pc] = gen(pc) ∪ ⋂_{s ∈ succs(pc)} out[s]; sinks contribute ∅.
    let mut out: Vec<BTreeSet<Location>> = vec![universe; n];
    let mut changed = true;
    while changed {
        changed = false;
        for pc in (0..n).rev() {
            let mut next: BTreeSet<Location> = match cfg.succs(pc).split_first() {
                None => BTreeSet::new(),
                Some((&f, rest)) => {
                    let mut acc = out[f].clone();
                    for &s in rest {
                        acc = acc.intersection(&out[s]).copied().collect();
                    }
                    acc
                }
            };
            if let Some(l) = gen[pc] {
                next.insert(l);
            }
            if next != out[pc] {
                out[pc] = next;
                changed = true;
            }
        }
    }
    // The strict view: what every path *after* pc passes.
    (0..n)
        .map(|pc| match cfg.succs(pc).split_first() {
            None => BTreeSet::new(),
            Some((&f, rest)) => {
                let mut acc = out[f].clone();
                for &s in rest {
                    acc = acc.intersection(&out[s]).copied().collect();
                }
                acc
            }
        })
        .collect()
}

/// Greatest fixpoint of "every path from entry to strictly before here
/// passes a checked sync read of L".
fn must_before_checked_reads(
    code: &[Instr],
    cfg: &Cfg,
    checked: &[bool],
) -> Vec<BTreeSet<Location>> {
    let gen: Vec<Option<Location>> = code
        .iter()
        .enumerate()
        .map(|(pc, i)| match i {
            Instr::LdAcq { addr: Addr::Abs(l), .. }
            | Instr::LdSync { addr: Addr::Abs(l), .. }
            | Instr::TestSet { addr: Addr::Abs(l), .. }
                if checked[pc] =>
            {
                Some(*l)
            }
            _ => None,
        })
        .collect();
    let universe: BTreeSet<Location> = gen.iter().flatten().copied().collect();
    let n = code.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for pc in 0..n {
        for &s in cfg.succs(pc) {
            preds[s].push(pc);
        }
    }
    let mut inn: Vec<BTreeSet<Location>> = vec![universe; n];
    if n > 0 {
        inn[0] = BTreeSet::new();
    }
    let mut changed = true;
    while changed {
        changed = false;
        for pc in 1..n {
            let mut next: Option<BTreeSet<Location>> = None;
            for &p in &preds[pc] {
                let mut flow = inn[p].clone();
                if let Some(l) = gen[p] {
                    flow.insert(l);
                }
                next = Some(match next {
                    None => flow,
                    Some(acc) => acc.intersection(&flow).copied().collect(),
                });
            }
            let next = next.unwrap_or_default();
            if next != inn[pc] {
                inn[pc] = next;
                changed = true;
            }
        }
    }
    inn
}

/// A cycle: per-processor segments `(proc, entry, exit)` in traversal
/// order, `entry == exit` for single-access segments.
type CycleSig = Vec<(usize, usize, usize)>;

/// Classifies the report's keys and computes the delay set.
pub fn analyze_cycles(program: &Program, report: &LintReport) -> CycleReport {
    let sk = Skeleton::build(program);
    build_cycle_report(program, report, &sk)
}

pub(crate) fn build_cycle_report(
    _program: &Program,
    report: &LintReport,
    sk: &Skeleton,
) -> CycleReport {
    // Classify every report pair through its (proc, pc) accesses;
    // indices stay aligned with `report.pairs`.
    struct PairClass {
        a: (usize, usize),
        b: (usize, usize),
        class: RaceClass,
        witness: Option<Witness>,
        resolved: bool,
    }
    let pair_class: Vec<Option<PairClass>> = report
        .pairs
        .iter()
        .map(|p| {
            let (x, y) = (sk.access(p.a.proc, p.a.pc)?, sk.access(p.b.proc, p.b.pc)?);
            let witness = sk.witness(x, y);
            let class = if witness.is_some() { RaceClass::WeakOnly } else { RaceClass::ScAlso };
            Some(PairClass {
                a: (x.proc.index(), x.pc),
                b: (y.proc.index(), y.pc),
                class,
                witness,
                resolved: x.resolved && y.resolved,
            })
        })
        .collect();

    // The conflict graph over resolved accesses (sync-sync edges
    // included — they carry ordering through cycles; lock-mediated
    // edges excluded — mutual exclusion collapses those cycles).
    let flat: Vec<&Access> = sk.accesses.iter().flatten().filter(|a| a.resolved).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); flat.len()];
    for (i, x) in flat.iter().enumerate() {
        for (j, y) in flat.iter().enumerate().skip(i + 1) {
            if x.proc == y.proc
                || x.lo.max(y.lo) > x.hi.min(y.hi)
                || !(x.writes || y.writes)
                || x.held.intersection(&y.held).next().is_some()
            {
                continue;
            }
            adj[i].push(j);
            adj[j].push(i);
        }
    }

    // sc-also conflict edges, by flat index, for criticality.
    let flat_pos =
        |(proc, pc): (usize, usize)| flat.iter().position(|a| a.proc.index() == proc && a.pc == pc);
    let sc_edge: BTreeSet<(usize, usize)> = pair_class
        .iter()
        .flatten()
        .filter(|pc| pc.resolved && pc.class == RaceClass::ScAlso)
        .filter_map(|pc| {
            let fi = flat_pos(pc.a)?;
            let fj = flat_pos(pc.b)?;
            Some((fi.min(fj), fi.max(fj)))
        })
        .collect();

    let (cycles, capped) = enumerate_cycles(&flat, &adj, sk);

    // Per-key cycle counts and criticality; delay pairs.
    let mut delay_map: BTreeMap<(usize, usize, usize), bool> = BTreeMap::new();
    let mut edge_cycles: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for sig in &cycles {
        let mut edges = Vec::new();
        // Conflict edges connect segment k's exit to segment k+1's entry.
        for k in 0..sig.len() {
            let (_, _, exit) = sig[k];
            let (entry, _, _) = sig[(k + 1) % sig.len()];
            edges.push((exit.min(entry), exit.max(entry)));
        }
        let critical = edges.iter().any(|e| sc_edge.contains(e));
        for e in &edges {
            *edge_cycles.entry(*e).or_insert(0) += 1;
        }
        for &(_, entry, exit) in sig {
            if entry != exit {
                let (pa, pb) = (flat[entry], flat[exit]);
                let key = (pa.proc.index(), pa.pc, pb.pc);
                let e = delay_map.entry(key).or_insert(false);
                *e |= critical;
            }
        }
    }

    let delays: Vec<DelayPair> = delay_map
        .into_iter()
        .map(|((proc, from, to), critical)| DelayPair {
            proc: ProcId::new(proc as u16),
            from,
            to,
            enforced: sk.delay_enforced(proc, from, to),
            critical,
        })
        .collect();

    // Key classification: a key is weak-only iff every contributing
    // pair is; cycle count sums over contributing resolved edges.
    let mut classes = Vec::new();
    for key in &report.keys {
        let mut class = RaceClass::WeakOnly;
        let mut witness = None;
        let mut cycles_through = 0usize;
        for (idx, p) in report.pairs.iter().enumerate() {
            let Some(pc) = &pair_class[idx] else { continue };
            let (Some(x), Some(y)) = (sk.access(p.a.proc, p.a.pc), sk.access(p.b.proc, p.b.pc))
            else {
                continue;
            };
            if !pair_contributes(x, y, key) {
                continue;
            }
            match pc.class {
                RaceClass::ScAlso => {
                    class = RaceClass::ScAlso;
                    witness = None;
                }
                RaceClass::WeakOnly => {
                    if class == RaceClass::WeakOnly && witness.is_none() {
                        witness = pc.witness;
                    }
                }
            }
            if let (Some(fi), Some(fj)) = (flat_pos(pc.a), flat_pos(pc.b)) {
                cycles_through += edge_cycles.get(&(fi.min(fj), fi.max(fj))).copied().unwrap_or(0);
            }
        }
        classes.push(KeyClass { key: *key, class, witness, cycles: cycles_through });
    }

    let sc_also = classes.iter().filter(|c| c.class == RaceClass::ScAlso).count();
    let weak_only = classes.len() - sc_also;
    CycleReport {
        program: report.program.clone(),
        cycles: cycles.len(),
        capped,
        classes,
        delays,
        sc_also,
        weak_only,
    }
}

/// `true` iff the pair `(x, y)` expands to `key` under the report's own
/// key construction.
fn pair_contributes(x: &Access, y: &Access, key: &RaceKey) -> bool {
    use wmrd_trace::AccessKind;
    let first = x.lo.max(y.lo);
    let last = x.hi.min(y.hi);
    if key.loc.addr() < first || key.loc.addr() > last {
        return false;
    }
    let kinds = |a: &Access| {
        [(a.reads, AccessKind::Read), (a.writes, AccessKind::Write)]
            .into_iter()
            .filter(|(p, _)| *p)
            .map(|(_, k)| k)
            .collect::<Vec<_>>()
    };
    for ka in kinds(x) {
        for kb in kinds(y) {
            if ka == AccessKind::Read && kb == AccessKind::Read {
                continue;
            }
            let cand = RaceKey::new(
                key.loc,
                wmrd_core::SideKey { proc: x.proc, kind: ka, sync: x.sync },
                wmrd_core::SideKey { proc: y.proc, kind: kb, sync: y.sync },
            );
            if &cand == key {
                return true;
            }
        }
    }
    false
}

/// Enumerates distinct cycles over the conflict graph: each processor
/// visited at most once, contributing one access or a program-ordered
/// pair. Returns canonical signatures and whether the cap was hit.
fn enumerate_cycles(
    flat: &[&Access],
    adj: &[Vec<usize>],
    sk: &Skeleton,
) -> (BTreeSet<CycleSig>, bool) {
    let mut found: BTreeSet<CycleSig> = BTreeSet::new();
    let mut capped = false;
    let po = |i: usize, j: usize| -> bool {
        let (a, b) = (flat[i], flat[j]);
        a.proc == b.proc && a.pc != b.pc && sk.reaches(a.proc.index(), a.pc, b.pc)
    };
    for start in 0..flat.len() {
        if capped {
            break;
        }
        // Segments: (entry, exit); `start` is the cycle's minimum flat
        // index and the entry of its segment.
        let exits: Vec<usize> = std::iter::once(start)
            .chain((0..flat.len()).filter(|&t| t > start && po(start, t)))
            .collect();
        for &exit0 in &exits {
            let mut path: Vec<(usize, usize)> = vec![(start, exit0)];
            let mut procs: BTreeSet<usize> = BTreeSet::from([flat[start].proc.index()]);
            dfs(start, exit0, &mut path, &mut procs, flat, adj, sk, &mut found, &mut capped);
            debug_assert_eq!(path.len(), 1);
        }
    }
    (found, capped)
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    start: usize,
    cur_exit: usize,
    path: &mut Vec<(usize, usize)>,
    procs: &mut BTreeSet<usize>,
    flat: &[&Access],
    adj: &[Vec<usize>],
    sk: &Skeleton,
    found: &mut BTreeSet<CycleSig>,
    capped: &mut bool,
) {
    if *capped {
        return;
    }
    for &next in &adj[cur_exit] {
        if next == start && path.len() >= 2 {
            // A two-segment cycle of two lone accesses would reuse its
            // single conflict edge in both directions — not a cycle.
            if path.len() == 2 && path[0].0 == path[0].1 && path[1].0 == path[1].1 {
                continue;
            }
            let sig: CycleSig = path.iter().map(|&(e, x)| (flat[e].proc.index(), e, x)).collect();
            found.insert(canonical(sig));
            if found.len() >= MAX_CYCLES {
                *capped = true;
                return;
            }
            continue;
        }
        if next <= start || procs.contains(&flat[next].proc.index()) {
            continue;
        }
        let po = |i: usize, j: usize| -> bool {
            let (a, b) = (flat[i], flat[j]);
            a.proc == b.proc && a.pc != b.pc && sk.reaches(a.proc.index(), a.pc, b.pc)
        };
        let exits: Vec<usize> = std::iter::once(next)
            .chain((0..flat.len()).filter(|&t| t > start && t != next && po(next, t)))
            .collect();
        procs.insert(flat[next].proc.index());
        for &exit in &exits {
            path.push((next, exit));
            dfs(start, exit, path, procs, flat, adj, sk, found, capped);
            path.pop();
        }
        procs.remove(&flat[next].proc.index());
    }
}

/// Canonical form: rotate so the minimum segment comes first, then pick
/// the lexicographically smaller of the two traversal directions.
fn canonical(sig: CycleSig) -> CycleSig {
    let n = sig.len();
    let mut best: Option<CycleSig> = None;
    for rot in 0..n {
        let fwd: CycleSig = (0..n).map(|k| sig[(rot + k) % n]).collect();
        let rev: CycleSig = (0..n).map(|k| sig[(rot + n - k) % n]).collect();
        for cand in [fwd, rev] {
            if best.as_ref().is_none_or(|b| &cand < b) {
                best = Some(cand);
            }
        }
    }
    best.expect("cycle has at least two segments")
}
