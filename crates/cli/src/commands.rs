//! Command implementations. Each returns its output as a `String` so the
//! whole CLI is unit-testable; `main` just prints.

use std::fmt::Write as _;

use wmrd_core::{render, PairingPolicy, PostMortem, SalvageAnalysis};
use wmrd_explore::{
    run_campaign, run_campaign_observed, CampaignObserver, CampaignReport, CampaignSpec, ExecSpec,
    PostMortemPolicy,
};
use wmrd_faults::FaultPlan;
use wmrd_progs::catalog;
use wmrd_serve::{Client, Endpoint, Reply, ServeConfig, Server, StreamMeta};
use wmrd_sim::{
    run_sc, run_weak, run_weak_hw, write_asm, Fidelity, HwImpl, MemoryModel, Program, RandomSched,
    RandomWeakSched, RunConfig, WeakScript,
};
use wmrd_trace::{Metrics, MultiSink, OpRecorder, StreamWriter, TraceBuilder, TraceSet};
use wmrd_verify::sample_sc;
use wmrd_verify::theorems::{check_condition_3_4_hw, sc_race_signatures};

use crate::args::{
    parse, AnalyzeOpts, CaptureOpts, CheckOpts, Command, ExploreOpts, LintOpts, PredictOpts,
    QueryOpts, RunOpts, ServeOpts, StreamOpts, SubmitOpts, USAGE,
};
use crate::CliError;

fn file_err(path: &str) -> impl FnOnce(std::io::Error) -> CliError + '_ {
    move |source| CliError::File { path: path.to_string(), source }
}

/// The metrics handle for one command: enabled only when the user asked
/// for `--metrics <file>` or `--stats`, so unobserved invocations pay
/// nothing.
fn metrics_for(metrics_out: &Option<String>, stats: bool) -> Metrics {
    if metrics_out.is_some() || stats {
        Metrics::enabled()
    } else {
        Metrics::disabled()
    }
}

/// Writes the collected metrics to `--metrics <file>` (schema-stable
/// JSON, see OBSERVABILITY.md) and/or appends the `--stats` summary.
fn emit_metrics(
    metrics: &Metrics,
    metrics_out: &Option<String>,
    stats: bool,
    out: &mut String,
) -> Result<(), CliError> {
    if !metrics.is_enabled() {
        return Ok(());
    }
    let report = metrics.report();
    if let Some(path) = metrics_out {
        std::fs::write(path, report.to_json()?).map_err(file_err(path))?;
        let _ = writeln!(out, "metrics written to {path}");
    }
    if stats {
        let _ = write!(out, "{}", report.to_summary());
    }
    Ok(())
}

/// Executes one CLI invocation (arguments exclude the binary name) and
/// returns its output.
///
/// # Errors
///
/// Returns a [`CliError`] describing parse or execution failures.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    match parse(args)? {
        Command::Help => Ok(USAGE.to_string()),
        Command::Catalog => cmd_catalog(),
        Command::Show(name) => cmd_show(&name),
        Command::Export { name, path } => cmd_export(&name, &path),
        Command::Run(opts) => cmd_run(&opts),
        Command::Analyze(opts) => cmd_analyze(&opts),
        Command::Check(opts) => cmd_check(&opts),
        Command::Explore(opts) => cmd_explore(&opts),
        Command::Lint(opts) => cmd_lint(&opts),
        Command::Predict(opts) => cmd_predict(&opts),
        Command::Capture(opts) => cmd_capture(&opts),
        Command::Serve(opts) => cmd_serve(&opts),
        Command::Submit(opts) => cmd_submit(&opts),
        Command::Stream(opts) => cmd_stream(&opts),
        Command::Query(opts) => cmd_query(&opts),
        Command::Demo => cmd_demo(),
    }
}

fn load_program(name_or_path: &str) -> Result<Program, CliError> {
    if let Some(entry) = catalog::all().into_iter().find(|e| e.name == name_or_path) {
        return Ok(entry.program);
    }
    let path = std::path::Path::new(name_or_path);
    if path.exists() {
        let text = std::fs::read_to_string(name_or_path).map_err(file_err(name_or_path))?;
        if matches!(path.extension().and_then(|e| e.to_str()), Some("wmrd" | "asm" | "s")) {
            // Assembly source; `parse_asm` validates the result.
            return wmrd_sim::parse_asm(&text)
                .map_err(|source| CliError::Asm { path: name_or_path.to_string(), source });
        }
        let program: Program = serde_json::from_str(&text)?;
        program.validate()?;
        return Ok(program);
    }
    Err(CliError::NotFound(format!(
        "`{name_or_path}` is neither a catalog workload (see `wmrd catalog`) nor a file"
    )))
}

fn cmd_catalog() -> Result<String, CliError> {
    let mut out = String::new();
    let _ = writeln!(out, "{:<26} {:>5} {:>6}  description", "name", "procs", "racy");
    for entry in catalog::all() {
        let _ = writeln!(
            out,
            "{:<26} {:>5} {:>6}  {}",
            entry.name,
            entry.program.num_procs(),
            if entry.racy { "yes" } else { "no" },
            entry.description
        );
    }
    Ok(out)
}

fn cmd_show(name: &str) -> Result<String, CliError> {
    let program = load_program(name)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "program {} ({} processors, {} memory words)",
        program.name(),
        program.num_procs(),
        program.num_locations()
    );
    for (loc, value) in program.init() {
        let _ = writeln!(out, "  init {loc} = {value}");
    }
    for (pi, code) in program.procs().iter().enumerate() {
        let _ = writeln!(out, "P{pi}:");
        for (i, instr) in code.iter().enumerate() {
            let _ = writeln!(out, "  {i:>3}: {instr}");
        }
    }
    Ok(out)
}

fn cmd_export(name: &str, path: &str) -> Result<String, CliError> {
    let program = load_program(name)?;
    std::fs::write(path, serde_json::to_string_pretty(&program)?).map_err(file_err(path))?;
    Ok(format!("wrote {} to {path}\n", program.name()))
}

fn cmd_run(opts: &RunOpts) -> Result<String, CliError> {
    let program = load_program(&opts.program)?;
    let metrics = metrics_for(&opts.metrics_out, opts.stats);
    metrics.context("command", "run");
    metrics.context("program", program.name());
    metrics.context("model", opts.model);
    metrics.context("fidelity", opts.fidelity);
    metrics.context("seed", opts.seed);
    if opts.model != MemoryModel::Sc {
        metrics.context("hw", opts.hw);
    }
    let mut sink = MultiSink::new(
        TraceBuilder::new(program.num_procs()),
        OpRecorder::new(program.num_procs()),
    );
    let outcome = if opts.model == MemoryModel::Sc {
        run_sc(&program, &mut RandomSched::new(opts.seed), &mut sink, RunConfig::default())?
    } else {
        let mut sched = RandomWeakSched::new(opts.seed, 0.3);
        run_weak_hw(
            opts.hw,
            &program,
            opts.model,
            opts.fidelity,
            &mut sched,
            &mut sink,
            RunConfig::default(),
        )?
    };
    let (builder, recorder) = sink.into_inner();
    let mut trace = builder.finish();
    trace.meta.program = Some(program.name().to_string());
    trace.meta.model = Some(opts.model.to_string());
    trace.meta.seed = Some(opts.seed);
    outcome.stats.record_into(&metrics);
    if metrics.is_enabled() {
        metrics.set_gauge("sim.steps", outcome.steps);
        metrics.set_gauge("sim.cycles", outcome.total_cycles());
        metrics.set_gauge("trace.events", trace.num_events() as u64);
        metrics.set_gauge("trace.procs", trace.num_procs() as u64);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "ran {} on {} (fidelity {}, seed {}): {} steps, {} cycles, {} events",
        program.name(),
        opts.model,
        opts.fidelity,
        opts.seed,
        outcome.steps,
        outcome.total_cycles(),
        trace.num_events()
    );
    if let Some(path) = &opts.trace_out {
        if opts.binary {
            std::fs::write(path, trace.to_binary()).map_err(file_err(path))?;
        } else {
            trace.write_json_file(path)?;
        }
        let _ = writeln!(out, "event trace written to {path}");
    }
    if let Some(path) = &opts.ops_out {
        std::fs::write(path, serde_json::to_string_pretty(&recorder.finish())?)
            .map_err(file_err(path))?;
        let _ = writeln!(out, "operation trace written to {path}");
    }
    if opts.trace_out.is_none() {
        // No file requested: analyze inline for convenience.
        let report = PostMortem::new(&trace).metrics(&metrics).analyze()?;
        let _ = writeln!(out, "{report}");
    }
    emit_metrics(&metrics, &opts.metrics_out, opts.stats, &mut out)?;
    Ok(out)
}

fn decode_trace(path: &str, bytes: &[u8]) -> Result<TraceSet, CliError> {
    if bytes.starts_with(b"WMRD") {
        return Ok(TraceSet::from_binary(bytes)?);
    }
    let text = std::str::from_utf8(bytes)
        .map_err(|_| CliError::Usage(format!("{path} is neither binary nor UTF-8 JSON")))?;
    Ok(TraceSet::from_json(text)?)
}

/// Parses a `--inject` fault plan, mapping syntax errors to usage
/// errors.
fn parse_fault_plan(spec: &str) -> Result<FaultPlan, CliError> {
    FaultPlan::parse(spec).map_err(|e| CliError::Usage(e.to_string()))
}

fn cmd_analyze(opts: &AnalyzeOpts) -> Result<String, CliError> {
    let metrics = metrics_for(&opts.metrics_out, opts.stats);
    metrics.context("command", "analyze");
    metrics.context("pairing", format!("{:?}", opts.pairing));
    let mut bytes = std::fs::read(&opts.trace).map_err(file_err(&opts.trace))?;
    if let Some(plan) = &opts.inject {
        let plan = parse_fault_plan(plan)?;
        metrics.add(wmrd_trace::metric_keys::FAULTS_INJECTED, plan.points().len() as u64);
        bytes = plan.corrupt(&bytes);
    }
    let (trace, salvage_banner, report) = if opts.salvage {
        if !bytes.starts_with(b"WMRD") {
            return Err(CliError::Usage(
                "--salvage needs a binary trace (JSON traces carry no checksummed prefix)".into(),
            ));
        }
        let analysis = SalvageAnalysis::run(&bytes, opts.pairing, &metrics)?;
        let banner = analysis.salvage.to_string();
        (analysis.salvage.trace, Some(banner), analysis.report)
    } else {
        let trace = decode_trace(&opts.trace, &bytes)?;
        let report = PostMortem::new(&trace).pairing(opts.pairing).metrics(&metrics).analyze()?;
        (trace, None, report)
    };
    if let Some(program) = &trace.meta.program {
        metrics.context("program", program);
    }
    if let Some(model) = &trace.meta.model {
        metrics.context("model", model);
    }
    if let Some(seed) = trace.meta.seed {
        metrics.context("seed", seed);
    }
    let mut out = String::new();
    if let Some(banner) = &salvage_banner {
        if !opts.json {
            let _ = writeln!(out, "{banner}");
        }
    }
    if opts.json {
        let _ = writeln!(out, "{}", serde_json::to_string_pretty(&report)?);
    } else {
        let _ = write!(out, "{report}");
        if opts.show_all && !report.withheld_races().is_empty() {
            let _ = writeln!(out, "withheld (potentially non-SC / artifact) races:");
            for race in report.withheld_races() {
                let _ = writeln!(out, "  {race}");
            }
        }
    }
    if opts.timeline {
        let _ = writeln!(out, "\n{}", render::to_timeline(&trace, &report));
    }
    if let Some(path) = &opts.dot_out {
        std::fs::write(path, render::to_dot(&trace, &report)?).map_err(file_err(path))?;
        let _ = writeln!(out, "dot graph written to {path}");
    }
    emit_metrics(&metrics, &opts.metrics_out, opts.stats, &mut out)?;
    Ok(out)
}

fn cmd_check(opts: &CheckOpts) -> Result<String, CliError> {
    let program = load_program(&opts.program)?;
    let metrics = metrics_for(&opts.metrics_out, opts.stats);
    metrics.context("command", "check");
    metrics.context("program", program.name());
    metrics.context("model", opts.model);
    metrics.context("fidelity", opts.fidelity);
    metrics.context("hw", opts.hw);
    // Build the SC-race oracle by sampling.
    let samples = sample_sc(&program, 0..60, RunConfig::default())?;
    let sigs = sc_race_signatures(&samples, PairingPolicy::ByRole)?;
    let sc_racy = !sigs.is_empty();
    let outcomes = check_condition_3_4_hw(
        opts.hw,
        &program,
        opts.model,
        opts.fidelity,
        0..opts.seeds,
        &sigs,
        PairingPolicy::ByRole,
    )?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Condition 3.4 check: {} on {} ({}, {}), {} seeded executions",
        program.name(),
        opts.model,
        opts.fidelity,
        opts.hw,
        outcomes.len()
    );
    let _ = writeln!(
        out,
        "sampled SC executions: {} ({} race signature(s); program looks {})",
        samples.len(),
        sigs.len(),
        if sc_racy { "racy" } else { "data-race-free" }
    );
    let mut all_ok = true;
    for o in &outcomes {
        let verdict = if o.holds() { "ok" } else { "VIOLATED" };
        all_ok &= o.holds();
        let detail = if o.race_free {
            format!("race-free, SC={}", o.part1_sc.map_or("-".into(), |b| b.to_string()))
        } else {
            let t = o.part2.expect("racy executions carry a 4.2 outcome");
            format!(
                "racy, first partitions confirmed {}/{}",
                t.partitions_confirmed, t.partitions_checked
            )
        };
        let _ = writeln!(
            out,
            "  seed {:>3}: {verdict}  ({detail}, scp-linearizes={})",
            o.seed, o.scp_linearizes
        );
    }
    let _ = writeln!(
        out,
        "{}",
        if all_ok {
            "every execution satisfied Condition 3.4"
        } else {
            "CONDITION 3.4 VIOLATED — this hardware cannot support sound dynamic race detection"
        }
    );
    if metrics.is_enabled() {
        metrics.set_gauge("check.seeds", outcomes.len() as u64);
        metrics.set_gauge("check.sc_samples", samples.len() as u64);
        metrics.set_gauge("check.sc_race_signatures", sigs.len() as u64);
        metrics.add("check.race_free", outcomes.iter().filter(|o| o.race_free).count() as u64);
        metrics.add("check.racy", outcomes.iter().filter(|o| !o.race_free).count() as u64);
        metrics.add("check.violations", outcomes.iter().filter(|o| !o.holds()).count() as u64);
    }
    emit_metrics(&metrics, &opts.metrics_out, opts.stats, &mut out)?;
    Ok(out)
}

/// One lint target's full analysis: the may-race report plus, when the
/// invocation asked for them, the cycle classification and the repair.
struct LintedTarget {
    report: wmrd_lint::LintReport,
    cycles: Option<wmrd_lint::CycleReport>,
    repair: Option<wmrd_lint::Repair>,
}

/// Serializes one linted target for `--format json`.
///
/// Without `--cycles` this is the bare [`LintReport`] — the v1 schema,
/// byte-identical to what earlier releases emitted. With `--cycles` the
/// report is wrapped in the v2 envelope: the same report fields at the
/// top level plus `version: 2`, the `cycles` classification, and the
/// `repair` plan.
fn lint_json(t: &LintedTarget) -> Result<serde_json::Value, CliError> {
    let mut value = serde_json::to_value(&t.report)?;
    let (Some(cycles), Some(repair)) = (&t.cycles, &t.repair) else {
        return Ok(value);
    };
    let obj = value.as_object_mut().expect("a LintReport serializes as an object");
    obj.insert("version".into(), serde_json::json!(2));
    obj.insert("cycles".into(), serde_json::to_value(cycles)?);
    obj.insert("repair".into(), serde_json::to_value(&repair.plan)?);
    Ok(value)
}

fn cmd_lint(opts: &LintOpts) -> Result<String, CliError> {
    let metrics = metrics_for(&opts.metrics_out, opts.stats);
    metrics.context("command", "lint");
    let run_cycles = opts.cycles || opts.repair_out.is_some();
    // Expand targets: the word `all` means every catalog entry.
    let mut targets: Vec<String> = Vec::new();
    for t in &opts.targets {
        if t == "all" {
            targets.extend(catalog::all().into_iter().map(|e| e.name.to_string()));
        } else {
            targets.push(t.clone());
        }
    }
    if opts.repair_out.is_some() && targets.len() != 1 {
        return Err(CliError::Usage(
            "lint --repair wants exactly one target (it writes one repaired program)".into(),
        ));
    }
    let mut linted = Vec::new();
    for target in &targets {
        let program = load_program(target)?;
        let report = wmrd_lint::analyze_with_metrics(&program, &metrics);
        let (cycles, repair) = if run_cycles {
            let cycles = wmrd_lint::analyze_cycles_with_metrics(&program, &report, &metrics);
            let repair = wmrd_lint::repair_with_metrics(&program, &report, &metrics);
            (Some(cycles), Some(repair))
        } else {
            (None, None)
        };
        linted.push(LintedTarget { report, cycles, repair });
    }
    let findings: u64 = linted.iter().map(|t| t.report.keys.len() as u64).sum();
    let mut out = String::new();
    if opts.json {
        if let [only] = linted.as_slice() {
            let _ = writeln!(out, "{}", serde_json::to_string_pretty(&lint_json(only)?)?);
        } else {
            let values: Vec<_> = linted.iter().map(lint_json).collect::<Result<_, CliError>>()?;
            let _ = writeln!(out, "{}", serde_json::to_string_pretty(&values)?);
        }
    } else {
        for (i, t) in linted.iter().enumerate() {
            if i > 0 {
                let _ = writeln!(out);
            }
            let _ = write!(out, "{}", t.report.render());
            if let Some(cycles) = &t.cycles {
                let _ = write!(out, "{}", cycles.render());
            }
            if let Some(repair) = &t.repair {
                let _ = write!(out, "{}", repair.plan.render());
            }
        }
        if linted.len() > 1 {
            let racy = linted.iter().filter(|t| !t.report.is_race_free()).count();
            let _ = writeln!(
                out,
                "\nlinted {} program(s): {} with may-race findings, {} statically race-free",
                linted.len(),
                racy,
                linted.len() - racy
            );
        }
    }
    if let (Some(path), [only]) = (&opts.repair_out, linted.as_slice()) {
        let repair = only.repair.as_ref().expect("--repair implies the cycle analysis");
        std::fs::write(path, write_asm(&repair.repaired)).map_err(file_err(path))?;
        let _ = writeln!(
            out,
            "repaired program written to {path} ({} fence(s), {} strengthened location(s))",
            repair.plan.fences.len(),
            repair.plan.strengthened.len()
        );
    }
    emit_metrics(&metrics, &opts.metrics_out, opts.stats, &mut out)?;
    if findings > 0 {
        // A verdict, not a malfunction: the caller prints `output` and
        // exits non-zero so scripts can gate on the result.
        return Err(CliError::LintFindings { output: out, findings });
    }
    Ok(out)
}

/// Resolves one `predict` target to a trace: an existing trace file
/// (binary `WMRD` or trace JSON) is decoded as-is; anything else goes
/// through [`load_program`] and is executed once under the seeded
/// scheduler, exactly like `wmrd run`.
fn predict_input(target: &str, opts: &PredictOpts) -> Result<TraceSet, CliError> {
    let is_catalog = catalog::all().into_iter().any(|e| e.name == target);
    if !is_catalog && std::path::Path::new(target).exists() {
        let bytes = std::fs::read(target).map_err(file_err(target))?;
        if bytes.starts_with(b"WMRD") {
            return Ok(TraceSet::from_binary(&bytes)?);
        }
        if let Ok(text) = std::str::from_utf8(&bytes) {
            // A JSON file can hold either a trace or a program; traces
            // win, and programs fall through to `load_program`.
            if let Ok(trace) = TraceSet::from_json(text) {
                return Ok(trace);
            }
        }
    }
    let program = load_program(target)?;
    let mut builder = TraceBuilder::new(program.num_procs());
    if opts.model == MemoryModel::Sc {
        run_sc(&program, &mut RandomSched::new(opts.seed), &mut builder, RunConfig::default())?;
    } else {
        let mut sched = RandomWeakSched::new(opts.seed, 0.3);
        run_weak_hw(
            opts.hw,
            &program,
            opts.model,
            opts.fidelity,
            &mut sched,
            &mut builder,
            RunConfig::default(),
        )?;
    }
    let mut trace = builder.finish();
    trace.meta.program = Some(program.name().to_string());
    trace.meta.model = Some(opts.model.to_string());
    trace.meta.seed = Some(opts.seed);
    Ok(trace)
}

fn cmd_predict(opts: &PredictOpts) -> Result<String, CliError> {
    let metrics = metrics_for(&opts.metrics_out, opts.stats);
    metrics.context("command", "predict");
    metrics.context("order", opts.order);
    // Expand targets: the word `all` means every catalog entry.
    let mut targets: Vec<String> = Vec::new();
    for t in &opts.targets {
        if t == "all" {
            targets.extend(catalog::all().into_iter().map(|e| e.name.to_string()));
        } else {
            targets.push(t.clone());
        }
    }
    let mut reports = Vec::new();
    for target in &targets {
        let trace = predict_input(target, opts)?;
        let name = trace.meta.program.clone().unwrap_or_else(|| target.clone());
        reports.push(wmrd_predict::predict_with_metrics(
            &trace,
            &name,
            opts.pairing,
            opts.order,
            &metrics,
        )?);
    }
    let findings: u64 = reports.iter().map(|r| r.keys.len() as u64).sum();
    let mut out = String::new();
    if opts.json {
        if let [only] = reports.as_slice() {
            let _ = writeln!(out, "{}", serde_json::to_string_pretty(only)?);
        } else {
            let _ = writeln!(out, "{}", serde_json::to_string_pretty(&reports)?);
        }
    } else {
        for (i, report) in reports.iter().enumerate() {
            if i > 0 {
                let _ = writeln!(out);
            }
            let _ = write!(out, "{}", report.render());
        }
        if reports.len() > 1 {
            let racy = reports.iter().filter(|r| !r.is_race_free()).count();
            let beyond: usize = reports.iter().map(|r| r.predicted_only().count()).sum();
            let _ = writeln!(
                out,
                "\npredicted over {} trace(s): {} with predicted races, {} predictively \
                 race-free, {} key(s) beyond the observed schedule",
                reports.len(),
                racy,
                reports.len() - racy,
                beyond
            );
        }
    }
    emit_metrics(&metrics, &opts.metrics_out, opts.stats, &mut out)?;
    if findings > 0 {
        // A verdict, not a malfunction — mirror `lint`'s typed non-zero
        // exit so scripts can gate on predicted races.
        return Err(CliError::PredictFindings { output: out, findings });
    }
    Ok(out)
}

/// `wmrd capture`: run instrumented multithreaded workloads — real
/// `std::thread` workers on real atomics, instrumented by
/// `wmrd-capture` — and pipe the captured executions into the
/// analysis pipeline: inline hb1 analysis by default, trace files with
/// `--out`, a live daemon with `--sink` (`SUBMIT` for v2 traces, a
/// `STREAM`/`FEED`/`CLOSE` session for `WMRS` streams).
fn cmd_capture(opts: &CaptureOpts) -> Result<String, CliError> {
    use std::collections::BTreeSet;
    use wmrd_capture::workloads;
    use wmrd_core::{detect_races, event_race_keys, HbGraph};
    use wmrd_trace::metric_keys;

    if opts.workload == "list" {
        let mut out = String::new();
        for w in workloads::all() {
            let _ = writeln!(
                out,
                "{:<16} {} thread(s)  {}  {}",
                w.name,
                w.threads,
                if w.racy { "racy " } else { "clean" },
                w.description
            );
        }
        return Ok(out);
    }
    let selected: Vec<&workloads::Workload> = if opts.workload == "all" {
        workloads::all().iter().collect()
    } else {
        vec![workloads::find(&opts.workload).ok_or_else(|| {
            CliError::NotFound(format!(
                "`{}` is not a capture workload (try `wmrd capture list`)",
                opts.workload
            ))
        })?]
    };

    let metrics = metrics_for(&opts.metrics_out, opts.stats);
    metrics.context("command", "capture");
    let mut out = String::new();
    let mut delivered = 0u64;
    let mut runs_done = 0u64;
    let mut unique: BTreeSet<wmrd_core::RaceKey> = BTreeSet::new();
    metrics.time(metric_keys::CAPTURE_TOTAL, || -> Result<(), CliError> {
        let mut client = match &opts.sink {
            Some(to) => Some(Client::connect(&Endpoint::parse(to)?)?),
            None => None,
        };
        for w in selected {
            for run in 0..opts.runs {
                let seed = opts.seed + run;
                let capture = w.capture(seed);
                let stats = capture.stats();
                runs_done += 1;
                metrics.incr(metric_keys::CAPTURE_RUNS);
                metrics.add(metric_keys::CAPTURE_DATA_OPS, stats.data_ops);
                metrics.add(metric_keys::CAPTURE_SYNC_OPS, stats.sync_ops);
                metrics.add(metric_keys::CAPTURE_THREADS, stats.threads);
                metrics.add(metric_keys::CAPTURE_NUDGES, stats.nudges);
                metrics.add(metric_keys::CAPTURE_DROPPED_OPS, stats.dropped_ops);
                metrics.add(metric_keys::CAPTURE_PANICS, stats.panics);
                metrics.add(metric_keys::CAPTURE_UNRESOLVED_OBSERVED, stats.unresolved_observed);

                let trace = capture.to_traceset();
                let hb = HbGraph::build(&trace, PairingPolicy::ByRole)?;
                let keys = event_race_keys(&detect_races(&trace, &hb), &trace);
                let _ = write!(
                    out,
                    "{} seed={seed}: {} thread(s), {} op(s) ({} sync), {} race key(s)",
                    w.name,
                    stats.threads,
                    stats.ops(),
                    stats.sync_ops,
                    keys.len()
                );
                if stats.panics > 0 || stats.dropped_ops > 0 {
                    let _ = write!(
                        out,
                        " [{} panic(s), {} dropped op(s)]",
                        stats.panics, stats.dropped_ops
                    );
                }
                let _ = writeln!(out);
                for key in &keys {
                    let _ = writeln!(out, "  race {}", wmrd_catalog::format_key(key));
                }
                unique.extend(keys);

                if let Some(prefix) = &opts.out {
                    let ext = if opts.wmrs { "wmrs" } else { "trace" };
                    let path = format!("{prefix}-{}-{seed}.{ext}", w.name);
                    let bytes = if opts.wmrs { capture.to_wmrs()? } else { trace.to_binary() };
                    std::fs::write(&path, bytes).map_err(file_err(&path))?;
                    let _ = writeln!(out, "  wrote {path}");
                }
                if let Some(client) = client.as_mut() {
                    let delivery = if opts.wmrs {
                        let summary = deliver_wmrs(client, &capture, opts.chunk)?;
                        delivered += 1;
                        metrics.incr(metric_keys::CAPTURE_SUBMITTED);
                        summary
                    } else {
                        match client.submit(&trace.to_binary())? {
                            Reply::Ok(payload) => {
                                delivered += 1;
                                metrics.incr(metric_keys::CAPTURE_SUBMITTED);
                                String::from_utf8_lossy(&payload).trim_end().to_string()
                            }
                            Reply::Busy(message) => format!("BUSY ({message})"),
                            Reply::Err { code, message } => {
                                format!("REJECTED ({}: {message})", code.as_str())
                            }
                        }
                    };
                    let _ = writeln!(out, "  sink: {delivery}");
                }
            }
        }
        Ok(())
    })?;
    metrics.set_gauge(metric_keys::CAPTURE_UNIQUE_RACES, unique.len() as u64);
    let _ = writeln!(
        out,
        "captured {runs_done} run(s): {} distinct race key(s){}",
        unique.len(),
        if opts.sink.is_some() {
            format!(", {delivered} delivered to sink")
        } else {
            String::new()
        }
    );
    emit_metrics(&metrics, &opts.metrics_out, opts.stats, &mut out)?;
    Ok(out)
}

/// Streams one captured run to a daemon as a `STREAM`/`FEED`/`CLOSE`
/// session of `WMRS` frames, returning the session's closing summary.
fn deliver_wmrs(
    client: &mut Client,
    capture: &wmrd_capture::CaptureTrace,
    chunk: usize,
) -> Result<String, CliError> {
    let bytes = capture.to_wmrs()?;
    let session = session_token(&format!("capture-{}-{}", capture.name(), capture.seed()));
    let meta = StreamMeta {
        program: Some(capture.name().to_string()),
        model: Some("capture".to_string()),
        seed: Some(capture.seed()),
    };
    let mut summary = String::new();
    let _ = write!(summary, "{}", client.stream_open(&session, &meta)?.into_text()?.trim_end());
    for frame in bytes.chunks(chunk.max(1)) {
        let ack = client.stream_feed(frame)?.into_text()?;
        if !ack.trim_end().ends_with("new=0") {
            let _ = write!(summary, "; {}", ack.trim_end());
        }
    }
    let mut attempts = 0;
    let closed = loop {
        match client.stream_close()? {
            Reply::Busy(_) if attempts < CLOSE_RETRIES => {
                attempts += 1;
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            reply => break reply.into_text()?,
        }
    };
    let _ = write!(summary, "; {}", closed.trim_end());
    Ok(summary)
}

/// Builds the campaign spec an `explore` invocation describes.
fn campaign_spec(opts: &ExploreOpts) -> Result<CampaignSpec, CliError> {
    let mut config = RunConfig::default();
    if let Some(steps) = opts.budget {
        config = config.with_max_steps(steps);
    }
    if let Some(cycles) = opts.cycle_budget {
        config = config.with_max_cycles(cycles);
    }
    let mut spec = CampaignSpec::new(opts.seeds.0, opts.seeds.1)
        .with_hws(opts.hws.clone())
        .with_models(opts.models.clone())
        .with_drain_probs(opts.drain_probs.clone())
        .with_config(config);
    spec.fidelity = opts.fidelity;
    spec.pairing = opts.pairing;
    if opts.always_analyze {
        spec = spec.with_postmortem(PostMortemPolicy::Always);
    }
    if let Some(plan) = &opts.inject {
        spec = spec.with_faults(parse_fault_plan(plan)?);
    }
    Ok(spec)
}

/// Executes one campaign point into a finished trace, using the same
/// scheduler construction the campaign workers (and `--sink`
/// re-execution) use, so the recorded schedule is one the campaign
/// itself covers.
fn exec_trace(program: &Program, exec: &ExecSpec, config: RunConfig) -> Result<TraceSet, CliError> {
    let mut builder = TraceBuilder::new(program.num_procs());
    if exec.model == MemoryModel::Sc {
        run_sc(program, &mut RandomSched::new(exec.seed), &mut builder, config)?;
    } else {
        let mut sched = RandomWeakSched::new(exec.seed, exec.drain_prob);
        run_weak_hw(exec.hw, program, exec.model, exec.fidelity, &mut sched, &mut builder, config)?;
    }
    Ok(builder.finish())
}

fn cmd_explore(opts: &ExploreOpts) -> Result<String, CliError> {
    let program = load_program(&opts.program)?;
    let spec = campaign_spec(opts)?;
    let metrics = metrics_for(&opts.metrics_out, opts.stats);
    metrics.context("command", "explore");
    metrics.context("program", program.name());

    if let Some(seed) = opts.repro {
        // Replay one point in full detail; the configuration lists
        // pick their first entries, so a finding's coordinates can be
        // fed back verbatim.
        let exec = ExecSpec {
            hw: spec.hws[0],
            model: spec.models[0],
            fidelity: spec.fidelity,
            drain_prob: spec.drain_probs[0],
            seed,
        };
        metrics.context("seed", seed);
        let replay = wmrd_explore::replay(&program, &exec, spec.config, spec.pairing)?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "replay of {} (seed {}, {}, {}, p={}{})",
            program.name(),
            seed,
            exec.hw,
            exec.model,
            exec.drain_prob,
            if replay.budget_hit { ", budget-stopped" } else { "" },
        );
        let _ = write!(out, "{}", replay.report);
        if !replay.keys.is_empty() {
            let _ = writeln!(out, "race identities reached by this seed:");
            for key in &replay.keys {
                let _ = writeln!(
                    out,
                    "  m[{}] {}:{:?} × {}:{:?}",
                    key.loc.addr(),
                    key.a.proc,
                    key.a.kind,
                    key.b.proc,
                    key.b.kind
                );
            }
        }
        emit_metrics(&metrics, &opts.metrics_out, opts.stats, &mut out)?;
        return Ok(out);
    }

    if opts.verify_repair {
        return cmd_verify_repair(&program, opts, &spec, &metrics);
    }

    // With --prune-static, lint before simulating: a statically
    // race-free program cannot produce findings (lint over-approximates
    // the dynamic detector), so its campaign is skipped outright.
    let lint = opts.prune_static.then(|| wmrd_lint::analyze_with_metrics(&program, &metrics));
    if let Some(lint) = &lint {
        if lint.is_race_free() {
            metrics.add(wmrd_trace::metric_keys::LINT_PRUNED_CAMPAIGNS, 1);
            let report = CampaignReport {
                program: program.name().to_string(),
                points: spec.num_points() as u64,
                pruned: true,
                prune_reason: Some(format!(
                    "statically race-free ({} access(es), {} qualified lock(s))",
                    lint.accesses,
                    lint.locks.len()
                )),
                ..CampaignReport::default()
            };
            report.record_into(&metrics);
            let mut out = report.render();
            if let Some(path) = &opts.report_out {
                std::fs::write(path, serde_json::to_string_pretty(&report)?)
                    .map_err(file_err(path))?;
                let _ = writeln!(out, "campaign report written to {path}");
            }
            emit_metrics(&metrics, &opts.metrics_out, opts.stats, &mut out)?;
            return Ok(out);
        }
    }

    // With --predict, run the campaign's first execution point once and
    // predict races from that single trace; the campaign then serves as
    // the soundness oracle below.
    let predicted = opts
        .predict
        .then(|| -> Result<wmrd_predict::PredictReport, CliError> {
            let exec = ExecSpec {
                hw: spec.hws[0],
                model: spec.models[0],
                fidelity: spec.fidelity,
                drain_prob: spec.drain_probs[0],
                seed: opts.seeds.0,
            };
            let trace = exec_trace(&program, &exec, spec.config)?;
            Ok(wmrd_predict::predict_with_metrics(
                &trace,
                program.name(),
                spec.pairing,
                wmrd_predict::PredictOrder::Wcp,
                &metrics,
            )?)
        })
        .transpose()?;

    let jobs = if opts.jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.jobs
    };
    let sink = opts
        .sink
        .as_deref()
        .map(|s| SinkObserver::connect(s, &program, spec.config))
        .transpose()?;
    let report = match &sink {
        Some(observer) => run_campaign_observed(&program, &spec, jobs, &metrics, observer)?,
        None => run_campaign(&program, &spec, jobs, &metrics)?,
    };
    report.record_into(&metrics);
    let mut out = report.render();
    if let Some(lint) = &lint {
        // Soundness cross-check: every dynamic finding must fall inside
        // the static may-race set.
        let missed: Vec<_> = report.keys().filter(|k| !lint.covers(k)).collect();
        metrics.add(wmrd_trace::metric_keys::LINT_CROSSCHECK_VIOLATIONS, missed.len() as u64);
        if missed.is_empty() {
            let _ = writeln!(
                out,
                "static cross-check: {} dynamic race identit{} inside the static may-race set \
                 ({} static key(s))",
                report.races.len(),
                if report.races.len() == 1 { "y" } else { "ies" },
                lint.keys.len()
            );
        } else {
            for key in &missed {
                let _ = writeln!(
                    out,
                    "WARNING: dynamic race m[{}] {}:{:?} × {}:{:?} escaped the static \
                     may-race set — lint soundness violation",
                    key.loc.addr(),
                    key.a.proc,
                    key.a.kind,
                    key.b.proc,
                    key.b.kind
                );
            }
        }
    }
    if let Some(pred) = &predicted {
        // Soundness oracle: every predicted race identity must be
        // reached by some seed of the campaign.
        let reached: std::collections::BTreeSet<_> = report.keys().copied().collect();
        let escaped: Vec<_> = pred.keys.iter().filter(|k| !reached.contains(k)).collect();
        metrics.add(wmrd_trace::metric_keys::PREDICT_CROSSCHECK_VIOLATIONS, escaped.len() as u64);
        if escaped.is_empty() {
            let _ = writeln!(
                out,
                "predictive cross-check ({} order, seed {}): {} predicted key(s), {} beyond \
                 single-seed hb1, all reached by the campaign",
                pred.order,
                opts.seeds.0,
                pred.keys.len(),
                pred.predicted_only().count()
            );
        } else {
            for key in &escaped {
                let _ = writeln!(
                    out,
                    "WARNING: predicted race m[{}] {}:{:?} × {}:{:?} was reached by no campaign \
                     seed — prediction soundness violation",
                    key.loc.addr(),
                    key.a.proc,
                    key.a.kind,
                    key.b.proc,
                    key.b.kind
                );
            }
        }
    }
    if let Some(observer) = &sink {
        let _ = writeln!(out, "{}", observer.summary());
    }
    if !report.is_race_free() {
        let _ = writeln!(
            out,
            "reproduce a finding with: wmrd explore {} --repro <seed> (plus its hw/model/drain flags)",
            opts.program
        );
    }
    if let Some(path) = &opts.report_out {
        std::fs::write(path, serde_json::to_string_pretty(&report)?).map_err(file_err(path))?;
        let _ = writeln!(out, "campaign report written to {path}");
    }
    emit_metrics(&metrics, &opts.metrics_out, opts.stats, &mut out)?;
    Ok(out)
}

/// Raw out-of-order hardware can livelock a spin loop (no sync drains
/// means a release can stay buffered arbitrarily long), so the
/// `--verify-repair` ablation caps each raw execution at this many
/// steps; truncated runs count as quiesced, exactly like `--budget`.
const ABLATION_MAX_STEPS: u64 = 4_000;

/// `wmrd explore --verify-repair`: synthesize the critical-cycle repair
/// for the program, then verify it dynamically —
///
/// 1. the **repaired** program must reach zero race identities in a
///    campaign over *every* hardware backend and the requested seed
///    range, and must satisfy Condition 3.4 on each backend;
/// 2. the **unrepaired** program is run under raw out-of-order hardware
///    (the one configuration outside the static contract) as an
///    ablation, reporting how many of its dynamic races the cycle
///    analysis classified `weak-only` — evidence the classification,
///    not just the fence insertion, carries information.
///
/// A verification failure is a verdict ([`CliError::RepairUnverified`]):
/// the report still prints, and the exit status is what scripts gate on.
fn cmd_verify_repair(
    program: &Program,
    opts: &ExploreOpts,
    spec: &CampaignSpec,
    metrics: &Metrics,
) -> Result<String, CliError> {
    let report = wmrd_lint::analyze_with_metrics(program, metrics);
    let cycles = wmrd_lint::analyze_cycles_with_metrics(program, &report, metrics);
    let repair = wmrd_lint::repair_with_metrics(program, &report, metrics);
    let mut out = String::new();
    let _ = writeln!(out, "repair verification for {}", program.name());
    let _ = write!(out, "{}", cycles.render());
    let _ = write!(out, "{}", repair.plan.render());
    let jobs = if opts.jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.jobs
    };
    let mut failure: Option<String> = None;

    // 1a. The repaired program races on no backend.
    let mut verify_spec = spec.clone();
    verify_spec.hws = HwImpl::ALL.to_vec();
    verify_spec.fidelity = Fidelity::Conditioned;
    let campaign = run_campaign(&repair.repaired, &verify_spec, jobs, metrics)?;
    campaign.record_into(metrics);
    let dynamic: Vec<_> = campaign.keys().copied().collect();
    let _ = writeln!(
        out,
        "repaired campaign: {} point(s) across {} backend(s): {} race identit{}",
        campaign.points,
        verify_spec.hws.len(),
        dynamic.len(),
        if dynamic.len() == 1 { "y" } else { "ies" }
    );
    for key in &dynamic {
        let _ = writeln!(
            out,
            "  STILL RACES: m[{}] {}:{:?} × {}:{:?}",
            key.loc.addr(),
            key.a.proc,
            key.a.kind,
            key.b.proc,
            key.b.kind
        );
    }
    if !dynamic.is_empty() {
        failure = Some(format!(
            "repaired program still reached {} race identit{}",
            dynamic.len(),
            if dynamic.len() == 1 { "y" } else { "ies" }
        ));
    }

    // 1b. The repaired program satisfies Condition 3.4 on each backend.
    let samples = sample_sc(&repair.repaired, 0..60, spec.config)?;
    let sigs = sc_race_signatures(&samples, spec.pairing)?;
    for hw in HwImpl::ALL {
        let outcomes = check_condition_3_4_hw(
            hw,
            &repair.repaired,
            verify_spec.models[0],
            Fidelity::Conditioned,
            opts.seeds.0..opts.seeds.1,
            &sigs,
            spec.pairing,
        )?;
        let bad = outcomes.iter().filter(|o| !o.holds()).count();
        let _ = writeln!(
            out,
            "condition 3.4 on {hw}: {}/{} seed(s) clean",
            outcomes.len() - bad,
            outcomes.len()
        );
        if bad > 0 && failure.is_none() {
            failure = Some(format!("Condition 3.4 violated on {hw} ({bad} seed(s))"));
        }
    }

    // 2. Ablation: the unrepaired program under raw out-of-order
    // hardware, step-capped because raw spin loops can livelock.
    let mut ablation = spec.clone();
    ablation.hws = vec![HwImpl::Ooo];
    ablation.fidelity = Fidelity::Raw;
    ablation.config = ablation.config.with_max_steps(spec.config.max_steps.min(ABLATION_MAX_STEPS));
    let raw = run_campaign(program, &ablation, jobs, metrics)?;
    let raw_keys = raw.keys().count();
    let weak_hits =
        raw.keys().filter(|k| cycles.class_of(k) == Some(wmrd_lint::RaceClass::WeakOnly)).count();
    if raw_keys > 0 {
        let _ = writeln!(
            out,
            "ablation (unrepaired, ooo raw): {raw_keys} race identit{}, {weak_hits} classified \
             weak-only by the cycle analysis",
            if raw_keys == 1 { "y" } else { "ies" }
        );
    } else {
        let _ = writeln!(
            out,
            "ablation (unrepaired, ooo raw): no races reached over this seed range (inconclusive)"
        );
    }

    match failure {
        Some(reason) => {
            let _ = writeln!(out, "REPAIR UNVERIFIED: {reason}");
            emit_metrics(metrics, &opts.metrics_out, opts.stats, &mut out)?;
            Err(CliError::RepairUnverified { output: out, reason })
        }
        None => {
            let _ = writeln!(
                out,
                "repair verified: race-free and Condition-3.4-clean on every backend \
                 (seeds {}..{})",
                opts.seeds.0, opts.seeds.1
            );
            emit_metrics(metrics, &opts.metrics_out, opts.stats, &mut out)?;
            Ok(out)
        }
    }
}

/// Bytes per `FEED` frame when `--sink` streams a racy execution.
const SINK_CHUNK_BYTES: usize = 4096;
/// `CLOSE` retries under a `BUSY` analysis queue before giving up.
const CLOSE_RETRIES: usize = 5;

/// Makes a `STREAM` session token request-line-safe: the protocol
/// carries the name as one whitespace-delimited token with `key=value`
/// metadata after it, so spaces, `=`, and newlines become `-`.
fn session_token(raw: &str) -> String {
    raw.chars().map(|c| if c == '=' || c.is_whitespace() { '-' } else { c }).collect()
}

/// Streams a campaign's racy executions live to a `wmrd serve` daemon.
///
/// Each racy execution is deterministically re-executed (same seeded
/// scheduler coordinates the campaign used) into the
/// operation-granular `WMRS` stream format and fed to the daemon in
/// bounded chunks over one `STREAM`/`FEED`/`CLOSE` session, exercising
/// the daemon's online detector instead of shipping one monolithic
/// `SUBMIT` payload. The finished trace cannot be streamed directly:
/// its events aggregate operations, while the stream format (and the
/// positional operation-identity contract) is per-operation. Each
/// session opens its own connection — worker threads call the observer
/// concurrently, and per-execution connections need no shared client
/// lock. Failures (including `BUSY` refusals) are counted, not fatal:
/// losing a sink stream never loses the campaign report, and the
/// daemon's digest dedup makes re-streaming a later campaign cheap.
struct SinkObserver {
    endpoint: Endpoint,
    program: Program,
    config: RunConfig,
    submitted: std::sync::atomic::AtomicU64,
    refused: std::sync::atomic::AtomicU64,
    failed: std::sync::atomic::AtomicU64,
}

impl SinkObserver {
    /// Parses the endpoint and verifies the daemon answers a `PING`, so
    /// a dead sink fails the invocation before any simulation runs.
    fn connect(spec: &str, program: &Program, config: RunConfig) -> Result<Self, CliError> {
        let endpoint = Endpoint::parse(spec)?;
        let mut probe = Client::connect(&endpoint)?;
        probe.ping()?.into_text()?;
        Ok(SinkObserver {
            endpoint,
            program: program.clone(),
            config,
            submitted: 0.into(),
            refused: 0.into(),
            failed: 0.into(),
        })
    }

    /// Re-executes `exec` into `WMRS` bytes and streams them in chunks;
    /// `None` means a transport or re-execution failure.
    fn stream_one(&self, exec: &ExecSpec, trace: &TraceSet) -> Option<Reply> {
        let mut sched = RandomWeakSched::new(exec.seed, exec.drain_prob);
        let mut writer = StreamWriter::new(Vec::new(), self.program.num_procs());
        run_weak_hw(
            exec.hw,
            &self.program,
            exec.model,
            exec.fidelity,
            &mut sched,
            &mut writer,
            self.config,
        )
        .ok()?;
        let bytes = writer.finish().ok()?;

        let meta = StreamMeta {
            program: trace.meta.program.clone(),
            model: trace.meta.model.clone(),
            seed: trace.meta.seed,
        };
        let session = session_token(&format!(
            "{}-{}-{}",
            trace.meta.program.as_deref().unwrap_or("campaign"),
            exec.model,
            exec.seed
        ));
        let mut client = Client::connect(&self.endpoint).ok()?;
        match client.stream_open(&session, &meta).ok()? {
            Reply::Ok(_) => {}
            // No session slot (BUSY) or a protocol error: report it.
            other => return Some(other),
        }
        for chunk in bytes.chunks(SINK_CHUNK_BYTES) {
            match client.stream_feed(chunk).ok()? {
                Reply::Ok(_) => {}
                other => return Some(other),
            }
        }
        // CLOSE is refused BUSY when the analysis queue is full; the
        // session survives the refusal, so retry briefly.
        for _ in 0..CLOSE_RETRIES {
            match client.stream_close().ok()? {
                Reply::Busy(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
                reply => return Some(reply),
            }
        }
        client.stream_close().ok()
    }

    fn summary(&self) -> String {
        use std::sync::atomic::Ordering::Relaxed;
        format!(
            "sink {}: {} execution(s) streamed & submitted, {} refused busy, {} failed",
            self.endpoint,
            self.submitted.load(Relaxed),
            self.refused.load(Relaxed),
            self.failed.load(Relaxed)
        )
    }
}

impl CampaignObserver for SinkObserver {
    fn racy_execution(&self, exec: &ExecSpec, trace: &TraceSet) {
        use std::sync::atomic::Ordering::Relaxed;
        match self.stream_one(exec, trace) {
            Some(Reply::Ok(_)) => self.submitted.fetch_add(1, Relaxed),
            Some(Reply::Busy(_)) => self.refused.fetch_add(1, Relaxed),
            Some(Reply::Err { .. }) | None => self.failed.fetch_add(1, Relaxed),
        };
    }
}

fn cmd_serve(opts: &ServeOpts) -> Result<String, CliError> {
    let endpoint = Endpoint::parse(&opts.listen)?;
    let config = ServeConfig {
        workers: opts.workers,
        queue_cap: opts.queue_cap,
        catalog: opts.catalog.as_ref().map(std::path::PathBuf::from),
        pairing: opts.pairing,
        max_streams: opts.max_streams,
        ..ServeConfig::default()
    };
    let server = Server::bind(&endpoint, config)?;
    // The readiness banner goes out immediately — scripts wait on it —
    // while the command's return value is the post-drain summary.
    println!(
        "wmrd-serve listening on {} ({} workers, queue cap {}, {} stream slots, catalog: {})",
        server.endpoint(),
        opts.workers,
        opts.queue_cap,
        opts.max_streams,
        opts.catalog.as_deref().unwrap_or("in-memory")
    );
    let summary = server.run()?;
    Ok(format!("{summary}\n"))
}

fn cmd_submit(opts: &SubmitOpts) -> Result<String, CliError> {
    let endpoint = Endpoint::parse(&opts.to)?;
    let mut client = Client::connect(&endpoint)?;
    let mut out = String::new();
    let mut rejected = 0u64;
    for path in &opts.files {
        let bytes = std::fs::read(path).map_err(file_err(path))?;
        match client.submit(&bytes)? {
            Reply::Ok(payload) => {
                let _ = writeln!(out, "{path}: {}", String::from_utf8_lossy(&payload).trim_end());
            }
            Reply::Busy(message) => {
                rejected += 1;
                let _ = writeln!(out, "{path}: BUSY ({message})");
            }
            Reply::Err { code, message } => {
                rejected += 1;
                let _ = writeln!(out, "{path}: REJECTED ({}: {message})", code.as_str());
            }
        }
    }
    if rejected > 0 {
        let _ = writeln!(out, "{rejected} of {} submission(s) not ingested", opts.files.len());
    }
    Ok(out)
}

/// `wmrd stream`: execute a program locally and feed its operations to
/// a daemon's online detector over a `STREAM`/`FEED`/`CLOSE` session.
///
/// The execution is driven into the operation-granular `WMRS` format
/// first, then delivered in `--chunk`-sized `FEED` frames — chunk
/// boundaries are arbitrary byte offsets, the daemon reassembles
/// records across them. Races surface in `FEED` replies the moment
/// their second access arrives; `CLOSE` seals the trace, runs the
/// post-mortem cross-check, and ingests into the catalog.
fn cmd_stream(opts: &StreamOpts) -> Result<String, CliError> {
    let endpoint = Endpoint::parse(&opts.to)?;
    let program = load_program(&opts.program)?;

    let mut writer = StreamWriter::new(Vec::new(), program.num_procs());
    if opts.model == MemoryModel::Sc {
        run_sc(&program, &mut RandomSched::new(opts.seed), &mut writer, RunConfig::default())?;
    } else {
        let mut sched = RandomWeakSched::new(opts.seed, 0.3);
        run_weak_hw(
            opts.hw,
            &program,
            opts.model,
            opts.fidelity,
            &mut sched,
            &mut writer,
            RunConfig::default(),
        )?;
    }
    let records = writer.records();
    let bytes = writer.finish()?;

    let session = match &opts.session {
        Some(name) => name.clone(),
        None => session_token(&format!("{}-{}", program.name(), opts.seed)),
    };
    let meta = StreamMeta {
        program: Some(program.name().to_string()),
        model: Some(opts.model.to_string()),
        seed: Some(opts.seed),
    };

    let mut out = String::new();
    let mut client = Client::connect(&endpoint)?;
    let _ = write!(out, "{}", client.stream_open(&session, &meta)?.into_text()?);
    let mut chunks = 0u64;
    for chunk in bytes.chunks(opts.chunk) {
        chunks += 1;
        let ack = client.stream_feed(chunk)?.into_text()?;
        // Quiet acknowledgements are progress noise; surface only the
        // chunks that completed new races (their reply carries the
        // race lines).
        if !ack.trim_end().ends_with("new=0") {
            let _ = write!(out, "{ack}");
        }
    }
    let mut attempts = 0;
    let closed = loop {
        match client.stream_close()? {
            Reply::Busy(message) if attempts < CLOSE_RETRIES => {
                attempts += 1;
                let _ = writeln!(out, "close refused busy ({message}); retrying");
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            reply => break reply.into_text()?,
        }
    };
    let _ = write!(out, "{closed}");
    let _ = writeln!(
        out,
        "streamed {records} operation(s) in {chunks} chunk(s) of at most {} bytes",
        opts.chunk
    );
    Ok(out)
}

fn cmd_query(opts: &QueryOpts) -> Result<String, CliError> {
    let endpoint = Endpoint::parse(&opts.to)?;
    let mut client = Client::connect(&endpoint)?;
    let reply = match opts.spec.as_str() {
        // `stats` is already JSON; the other control words have no
        // row-structured payload for `--format json` to re-render.
        "stats" => client.stats()?,
        "ping" | "compact" | "shutdown" if opts.json => {
            return Err(CliError::Usage(format!(
                "`--format json` does not apply to `{}`",
                opts.spec
            )));
        }
        "ping" => client.ping()?,
        "compact" => client.compact()?,
        "shutdown" => client.shutdown()?,
        spec if opts.json => client.query(&format!("json:{spec}"))?,
        spec => client.query(spec)?,
    };
    Ok(reply.into_text()?)
}

fn cmd_demo() -> Result<String, CliError> {
    let entry = catalog::work_queue_buggy();
    let mut sink = TraceBuilder::new(entry.program.num_procs());
    let mut sched = WeakScript::new(catalog::work_queue_weak_script());
    run_weak(
        &entry.program,
        MemoryModel::Wo,
        wmrd_sim::Fidelity::Conditioned,
        &mut sched,
        &mut sink,
        RunConfig::default(),
    )?;
    let mut trace = sink.finish();
    trace.meta.program = Some(entry.name.into());
    trace.meta.model = Some("WO".into());
    let report = PostMortem::new(&trace).analyze()?;
    let mut out = String::new();
    let _ = writeln!(out, "the paper's Figure 2 work queue, on weakly ordered hardware:\n");
    let _ = write!(out, "{report}");
    let _ = writeln!(out, "\ntimeline:\n{}", render::to_timeline(&trace, &report));
    let _ = writeln!(
        out,
        "the FIRST partition is the missing-Test&Set bug; the withheld races are\n\
         the stale-region collisions that no sequentially consistent execution\n\
         could produce. Run `wmrd analyze --dot` on your own traces for pictures."
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("wmrd-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_catalog() {
        assert!(run_cli(&argv("help")).unwrap().contains("USAGE"));
        let listing = run_cli(&argv("catalog")).unwrap();
        assert!(listing.contains("fig1a"));
        assert!(listing.contains("work-queue-buggy"));
        assert!(listing.contains("ticket-lock"));
    }

    #[test]
    fn show_disassembles() {
        let text = run_cli(&argv("show fig1b")).unwrap();
        assert!(text.contains("unset"), "{text}");
        assert!(text.contains("test&set"), "{text}");
        assert!(text.contains("init m[2] = 1"), "{text}");
    }

    #[test]
    fn export_then_run_from_file() {
        let path = tmp("exported.json");
        run_cli(&argv(&format!("export fig1a {path}"))).unwrap();
        let out = run_cli(&argv(&format!("run {path} --model wo --seed 2"))).unwrap();
        assert!(out.contains("ran fig1a on WO"), "{out}");
        assert!(out.contains("data race"), "inline analysis expected:\n{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_records_and_analyze_reads_both_formats() {
        let json_path = tmp("t.json");
        let bin_path = tmp("t.bin");
        run_cli(&argv(&format!("run fig1a --trace {json_path}"))).unwrap();
        run_cli(&argv(&format!("run fig1a --trace {bin_path} --binary"))).unwrap();
        let from_json = run_cli(&argv(&format!("analyze {json_path}"))).unwrap();
        let from_bin = run_cli(&argv(&format!("analyze {bin_path}"))).unwrap();
        assert!(from_json.contains("1 data race(s)"), "{from_json}");
        assert_eq!(from_json, from_bin);
        std::fs::remove_file(&json_path).ok();
        std::fs::remove_file(&bin_path).ok();
    }

    #[test]
    fn analyze_flags() {
        let path = tmp("t2.json");
        let dot = tmp("g.dot");
        run_cli(&argv(&format!("run work-queue-buggy --model wo --seed 4 --trace {path}")))
            .unwrap();
        let out = run_cli(&argv(&format!(
            "analyze {path} --all --timeline --dot {dot} --pairing by-role"
        )))
        .unwrap();
        assert!(out.contains("verdict"), "{out}");
        assert!(out.contains("dot graph written"), "{out}");
        let dot_text = std::fs::read_to_string(&dot).unwrap();
        assert!(dot_text.starts_with("digraph"));
        let json_out = run_cli(&argv(&format!("analyze {path} --json"))).unwrap();
        assert!(json_out.trim_start().starts_with('{'));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&dot).ok();
    }

    #[test]
    fn ops_trace_export() {
        let path = tmp("ops.json");
        let out = run_cli(&argv(&format!("run fig1b --ops {path}"))).unwrap();
        assert!(out.contains("operation trace written"));
        let text = std::fs::read_to_string(&path).unwrap();
        let ops: wmrd_trace::OpTrace = serde_json::from_str(&text).unwrap();
        assert!(ops.num_ops() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_reports_condition_3_4() {
        let ok = run_cli(&argv("check producer-consumer --model rcsc --seeds 3")).unwrap();
        assert!(ok.contains("every execution satisfied Condition 3.4"), "{ok}");
        assert!(ok.contains("data-race-free"), "{ok}");
        let racy = run_cli(&argv("check fig1a --model wo --seeds 3")).unwrap();
        assert!(racy.contains("racy"), "{racy}");
        assert!(racy.contains("every execution satisfied Condition 3.4"), "{racy}");
    }

    #[test]
    fn demo_tells_the_story() {
        let out = run_cli(&argv("demo")).unwrap();
        assert!(out.contains("FIRST"), "{out}");
        assert!(out.contains("end of estimated SCP"), "{out}");
    }

    #[test]
    fn run_writes_metrics_and_stats() {
        let path = tmp("m-run.json");
        let out =
            run_cli(&argv(&format!("run fig1a --model wo --seed 3 --metrics {path} --stats")))
                .unwrap();
        assert!(out.contains("metrics written to"), "{out}");
        assert!(out.contains("counters:"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let report: wmrd_trace::RunMetrics = serde_json::from_str(&text).unwrap();
        assert_eq!(report.schema_version, wmrd_trace::RunMetrics::SCHEMA_VERSION);
        assert_eq!(report.context.get("command").map(String::as_str), Some("run"));
        assert_eq!(report.context.get("program").map(String::as_str), Some("fig1a"));
        assert_eq!(report.context.get("seed").map(String::as_str), Some("3"));
        assert!(report.counter("sim.data_writes").unwrap() >= 2, "{report:?}");
        assert!(report.gauge("sim.steps").is_some());
        assert!(report.gauge("trace.events").is_some());
        assert!(report.gauge("analysis.races").is_some(), "inline analysis is metered");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn analyze_metrics_pick_up_trace_context() {
        let trace_path = tmp("m-trace.json");
        let m_path = tmp("m-analyze.json");
        run_cli(&argv(&format!("run fig1a --model wo --seed 2 --trace {trace_path}"))).unwrap();
        let out = run_cli(&argv(&format!("analyze {trace_path} --metrics {m_path}"))).unwrap();
        assert!(out.contains("metrics written to"), "{out}");
        let report: wmrd_trace::RunMetrics =
            serde_json::from_str(&std::fs::read_to_string(&m_path).unwrap()).unwrap();
        assert_eq!(report.context.get("command").map(String::as_str), Some("analyze"));
        assert_eq!(report.context.get("program").map(String::as_str), Some("fig1a"));
        assert!(report.gauge("analysis.candidate_pairs").is_some());
        assert!(report.phase_ns("analysis.hb_build").is_some());
        std::fs::remove_file(&trace_path).ok();
        std::fs::remove_file(&m_path).ok();
    }

    #[test]
    fn check_stats_summary() {
        let out = run_cli(&argv("check fig1a --model wo --seeds 2 --stats")).unwrap();
        assert!(out.contains("check.seeds"), "{out}");
        assert!(out.contains("check.racy"), "{out}");
    }

    #[test]
    fn no_metrics_flags_no_metrics_output() {
        let out = run_cli(&argv("run fig1a")).unwrap();
        assert!(!out.contains("metrics written"), "{out}");
        assert!(!out.contains("counters:"), "{out}");
    }

    #[test]
    fn explore_hunts_and_dedups_races() {
        let out = run_cli(&argv("explore fig1a --seeds 0..12 --jobs 2")).unwrap();
        assert!(out.contains("campaign: fig1a (12 points)"), "{out}");
        assert!(out.contains("deduplicated race"), "fig1a is racy:\n{out}");
        assert!(out.contains("store-buffer/WO/p=0.3"), "{out}");
        assert!(out.contains("reproduce a finding"), "{out}");
    }

    #[test]
    fn explore_race_free_program() {
        let out = run_cli(&argv("explore producer-consumer --seeds 0..6 --jobs 2")).unwrap();
        assert!(out.contains("no data races found"), "{out}");
    }

    #[test]
    fn explore_repro_replays_one_seed() {
        // Find a racy seed, then replay it.
        let campaign = run_cli(&argv("explore fig1a --seeds 0..12 --jobs 2")).unwrap();
        let seed_word = campaign
            .split("(seed ")
            .nth(1)
            .expect("a finding names its first-reaching seed")
            .split(',')
            .next()
            .unwrap();
        let out =
            run_cli(&argv(&format!("explore fig1a --repro {seed_word} --seeds 0..12"))).unwrap();
        assert!(out.contains(&format!("replay of fig1a (seed {seed_word}")), "{out}");
        assert!(out.contains("race identities reached by this seed"), "{out}");
    }

    #[test]
    fn explore_report_and_metrics_files() {
        let report_path = tmp("campaign.json");
        let m_path = tmp("m-explore.json");
        let out = run_cli(&argv(&format!(
            "explore fig1a --seeds 0..8 --jobs 2 --report {report_path} --metrics {m_path} --stats"
        )))
        .unwrap();
        assert!(out.contains("campaign report written to"), "{out}");
        assert!(out.contains("explore.executions"), "--stats summary:\n{out}");
        let report: wmrd_explore::CampaignReport =
            serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
        assert_eq!(report.executions, 8);
        assert!(!report.is_race_free());
        let metrics: wmrd_trace::RunMetrics =
            serde_json::from_str(&std::fs::read_to_string(&m_path).unwrap()).unwrap();
        assert_eq!(metrics.context.get("command").map(String::as_str), Some("explore"));
        assert_eq!(metrics.counter("explore.executions"), Some(8));
        assert!(metrics.phase_ns("explore.campaign").is_some());
        std::fs::remove_file(&report_path).ok();
        std::fs::remove_file(&m_path).ok();
    }

    #[test]
    fn explore_budget_flags_bound_every_execution() {
        let out = run_cli(&argv("explore fig1a --seeds 0..4 --jobs 1 --budget 1")).unwrap();
        assert!(out.contains("4 budget-stopped"), "{out}");
    }

    #[test]
    fn analyze_salvage_matches_the_plain_report_on_a_torn_tail() {
        let bin_path = tmp("salvage.bin");
        run_cli(&argv(&format!("run fig1a --model wo --seed 2 --trace {bin_path} --binary")))
            .unwrap();
        let full = run_cli(&argv(&format!("analyze {bin_path}"))).unwrap();
        // Tear 3 bytes off the tail: the sync section's checksum is
        // damaged, but its content is rebuilt from the event records,
        // so the salvaged analysis matches the intact one exactly.
        let len = std::fs::metadata(&bin_path).unwrap().len();
        let out =
            run_cli(&argv(&format!("analyze {bin_path} --salvage --inject truncate@{}", len - 3)))
                .unwrap();
        assert!(out.starts_with("salvage"), "{out}");
        assert!(out.ends_with(&full), "salvaged report diverged:\n{out}\nvs\n{full}");
        std::fs::remove_file(&bin_path).ok();
    }

    #[test]
    fn analyze_salvage_reports_the_boundary_of_a_midstream_cut() {
        let bin_path = tmp("salvage-mid.bin");
        run_cli(&argv(&format!("run fig1a --model wo --seed 2 --trace {bin_path} --binary")))
            .unwrap();
        let len = std::fs::metadata(&bin_path).unwrap().len();
        // Cut mid-stream: some events survive, some are lost.
        let out =
            run_cli(&argv(&format!("analyze {bin_path} --salvage --inject truncate@{}", len / 2)))
                .unwrap();
        assert!(out.contains("salvage boundaries:"), "{out}");
        assert!(out.contains("P0:"), "per-processor frontier:\n{out}");
        std::fs::remove_file(&bin_path).ok();
    }

    #[test]
    fn salvage_rejects_json_traces() {
        let json_path = tmp("salvage.json");
        std::fs::write(&json_path, b"{\"meta\": {}}").unwrap();
        let err = run_cli(&argv(&format!("analyze {json_path} --salvage"))).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        std::fs::remove_file(&json_path).ok();
    }

    #[test]
    fn analyze_inject_flip_is_caught_not_crashed() {
        let bin_path = tmp("inject.bin");
        run_cli(&argv(&format!("run fig1a --model wo --seed 2 --trace {bin_path} --binary")))
            .unwrap();
        // Strict decode reports the corruption as an error...
        let err = run_cli(&argv(&format!("analyze {bin_path} --inject flip@40.3"))).unwrap_err();
        assert!(err.to_string().contains("decode"), "{err}");
        // ...while salvage mode recovers the clean prefix.
        let out =
            run_cli(&argv(&format!("analyze {bin_path} --salvage --inject flip@40.3"))).unwrap();
        assert!(out.starts_with("salvage"), "{out}");
        // Bad plan syntax is a usage error.
        let err = run_cli(&argv(&format!("analyze {bin_path} --inject frob"))).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        std::fs::remove_file(&bin_path).ok();
    }

    #[test]
    fn explore_inject_contains_worker_panics() {
        let out =
            run_cli(&argv("explore fig1a --seeds 0..8 --jobs 2 --inject seed=1;panics=2")).unwrap();
        assert!(out.contains("2 contained failure(s):"), "{out}");
        assert!(out.contains("injected fault"), "{out}");
        assert!(out.contains("campaign: fig1a (8 points)"), "{out}");
    }

    #[test]
    fn submit_and_query_against_a_live_daemon() {
        let server =
            Server::bind(&Endpoint::parse("127.0.0.1:0").unwrap(), ServeConfig::default()).unwrap();
        let addr = server.endpoint().to_string();
        let daemon = std::thread::spawn(move || server.run().unwrap());

        let path = tmp("served.bin");
        run_cli(&argv(&format!("run fig1a --model wo --seed 2 --trace {path} --binary"))).unwrap();
        let first = run_cli(&argv(&format!("submit --to {addr} {path}"))).unwrap();
        assert!(first.contains("ingested"), "{first}");
        let again = run_cli(&argv(&format!("submit --to {addr} {path}"))).unwrap();
        assert!(again.contains("duplicate"), "digest dedup:\n{again}");

        let races = run_cli(&argv(&format!("query --to {addr} races"))).unwrap();
        assert!(races.contains("hits="), "{races}");
        let traces = run_cli(&argv(&format!("query --to {addr} traces"))).unwrap();
        assert!(traces.contains("program=fig1a"), "{traces}");
        assert_eq!(run_cli(&argv(&format!("query --to {addr} ping"))).unwrap(), "pong\n");

        // Garbage is rejected with a typed error, not a crash.
        let junk = tmp("junk.bin");
        std::fs::write(&junk, b"\xff\xfe not a trace").unwrap();
        let out = run_cli(&argv(&format!("submit --to {addr} {junk}"))).unwrap();
        assert!(out.contains("REJECTED (decode:"), "{out}");
        assert_eq!(run_cli(&argv(&format!("query --to {addr} ping"))).unwrap(), "pong\n");

        let bye = run_cli(&argv(&format!("query --to {addr} shutdown"))).unwrap();
        assert_eq!(bye, "draining\n");
        let summary = daemon.join().unwrap();
        assert_eq!(summary.ingested, 1);
        assert_eq!(summary.deduped, 1);
        assert_eq!(summary.rejected, 1);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&junk).ok();
    }

    #[test]
    fn explore_sink_streams_racy_traces() {
        let server =
            Server::bind(&Endpoint::parse("127.0.0.1:0").unwrap(), ServeConfig::default()).unwrap();
        let addr = server.endpoint().to_string();
        let daemon = std::thread::spawn(move || server.run().unwrap());

        let plain = run_cli(&argv("explore fig1a --seeds 0..8 --jobs 2")).unwrap();
        let sunk =
            run_cli(&argv(&format!("explore fig1a --seeds 0..8 --jobs 2 --sink {addr}"))).unwrap();
        assert!(sunk.contains("sink "), "{sunk}");
        assert!(sunk.contains("submitted"), "{sunk}");
        // The report itself is unchanged by the sink.
        let report_part = sunk.split("sink ").next().unwrap();
        assert_eq!(report_part, plain.split("reproduce a finding").next().unwrap());

        let races = run_cli(&argv(&format!("query --to {addr} races"))).unwrap();
        assert!(races.contains("hits="), "the daemon saw the findings:\n{races}");
        run_cli(&argv(&format!("query --to {addr} shutdown"))).unwrap();
        let summary = daemon.join().unwrap();
        assert!(summary.ingested >= 1, "{summary}");

        // A dead sink fails fast, before simulating anything.
        let err = run_cli(&argv(&format!("explore fig1a --seeds 0..4 --sink {addr}")));
        assert!(err.is_err(), "sink gone, invocation must fail");
    }

    #[test]
    fn stream_against_a_live_daemon() {
        let server =
            Server::bind(&Endpoint::parse("127.0.0.1:0").unwrap(), ServeConfig::default()).unwrap();
        let addr = server.endpoint().to_string();
        let daemon = std::thread::spawn(move || server.run().unwrap());

        let out =
            run_cli(&argv(&format!("stream fig1a --to {addr} --model wo --seed 2 --chunk 64")))
                .unwrap();
        assert!(out.contains("opened fig1a-2"), "{out}");
        assert!(out.contains("closed "), "{out}");
        assert!(out.contains("match=yes"), "streamed and post-mortem keys must agree:\n{out}");

        // The same execution recorded post-hoc and SUBMITted
        // deduplicates against what the stream ingested: both paths
        // reassemble the identical trace, meta included.
        let path = tmp("streamed-twin.bin");
        run_cli(&argv(&format!("run fig1a --model wo --seed 2 --trace {path} --binary"))).unwrap();
        let again = run_cli(&argv(&format!("submit --to {addr} {path}"))).unwrap();
        assert!(again.contains("duplicate"), "stream/submit digest parity:\n{again}");

        run_cli(&argv(&format!("query --to {addr} shutdown"))).unwrap();
        let summary = daemon.join().unwrap();
        assert_eq!(summary.stream_sessions, 1, "{summary}");
        assert!(summary.stream_events > 0, "{summary}");
        assert_eq!(summary.stream_crosscheck_failures, 0, "{summary}");
        assert!(summary.ingested >= 1, "{summary}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lint_flags_racy_programs_with_nonzero_exit() {
        let err = run_cli(&argv("lint fig1a")).unwrap_err();
        let CliError::LintFindings { output, findings } = err else { panic!("expected findings") };
        assert!(findings > 0);
        assert!(output.contains("verdict: MAY RACE"), "{output}");
        assert!(output.contains("m[0]"), "{output}");
    }

    #[test]
    fn lint_passes_statically_race_free_programs() {
        let out = run_cli(&argv("lint counter-locked")).unwrap();
        assert!(out.contains("verdict: statically race-free"), "{out}");
        assert!(out.contains("qualified locks"), "{out}");
    }

    #[test]
    fn lint_json_formats() {
        let CliError::LintFindings { output, .. } =
            run_cli(&argv("lint fig1a --format json")).unwrap_err()
        else {
            panic!("expected findings")
        };
        let report: wmrd_lint::LintReport = serde_json::from_str(&output).unwrap();
        assert_eq!(report.program, "fig1a");
        assert!(!report.keys.is_empty());

        let CliError::LintFindings { output, .. } =
            run_cli(&argv("lint fig1a counter-locked --format json")).unwrap_err()
        else {
            panic!("expected findings")
        };
        let reports: Vec<wmrd_lint::LintReport> = serde_json::from_str(&output).unwrap();
        assert_eq!(reports.len(), 2, "multiple targets serialize as an array");
    }

    #[test]
    fn lint_cycles_classifies_and_plans_repair() {
        let CliError::LintFindings { output, .. } =
            run_cli(&argv("lint fig1a --cycles")).unwrap_err()
        else {
            panic!("expected findings")
        };
        assert!(output.contains("cycle classification for 'fig1a'"), "{output}");
        assert!(output.contains("sc-also"), "{output}");
        assert!(output.contains("delay set:"), "{output}");
        assert!(output.contains("repair for 'fig1a'"), "{output}");
        assert!(output.contains("fence P0 before @1"), "{output}");

        let CliError::LintFindings { output, .. } =
            run_cli(&argv("lint fig1b --cycles")).unwrap_err()
        else {
            panic!("expected findings")
        };
        assert!(output.contains("weak-only (sync chain via m[2])"), "{output}");
        assert!(output.contains("no-op (nothing to fix)"), "{output}");
    }

    #[test]
    fn lint_cycles_json_uses_the_v2_envelope() {
        let CliError::LintFindings { output, .. } =
            run_cli(&argv("lint fig1a --cycles --format json")).unwrap_err()
        else {
            panic!("expected findings")
        };
        assert!(output.contains("\"version\": 2"), "{output}");
        assert!(output.contains("\"cycles\""), "{output}");
        assert!(output.contains("\"repair\""), "{output}");
        assert!(output.contains("\"program\": \"fig1a\""), "report fields stay flat:\n{output}");
        assert!(output.contains("\"sc-also\""), "{output}");

        // Without --cycles the v1 schema is untouched — no version
        // field, no envelope; existing consumers keep parsing.
        let CliError::LintFindings { output, .. } =
            run_cli(&argv("lint fig1a --format json")).unwrap_err()
        else {
            panic!("expected findings")
        };
        assert!(!output.contains("\"version\""), "{output}");
        assert!(!output.contains("\"cycles\""), "{output}");
    }

    #[test]
    fn lint_repair_writes_a_reparseable_race_free_program() {
        let path = tmp("fig1a-repaired.wmrd");
        let CliError::LintFindings { output, .. } =
            run_cli(&argv(&format!("lint fig1a --repair {path}"))).unwrap_err()
        else {
            panic!("fig1a itself still has findings")
        };
        assert!(output.contains("repaired program written to"), "{output}");
        let repaired = wmrd_sim::parse_asm(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(repaired.name(), "fig1a", "repair keeps the program name");
        // The written file is itself clean: every access became sync
        // or fence-separated, so re-linting it finds nothing.
        let relint = run_cli(&argv(&format!("lint {path}"))).unwrap();
        assert!(relint.contains("verdict: statically race-free"), "{relint}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lint_all_covers_the_catalog() {
        let CliError::LintFindings { output, .. } = run_cli(&argv("lint all")).unwrap_err() else {
            panic!("the catalog has racy entries")
        };
        assert!(output.contains("linted"), "{output}");
        for entry in catalog::all() {
            assert!(output.contains(entry.name), "missing {}:\n{output}", entry.name);
        }
    }

    #[test]
    fn lint_reads_assembly_files() {
        let path = tmp("racy.wmrd");
        std::fs::write(
            &path,
            "program tmp\nmemory 1\nproc\n  st 1, m[0]\n  halt\nproc\n  ld r0, m[0]\n  halt\n",
        )
        .unwrap();
        let err = run_cli(&argv(&format!("lint {path}"))).unwrap_err();
        assert!(matches!(err, CliError::LintFindings { findings: 1, .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn asm_parse_errors_carry_line_and_column() {
        let path = tmp("broken.wmrd");
        std::fs::write(&path, "proc\n  frobnicate r0\n").unwrap();
        let err = run_cli(&argv(&format!("run {path}"))).unwrap_err();
        let text = err.to_string();
        assert!(matches!(err, CliError::Asm { .. }), "{text}");
        assert!(text.contains("line 2"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lint_metrics_and_stats() {
        let m_path = tmp("m-lint.json");
        let out =
            run_cli(&argv(&format!("lint counter-locked --metrics {m_path} --stats"))).unwrap();
        assert!(out.contains("lint.programs"), "{out}");
        let report: wmrd_trace::RunMetrics =
            serde_json::from_str(&std::fs::read_to_string(&m_path).unwrap()).unwrap();
        assert_eq!(report.context.get("command").map(String::as_str), Some("lint"));
        assert_eq!(report.counter("lint.programs"), Some(1));
        assert_eq!(report.counter("lint.race_free"), Some(1));
        assert!(report.phase_ns("lint.analysis").is_some());
        std::fs::remove_file(&m_path).ok();
    }

    #[test]
    fn predict_flags_predicted_races_with_nonzero_exit() {
        let err = run_cli(&argv("predict fig1a --model wo --seed 2")).unwrap_err();
        let CliError::PredictFindings { output, findings } = err else {
            panic!("expected predicted races")
        };
        assert!(findings > 0);
        assert!(output.contains("RACES PREDICTED"), "{output}");
        assert!(output.contains("predictive race report for 'fig1a'"), "{output}");
    }

    #[test]
    fn predict_passes_race_free_programs() {
        let out = run_cli(&argv("predict counter-locked")).unwrap();
        assert!(out.contains("verdict: predictively race-free"), "{out}");
    }

    #[test]
    fn predict_reads_trace_files_both_formats() {
        let bin_path = tmp("predict-t.bin");
        let json_path = tmp("predict-t.json");
        run_cli(&argv(&format!("run fig1a --model wo --seed 2 --trace {bin_path} --binary")))
            .unwrap();
        run_cli(&argv(&format!("run fig1a --model wo --seed 2 --trace {json_path}"))).unwrap();
        let CliError::PredictFindings { output: from_bin, .. } =
            run_cli(&argv(&format!("predict {bin_path}"))).unwrap_err()
        else {
            panic!("expected predicted races")
        };
        assert!(from_bin.contains("predictive race report for 'fig1a'"), "{from_bin}");
        let CliError::PredictFindings { output: from_json, .. } =
            run_cli(&argv(&format!("predict {json_path}"))).unwrap_err()
        else {
            panic!("expected predicted races")
        };
        assert_eq!(from_bin, from_json, "trace formats agree");
        std::fs::remove_file(&bin_path).ok();
        std::fs::remove_file(&json_path).ok();
    }

    #[test]
    fn predict_shb_matches_the_observed_analysis() {
        // SHB is the hb1 baseline: predicted == observed, so nothing is
        // marked predicted-only.
        let CliError::PredictFindings { output, .. } =
            run_cli(&argv("predict fig1a --order shb --model wo --seed 2")).unwrap_err()
        else {
            panic!("expected predicted races")
        };
        assert!(output.contains("order shb"), "{output}");
        assert!(!output.contains("predicted-only"), "{output}");
    }

    #[test]
    fn predict_json_and_multi_target_summary() {
        let CliError::PredictFindings { output, .. } =
            run_cli(&argv("predict fig1a --format json --model wo --seed 2")).unwrap_err()
        else {
            panic!("expected predicted races")
        };
        let report: wmrd_predict::PredictReport = serde_json::from_str(&output).unwrap();
        assert_eq!(report.program, "fig1a");
        assert!(!report.keys.is_empty());

        let CliError::PredictFindings { output, .. } = run_cli(&argv("predict all")).unwrap_err()
        else {
            panic!("the catalog has racy entries")
        };
        assert!(output.contains("predicted over"), "{output}");
        for entry in catalog::all() {
            assert!(output.contains(entry.name), "missing {}:\n{output}", entry.name);
        }
    }

    #[test]
    fn predict_metrics_and_stats() {
        let m_path = tmp("m-predict.json");
        let out =
            run_cli(&argv(&format!("predict counter-locked --metrics {m_path} --stats"))).unwrap();
        assert!(out.contains("predict.traces"), "{out}");
        let report: wmrd_trace::RunMetrics =
            serde_json::from_str(&std::fs::read_to_string(&m_path).unwrap()).unwrap();
        assert_eq!(report.context.get("command").map(String::as_str), Some("predict"));
        assert_eq!(report.context.get("order").map(String::as_str), Some("wcp"));
        assert_eq!(report.counter("predict.traces"), Some(1));
        assert_eq!(report.counter("predict.race_free"), Some(1));
        assert!(report.phase_ns("predict.analysis").is_some());
        std::fs::remove_file(&m_path).ok();
    }

    #[test]
    fn predict_is_deterministic() {
        let CliError::PredictFindings { output: first, .. } =
            run_cli(&argv("predict fig1a --model wo --seed 2")).unwrap_err()
        else {
            panic!("expected predicted races")
        };
        let CliError::PredictFindings { output: second, .. } =
            run_cli(&argv("predict fig1a --model wo --seed 2")).unwrap_err()
        else {
            panic!("expected predicted races")
        };
        assert_eq!(first, second, "same trace, same report, byte for byte");
    }

    #[test]
    fn explore_predict_cross_checks_the_campaign() {
        let out = run_cli(&argv("explore fig1a --seeds 0..12 --jobs 2 --predict")).unwrap();
        assert!(out.contains("predictive cross-check"), "{out}");
        assert!(out.contains("all reached by the campaign"), "{out}");
        assert!(!out.contains("soundness violation"), "{out}");
    }

    #[test]
    fn explore_prune_static_skips_race_free_programs() {
        let out =
            run_cli(&argv("explore counter-locked --seeds 0..16 --prune-static --stats")).unwrap();
        assert!(out.contains("campaign: counter-locked (16 points)"), "{out}");
        assert!(out.contains("pruned statically"), "{out}");
        assert!(!out.contains("executions:"), "nothing should have run:\n{out}");
        assert!(out.contains("lint.pruned_campaigns"), "{out}");
    }

    #[test]
    fn explore_prune_static_cross_checks_racy_programs() {
        let out = run_cli(&argv("explore fig1a --seeds 0..8 --jobs 2 --prune-static")).unwrap();
        assert!(out.contains("deduplicated race"), "the campaign still runs:\n{out}");
        assert!(out.contains("static cross-check"), "{out}");
        assert!(!out.contains("escaped the static"), "soundness violation:\n{out}");
    }

    #[test]
    fn io_errors_name_the_path() {
        let err = run_cli(&argv("analyze /nonexistent/trace.json")).unwrap_err();
        assert!(err.to_string().contains("/nonexistent/trace.json"), "{err}");
        let err = run_cli(&argv("export fig1a /nonexistent/dir/out.json")).unwrap_err();
        assert!(err.to_string().contains("/nonexistent/dir/out.json"), "{err}");
    }

    #[test]
    fn missing_program_is_not_found() {
        assert!(matches!(run_cli(&argv("run no-such-thing")), Err(CliError::NotFound(_))));
        assert!(matches!(run_cli(&argv("show nope")), Err(CliError::NotFound(_))));
    }

    #[test]
    fn capture_list_names_every_workload() {
        let listing = run_cli(&argv("capture list")).unwrap();
        for w in wmrd_capture::workloads::all() {
            assert!(listing.contains(w.name), "{listing}");
        }
        assert!(listing.contains("racy"), "{listing}");
        assert!(listing.contains("clean"), "{listing}");
    }

    #[test]
    fn capture_unknown_workload_is_not_found() {
        assert!(matches!(run_cli(&argv("capture no-such-workload")), Err(CliError::NotFound(_))));
    }

    #[test]
    fn capture_racy_workload_reports_races_inline() {
        let out = run_cli(&argv("capture publish-racy --runs 2 --seed 5")).unwrap();
        assert!(out.contains("publish-racy seed=5:"), "{out}");
        assert!(out.contains("publish-racy seed=6:"), "{out}");
        assert!(out.contains("race "), "expected inline race keys:\n{out}");
        assert!(out.contains("captured 2 run(s)"), "{out}");
    }

    #[test]
    fn capture_clean_workload_is_race_free() {
        let out = run_cli(&argv("capture publish")).unwrap();
        assert!(out.contains("0 race key(s)"), "{out}");
        assert!(out.contains("captured 1 run(s): 0 distinct race key(s)"), "{out}");
    }

    #[test]
    fn capture_out_writes_analyzable_trace_files() {
        let prefix = tmp("cap");
        run_cli(&argv(&format!("capture seqlock-racy --seed 3 --out {prefix}"))).unwrap();
        let path = format!("{prefix}-seqlock-racy-3.trace");
        // The captured file round-trips through the stock analyzer.
        let report = run_cli(&argv(&format!("analyze {path}"))).unwrap();
        assert!(report.contains("race"), "{report}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn capture_submits_v2_traces_to_a_live_daemon() {
        let server =
            Server::bind(&Endpoint::parse("127.0.0.1:0").unwrap(), ServeConfig::default()).unwrap();
        let addr = server.endpoint().to_string();
        let daemon = std::thread::spawn(move || server.run().unwrap());

        let out = run_cli(&argv(&format!("capture lazy-init-racy --sink {addr}"))).unwrap();
        assert!(out.contains("sink: "), "{out}");
        assert!(out.contains("1 delivered to sink"), "{out}");

        run_cli(&argv(&format!("query --to {addr} shutdown"))).unwrap();
        let summary = daemon.join().unwrap();
        assert_eq!(summary.ingested, 1);
    }

    #[test]
    fn capture_streams_wmrs_to_a_live_daemon() {
        let server =
            Server::bind(&Endpoint::parse("127.0.0.1:0").unwrap(), ServeConfig::default()).unwrap();
        let addr = server.endpoint().to_string();
        let daemon = std::thread::spawn(move || server.run().unwrap());

        let out =
            run_cli(&argv(&format!("capture actor-racy --format wmrs --chunk 32 --sink {addr}")))
                .unwrap();
        assert!(out.contains("sink: "), "{out}");
        assert!(out.contains("1 delivered to sink"), "{out}");

        run_cli(&argv(&format!("query --to {addr} shutdown"))).unwrap();
        let summary = daemon.join().unwrap();
        assert_eq!(summary.ingested, 1, "the CLOSEd stream was ingested");
    }
}
