//! The `wmrd` command-line tool.
//!
//! A thin, scriptable front end over the workspace: run catalog or
//! user-supplied programs on the simulated SC/weak machines, record
//! trace files, analyze them post-mortem, render graphs, and check the
//! paper's hardware condition — all without writing Rust.
//!
//! ```text
//! wmrd catalog                                  # list built-in workloads
//! wmrd show fig1b                               # disassemble one
//! wmrd export work-queue-buggy prog.json        # write it as JSON
//! wmrd run fig1a --model wo --seed 3 --trace t.json
//! wmrd analyze t.json --timeline --dot g.dot
//! wmrd check producer-consumer --model rcsc --seeds 8
//! wmrd lint all                                 # static may-race analysis
//! wmrd predict fig1a --order wcp                # predictive races from one trace
//! wmrd explore fig1a --seeds 0..500 --prune-static --predict
//! wmrd serve --listen unix:/tmp/wmrd.sock --catalog races.journal &
//! wmrd submit --to unix:/tmp/wmrd.sock t.json   # analyze into the catalog
//! wmrd query --to unix:/tmp/wmrd.sock races     # the deduplicated race table
//! wmrd demo                                     # the Figure 2/3 story
//! ```
//!
//! The crate root exposes [`run_cli`], which executes a full invocation
//! and returns its output as a string — `main` only prints it, so every
//! command is unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod error;

pub use args::{
    parse, AnalyzeOpts, CheckOpts, Command, ExploreOpts, LintOpts, PredictOpts, QueryOpts, RunOpts,
    ServeOpts, SubmitOpts,
};
pub use commands::run_cli;
pub use error::CliError;
