//! The `wmrd` binary: parse, execute, print.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match wmrd_cli::run_cli(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("wmrd: {e}");
            ExitCode::FAILURE
        }
    }
}
