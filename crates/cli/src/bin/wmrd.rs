//! The `wmrd` binary: parse, execute, print.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match wmrd_cli::run_cli(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        // Lint and predict findings are verdicts, not malfunctions: the
        // report goes to stdout like a clean run's would, and the
        // non-zero exit status is what scripts gate on.
        Err(wmrd_cli::CliError::LintFindings { output, findings }) => {
            print!("{output}");
            eprintln!("wmrd: lint found {findings} may-race key(s)");
            ExitCode::FAILURE
        }
        Err(wmrd_cli::CliError::PredictFindings { output, findings }) => {
            print!("{output}");
            eprintln!("wmrd: predicted {findings} race key(s)");
            ExitCode::FAILURE
        }
        Err(wmrd_cli::CliError::RepairUnverified { output, reason }) => {
            print!("{output}");
            eprintln!("wmrd: repair verification failed: {reason}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("wmrd: {e}");
            ExitCode::FAILURE
        }
    }
}
