//! Argument parsing (hand-rolled; the CLI surface is small).

use wmrd_core::PairingPolicy;
use wmrd_predict::PredictOrder;
use wmrd_sim::{Fidelity, HwImpl, MemoryModel};

use crate::CliError;

/// Options for `wmrd run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOpts {
    /// Catalog name or path to a program JSON file.
    pub program: String,
    /// Memory model to execute under.
    pub model: MemoryModel,
    /// Conditioned (default) or raw hardware.
    pub fidelity: Fidelity,
    /// Weak-hardware implementation style.
    pub hw: HwImpl,
    /// Scheduler seed.
    pub seed: u64,
    /// Where to write the event trace (JSON unless `--binary`).
    pub trace_out: Option<String>,
    /// Write the trace in the compact binary format.
    pub binary: bool,
    /// Where to write the operation-level trace (JSON).
    pub ops_out: Option<String>,
    /// Where to write the run's `RunMetrics` report (JSON).
    pub metrics_out: Option<String>,
    /// Print a human-readable metrics summary.
    pub stats: bool,
}

/// Options for `wmrd analyze`.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeOpts {
    /// Trace file (`.json` or binary).
    pub trace: String,
    /// Salvage mode: recover the longest checksummed prefix of a
    /// damaged binary trace and analyze that.
    pub salvage: bool,
    /// Fault-plan syntax (see `wmrd_faults::FaultPlan::parse`) applied
    /// to the trace bytes before decoding.
    pub inject: Option<String>,
    /// Pairing policy.
    pub pairing: PairingPolicy,
    /// Also list withheld (non-first) races.
    pub show_all: bool,
    /// Render a per-processor timeline.
    pub timeline: bool,
    /// Write a Graphviz DOT rendering here.
    pub dot_out: Option<String>,
    /// Emit the report as JSON instead of text.
    pub json: bool,
    /// Where to write the analysis `RunMetrics` report (JSON).
    pub metrics_out: Option<String>,
    /// Print a human-readable metrics summary.
    pub stats: bool,
}

/// Options for `wmrd check`.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOpts {
    /// Catalog name or path to a program JSON file.
    pub program: String,
    /// Memory model to check.
    pub model: MemoryModel,
    /// Conditioned (default) or raw hardware.
    pub fidelity: Fidelity,
    /// Weak-hardware implementation style.
    pub hw: HwImpl,
    /// Number of seeded executions to check.
    pub seeds: u64,
    /// Where to write the check's `RunMetrics` report (JSON).
    pub metrics_out: Option<String>,
    /// Print a human-readable metrics summary.
    pub stats: bool,
}

/// Options for `wmrd explore`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreOpts {
    /// Catalog name or path to a program JSON file.
    pub program: String,
    /// Half-open seed range (`start..end`).
    pub seeds: (u64, u64),
    /// Worker threads; `0` means one per available core.
    pub jobs: usize,
    /// Per-execution step budget (`None` = unbounded).
    pub budget: Option<u64>,
    /// Per-execution cycle budget (`None` = unbounded).
    pub cycle_budget: Option<u64>,
    /// Memory models to explore.
    pub models: Vec<MemoryModel>,
    /// Weak-hardware implementation styles to explore.
    pub hws: Vec<HwImpl>,
    /// Drain probabilities for the random weak scheduler.
    pub drain_probs: Vec<f64>,
    /// Conditioned (default) or raw hardware.
    pub fidelity: Fidelity,
    /// Pairing policy for the analysis.
    pub pairing: PairingPolicy,
    /// Lint the program first: skip the campaign when it is statically
    /// race-free, and cross-check dynamic findings against the static
    /// may-race set otherwise.
    pub prune_static: bool,
    /// Predict races from the campaign's first execution point and use
    /// the campaign as a soundness oracle: every predicted key must be
    /// reached by some seed.
    pub predict: bool,
    /// Run the full post-mortem on every execution, not just fast-path
    /// hits.
    pub always_analyze: bool,
    /// Replay this seed in full detail instead of running a campaign.
    pub repro: Option<u64>,
    /// Stream every racy trace to a running `wmrd serve` daemon at
    /// this endpoint (`<addr|unix:path>`).
    pub sink: Option<String>,
    /// Fault-plan syntax (see `wmrd_faults::FaultPlan::parse`)
    /// injecting worker panics into the campaign.
    pub inject: Option<String>,
    /// Where to write the campaign report (JSON).
    pub report_out: Option<String>,
    /// Where to write the campaign's `RunMetrics` report (JSON).
    pub metrics_out: Option<String>,
    /// Print a human-readable metrics summary.
    pub stats: bool,
    /// Synthesize a fence/strengthening repair first, then verify it:
    /// the repaired program must run race-free and satisfy Condition
    /// 3.4 on every hardware backend over the seed range, and the
    /// *unrepaired* program is run under raw out-of-order hardware as
    /// an ablation.
    pub verify_repair: bool,
}

/// Options for `wmrd lint`.
#[derive(Debug, Clone, PartialEq)]
pub struct LintOpts {
    /// Catalog names, program JSON files, or assembly (`.wmrd`) files;
    /// the single word `all` means the whole catalog.
    pub targets: Vec<String>,
    /// Emit JSON instead of text (`--format json`).
    pub json: bool,
    /// Run the critical-cycle delay-set analysis on top of the
    /// may-race report: classify every key as `sc-also` or
    /// `weak-only`, list the delay set, and show the synthesized
    /// repair plan. JSON output switches to the versioned v2 envelope.
    pub cycles: bool,
    /// Write the repaired program (fences inserted, sync ops
    /// strengthened) as `.wmrd` assembly to this path. Implies the
    /// cycle analysis and wants exactly one target.
    pub repair_out: Option<String>,
    /// Where to write the lint `RunMetrics` report (JSON).
    pub metrics_out: Option<String>,
    /// Print a human-readable metrics summary.
    pub stats: bool,
}

/// Options for `wmrd predict`.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictOpts {
    /// Catalog names, program files (JSON or `.wmrd` assembly), trace
    /// files (binary or JSON), or the single word `all` (the whole
    /// catalog).
    pub targets: Vec<String>,
    /// Predictive partial order (`--order shb|wcp`).
    pub order: PredictOrder,
    /// Memory model when a program target must be executed first.
    pub model: MemoryModel,
    /// Conditioned (default) or raw hardware.
    pub fidelity: Fidelity,
    /// Weak-hardware implementation style.
    pub hw: HwImpl,
    /// Scheduler seed for the recorded execution.
    pub seed: u64,
    /// Pairing policy for so1 recovery.
    pub pairing: PairingPolicy,
    /// Emit JSON instead of text (`--format json`).
    pub json: bool,
    /// Where to write the predict `RunMetrics` report (JSON).
    pub metrics_out: Option<String>,
    /// Print a human-readable metrics summary.
    pub stats: bool,
}

/// Options for `wmrd capture`.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureOpts {
    /// Capture workload name (see `wmrd capture list`) or `all`.
    pub workload: String,
    /// Captured runs per workload; seeds are `seed..seed+runs`.
    pub runs: u64,
    /// Base nudge-plan seed.
    pub seed: u64,
    /// Emit the operation-granular `WMRS` stream format instead of the
    /// event-level v2 binary (`--format v2|wmrs`).
    pub wmrs: bool,
    /// Write each run's trace to `<prefix>-<workload>-<seed>.<ext>`.
    pub out: Option<String>,
    /// Deliver each run to a live daemon: `SUBMIT` for v2 traces, a
    /// `STREAM`/`FEED`/`CLOSE` session for `WMRS` streams.
    pub sink: Option<String>,
    /// Chunk size in bytes for `FEED` frames when streaming to
    /// `--sink` in `WMRS` format.
    pub chunk: usize,
    /// Where to write the capture `RunMetrics` report (JSON).
    pub metrics_out: Option<String>,
    /// Print a human-readable metrics summary.
    pub stats: bool,
}

/// Options for `wmrd serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOpts {
    /// Listen endpoint (`<addr|unix:path>`).
    pub listen: String,
    /// Journal path for a durable catalog; `None` keeps it in memory.
    pub catalog: Option<String>,
    /// Analysis worker threads.
    pub workers: usize,
    /// Pending-analysis queue capacity (the backpressure bound).
    pub queue_cap: usize,
    /// Pairing policy for server-side analysis.
    pub pairing: PairingPolicy,
    /// Concurrent streaming-session slots; a `STREAM` beyond this cap
    /// is refused with `BUSY`.
    pub max_streams: usize,
}

/// Options for `wmrd submit`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitOpts {
    /// Daemon endpoint (`<addr|unix:path>`).
    pub to: String,
    /// Trace files (binary or JSON) to submit, in order.
    pub files: Vec<String>,
}

/// Options for `wmrd stream`.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOpts {
    /// Daemon endpoint (`<addr|unix:path>`).
    pub to: String,
    /// Catalog name or path to a program JSON file.
    pub program: String,
    /// Memory model to execute under.
    pub model: MemoryModel,
    /// Conditioned (default) or raw hardware.
    pub fidelity: Fidelity,
    /// Weak-hardware implementation style.
    pub hw: HwImpl,
    /// Scheduler seed.
    pub seed: u64,
    /// Chunk size in bytes for `FEED` frames.
    pub chunk: usize,
    /// Session name sent with `STREAM`; defaults to
    /// `<program>-<seed>`.
    pub session: Option<String>,
}

/// Options for `wmrd query`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOpts {
    /// Daemon endpoint (`<addr|unix:path>`).
    pub to: String,
    /// Query spec (`races`, `traces`, `key=…`, `program=…`, `model=…`,
    /// `since=…`) or a daemon control word (`stats`, `ping`, `compact`,
    /// `shutdown`).
    pub spec: String,
    /// Re-render race rows as JSON objects (`--format json`), with
    /// predicted-vs-observed provenance spelled out per key.
    pub json: bool,
}

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List catalog workloads.
    Catalog,
    /// Disassemble a workload.
    Show(String),
    /// Export a workload as program JSON.
    Export {
        /// Catalog name.
        name: String,
        /// Output path.
        path: String,
    },
    /// Run a program and optionally record traces.
    Run(RunOpts),
    /// Analyze a recorded trace.
    Analyze(AnalyzeOpts),
    /// Check Condition 3.4 on seeded executions.
    Check(CheckOpts),
    /// Hunt races across many seeded executions in parallel.
    Explore(ExploreOpts),
    /// Static may-race analysis over program text.
    Lint(LintOpts),
    /// Predictive race detection from a single recorded trace.
    Predict(PredictOpts),
    /// Run instrumented multithreaded workloads and capture their
    /// executions as traces.
    Capture(CaptureOpts),
    /// Run the race-analysis daemon over a persistent catalog.
    Serve(ServeOpts),
    /// Submit recorded traces to a running daemon.
    Submit(SubmitOpts),
    /// Execute a program and stream its events live to a daemon.
    Stream(StreamOpts),
    /// Query a running daemon's catalog.
    Query(QueryOpts),
    /// The Figure 2/3 walkthrough.
    Demo,
    /// Print usage.
    Help,
}

fn parse_model(s: &str) -> Result<MemoryModel, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "sc" => Ok(MemoryModel::Sc),
        "wo" => Ok(MemoryModel::Wo),
        "rcsc" => Ok(MemoryModel::RCsc),
        "drf0" => Ok(MemoryModel::Drf0),
        "drf1" => Ok(MemoryModel::Drf1),
        other => {
            Err(CliError::Usage(format!("unknown model `{other}` (expected sc|wo|rcsc|drf0|drf1)")))
        }
    }
}

fn parse_fidelity(s: &str) -> Result<Fidelity, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "conditioned" => Ok(Fidelity::Conditioned),
        "raw" => Ok(Fidelity::Raw),
        other => {
            Err(CliError::Usage(format!("unknown fidelity `{other}` (expected conditioned|raw)")))
        }
    }
}

fn parse_hw(s: &str) -> Result<HwImpl, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "store-buffer" => Ok(HwImpl::StoreBuffer),
        "inval-queue" => Ok(HwImpl::InvalQueue),
        "ooo" => Ok(HwImpl::Ooo),
        other => Err(CliError::Usage(format!(
            "unknown hardware `{other}` (expected store-buffer|inval-queue|ooo)"
        ))),
    }
}

/// Parses `--seeds` syntax: `A..B` (half-open) or a bare count `N`
/// meaning `0..N`.
fn parse_seed_range(s: &str) -> Result<(u64, u64), CliError> {
    let bad = || CliError::Usage(format!("--seeds wants `start..end` or a count, got `{s}`"));
    if let Some((a, b)) = s.split_once("..") {
        let start: u64 = a.parse().map_err(|_| bad())?;
        let end: u64 = b.parse().map_err(|_| bad())?;
        if start >= end {
            return Err(CliError::Usage(format!("--seeds range `{s}` is empty")));
        }
        Ok((start, end))
    } else {
        let n: u64 = s.parse().map_err(|_| bad())?;
        if n == 0 {
            return Err(CliError::Usage("--seeds wants at least one seed".into()));
        }
        Ok((0, n))
    }
}

/// Parses a comma-separated list with a per-item parser.
fn parse_list<T>(s: &str, item: impl Fn(&str) -> Result<T, CliError>) -> Result<Vec<T>, CliError> {
    s.split(',').map(|part| item(part.trim())).collect()
}

fn parse_order(s: &str) -> Result<PredictOrder, CliError> {
    PredictOrder::parse(s)
        .ok_or_else(|| CliError::Usage(format!("unknown order `{s}` (expected shb|wcp)")))
}

fn parse_pairing(s: &str) -> Result<PairingPolicy, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "by-role" => Ok(PairingPolicy::ByRole),
        "all-sync" => Ok(PairingPolicy::AllSync),
        other => {
            Err(CliError::Usage(format!("unknown pairing `{other}` (expected by-role|all-sync)")))
        }
    }
}

struct Cursor<'a> {
    args: &'a [String],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn next(&mut self) -> Option<&'a str> {
        let v = self.args.get(self.pos).map(|s| s.as_str());
        if v.is_some() {
            self.pos += 1;
        }
        v
    }

    fn value_for(&mut self, flag: &str) -> Result<&'a str, CliError> {
        self.next().ok_or_else(|| CliError::Usage(format!("{flag} requires a value")))
    }
}

/// Parses a full argument list (excluding the binary name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] describing the problem.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut cur = Cursor { args, pos: 0 };
    let Some(cmd) = cur.next() else { return Ok(Command::Help) };
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "catalog" => Ok(Command::Catalog),
        "demo" => Ok(Command::Demo),
        "show" => {
            let name = cur.value_for("show")?.to_string();
            Ok(Command::Show(name))
        }
        "export" => {
            let name = cur.value_for("export")?.to_string();
            let path = cur.value_for("export <name>")?.to_string();
            Ok(Command::Export { name, path })
        }
        "run" => {
            let program = cur.value_for("run")?.to_string();
            let mut opts = RunOpts {
                program,
                model: MemoryModel::Sc,
                fidelity: Fidelity::Conditioned,
                hw: HwImpl::StoreBuffer,
                seed: 0,
                trace_out: None,
                binary: false,
                ops_out: None,
                metrics_out: None,
                stats: false,
            };
            while let Some(flag) = cur.next() {
                match flag {
                    "--model" => opts.model = parse_model(cur.value_for(flag)?)?,
                    "--fidelity" => opts.fidelity = parse_fidelity(cur.value_for(flag)?)?,
                    "--hw" => opts.hw = parse_hw(cur.value_for(flag)?)?,
                    "--seed" => {
                        opts.seed = cur
                            .value_for(flag)?
                            .parse()
                            .map_err(|_| CliError::Usage("--seed wants an integer".into()))?
                    }
                    "--trace" => opts.trace_out = Some(cur.value_for(flag)?.to_string()),
                    "--ops" => opts.ops_out = Some(cur.value_for(flag)?.to_string()),
                    "--binary" => opts.binary = true,
                    "--metrics" => opts.metrics_out = Some(cur.value_for(flag)?.to_string()),
                    "--stats" => opts.stats = true,
                    other => {
                        return Err(CliError::Usage(format!("unknown flag `{other}` for run")))
                    }
                }
            }
            Ok(Command::Run(opts))
        }
        "analyze" => {
            let trace = cur.value_for("analyze")?.to_string();
            let mut opts = AnalyzeOpts {
                trace,
                salvage: false,
                inject: None,
                pairing: PairingPolicy::ByRole,
                show_all: false,
                timeline: false,
                dot_out: None,
                json: false,
                metrics_out: None,
                stats: false,
            };
            while let Some(flag) = cur.next() {
                match flag {
                    "--pairing" => opts.pairing = parse_pairing(cur.value_for(flag)?)?,
                    "--salvage" => opts.salvage = true,
                    "--inject" => opts.inject = Some(cur.value_for(flag)?.to_string()),
                    "--all" => opts.show_all = true,
                    "--timeline" => opts.timeline = true,
                    "--dot" => opts.dot_out = Some(cur.value_for(flag)?.to_string()),
                    "--json" => opts.json = true,
                    "--metrics" => opts.metrics_out = Some(cur.value_for(flag)?.to_string()),
                    "--stats" => opts.stats = true,
                    other => {
                        return Err(CliError::Usage(format!("unknown flag `{other}` for analyze")))
                    }
                }
            }
            Ok(Command::Analyze(opts))
        }
        "check" => {
            let program = cur.value_for("check")?.to_string();
            let mut opts = CheckOpts {
                program,
                model: MemoryModel::Wo,
                fidelity: Fidelity::Conditioned,
                hw: HwImpl::StoreBuffer,
                seeds: 5,
                metrics_out: None,
                stats: false,
            };
            while let Some(flag) = cur.next() {
                match flag {
                    "--model" => opts.model = parse_model(cur.value_for(flag)?)?,
                    "--fidelity" => opts.fidelity = parse_fidelity(cur.value_for(flag)?)?,
                    "--hw" => opts.hw = parse_hw(cur.value_for(flag)?)?,
                    "--seeds" => {
                        opts.seeds = cur
                            .value_for(flag)?
                            .parse()
                            .map_err(|_| CliError::Usage("--seeds wants an integer".into()))?
                    }
                    "--metrics" => opts.metrics_out = Some(cur.value_for(flag)?.to_string()),
                    "--stats" => opts.stats = true,
                    other => {
                        return Err(CliError::Usage(format!("unknown flag `{other}` for check")))
                    }
                }
            }
            Ok(Command::Check(opts))
        }
        "explore" => {
            let program = cur.value_for("explore")?.to_string();
            let mut opts = ExploreOpts {
                program,
                seeds: (0, 100),
                jobs: 0,
                budget: None,
                cycle_budget: None,
                models: vec![MemoryModel::Wo],
                hws: vec![HwImpl::StoreBuffer],
                drain_probs: vec![0.3],
                fidelity: Fidelity::Conditioned,
                pairing: PairingPolicy::ByRole,
                prune_static: false,
                predict: false,
                always_analyze: false,
                repro: None,
                sink: None,
                inject: None,
                report_out: None,
                metrics_out: None,
                stats: false,
                verify_repair: false,
            };
            while let Some(flag) = cur.next() {
                match flag {
                    "--seeds" => opts.seeds = parse_seed_range(cur.value_for(flag)?)?,
                    "--jobs" => {
                        opts.jobs = cur
                            .value_for(flag)?
                            .parse()
                            .map_err(|_| CliError::Usage("--jobs wants an integer".into()))?
                    }
                    "--budget" => {
                        opts.budget = Some(
                            cur.value_for(flag)?
                                .parse()
                                .map_err(|_| CliError::Usage("--budget wants an integer".into()))?,
                        )
                    }
                    "--cycle-budget" => {
                        opts.cycle_budget = Some(cur.value_for(flag)?.parse().map_err(|_| {
                            CliError::Usage("--cycle-budget wants an integer".into())
                        })?)
                    }
                    "--model" => opts.models = parse_list(cur.value_for(flag)?, parse_model)?,
                    "--hw" => opts.hws = parse_list(cur.value_for(flag)?, parse_hw)?,
                    "--drain" => {
                        opts.drain_probs = parse_list(cur.value_for(flag)?, |s| {
                            s.parse().map_err(|_| {
                                CliError::Usage(format!("--drain wants numbers, got `{s}`"))
                            })
                        })?
                    }
                    "--fidelity" => opts.fidelity = parse_fidelity(cur.value_for(flag)?)?,
                    "--pairing" => opts.pairing = parse_pairing(cur.value_for(flag)?)?,
                    "--prune-static" => opts.prune_static = true,
                    "--predict" => opts.predict = true,
                    "--verify-repair" => opts.verify_repair = true,
                    "--always-analyze" => opts.always_analyze = true,
                    "--repro" => {
                        opts.repro =
                            Some(cur.value_for(flag)?.parse().map_err(|_| {
                                CliError::Usage("--repro wants a seed integer".into())
                            })?)
                    }
                    "--sink" => opts.sink = Some(cur.value_for(flag)?.to_string()),
                    "--inject" => opts.inject = Some(cur.value_for(flag)?.to_string()),
                    "--report" => opts.report_out = Some(cur.value_for(flag)?.to_string()),
                    "--metrics" => opts.metrics_out = Some(cur.value_for(flag)?.to_string()),
                    "--stats" => opts.stats = true,
                    other => {
                        return Err(CliError::Usage(format!("unknown flag `{other}` for explore")))
                    }
                }
            }
            Ok(Command::Explore(opts))
        }
        "lint" => {
            let mut opts = LintOpts {
                targets: Vec::new(),
                json: false,
                cycles: false,
                repair_out: None,
                metrics_out: None,
                stats: false,
            };
            while let Some(arg) = cur.next() {
                match arg {
                    "--format" => match cur.value_for(arg)? {
                        "text" => opts.json = false,
                        "json" => opts.json = true,
                        other => {
                            return Err(CliError::Usage(format!(
                                "unknown format `{other}` (expected text|json)"
                            )))
                        }
                    },
                    "--cycles" => opts.cycles = true,
                    "--repair" => opts.repair_out = Some(cur.value_for(arg)?.to_string()),
                    "--metrics" => opts.metrics_out = Some(cur.value_for(arg)?.to_string()),
                    "--stats" => opts.stats = true,
                    flag if flag.starts_with("--") => {
                        return Err(CliError::Usage(format!("unknown flag `{flag}` for lint")))
                    }
                    target => opts.targets.push(target.to_string()),
                }
            }
            if opts.targets.is_empty() {
                return Err(CliError::Usage(
                    "lint wants at least one target (catalog name, file, or `all`)".into(),
                ));
            }
            if opts.repair_out.is_some() && opts.targets.len() != 1 {
                return Err(CliError::Usage(
                    "lint --repair wants exactly one target (it writes one repaired program)"
                        .into(),
                ));
            }
            Ok(Command::Lint(opts))
        }
        "predict" => {
            let mut opts = PredictOpts {
                targets: Vec::new(),
                order: PredictOrder::Wcp,
                model: MemoryModel::Wo,
                fidelity: Fidelity::Conditioned,
                hw: HwImpl::StoreBuffer,
                seed: 0,
                pairing: PairingPolicy::ByRole,
                json: false,
                metrics_out: None,
                stats: false,
            };
            while let Some(arg) = cur.next() {
                match arg {
                    "--order" => opts.order = parse_order(cur.value_for(arg)?)?,
                    "--format" => match cur.value_for(arg)? {
                        "text" => opts.json = false,
                        "json" => opts.json = true,
                        other => {
                            return Err(CliError::Usage(format!(
                                "unknown format `{other}` (expected text|json)"
                            )))
                        }
                    },
                    "--model" => opts.model = parse_model(cur.value_for(arg)?)?,
                    "--fidelity" => opts.fidelity = parse_fidelity(cur.value_for(arg)?)?,
                    "--hw" => opts.hw = parse_hw(cur.value_for(arg)?)?,
                    "--seed" => {
                        opts.seed = cur
                            .value_for(arg)?
                            .parse()
                            .map_err(|_| CliError::Usage("--seed wants an integer".into()))?
                    }
                    "--pairing" => opts.pairing = parse_pairing(cur.value_for(arg)?)?,
                    "--metrics" => opts.metrics_out = Some(cur.value_for(arg)?.to_string()),
                    "--stats" => opts.stats = true,
                    flag if flag.starts_with("--") => {
                        return Err(CliError::Usage(format!("unknown flag `{flag}` for predict")))
                    }
                    target => opts.targets.push(target.to_string()),
                }
            }
            if opts.targets.is_empty() {
                return Err(CliError::Usage(
                    "predict wants at least one target (catalog name, program or trace file, \
                     or `all`)"
                        .into(),
                ));
            }
            Ok(Command::Predict(opts))
        }
        "capture" => {
            let mut opts = CaptureOpts {
                workload: String::new(),
                runs: 1,
                seed: 0,
                wmrs: false,
                out: None,
                sink: None,
                chunk: 4096,
                metrics_out: None,
                stats: false,
            };
            while let Some(arg) = cur.next() {
                match arg {
                    "--runs" => {
                        opts.runs = cur
                            .value_for(arg)?
                            .parse()
                            .map_err(|_| CliError::Usage("--runs wants an integer".into()))?
                    }
                    "--seed" => {
                        opts.seed = cur
                            .value_for(arg)?
                            .parse()
                            .map_err(|_| CliError::Usage("--seed wants an integer".into()))?
                    }
                    "--format" => match cur.value_for(arg)? {
                        "v2" => opts.wmrs = false,
                        "wmrs" => opts.wmrs = true,
                        other => {
                            return Err(CliError::Usage(format!(
                                "unknown format `{other}` (expected v2|wmrs)"
                            )))
                        }
                    },
                    "--out" => opts.out = Some(cur.value_for(arg)?.to_string()),
                    "--sink" => opts.sink = Some(cur.value_for(arg)?.to_string()),
                    "--chunk" => {
                        opts.chunk = cur
                            .value_for(arg)?
                            .parse()
                            .map_err(|_| CliError::Usage("--chunk wants an integer".into()))?
                    }
                    "--metrics" => opts.metrics_out = Some(cur.value_for(arg)?.to_string()),
                    "--stats" => opts.stats = true,
                    flag if flag.starts_with("--") => {
                        return Err(CliError::Usage(format!("unknown flag `{flag}` for capture")))
                    }
                    name if opts.workload.is_empty() => opts.workload = name.to_string(),
                    extra => {
                        return Err(CliError::Usage(format!(
                            "unexpected capture argument `{extra}`"
                        )))
                    }
                }
            }
            if opts.workload.is_empty() {
                return Err(CliError::Usage(
                    "capture wants a workload name, `all`, or `list`".into(),
                ));
            }
            if opts.runs == 0 {
                return Err(CliError::Usage("--runs wants at least 1".into()));
            }
            Ok(Command::Capture(opts))
        }
        "serve" => {
            let mut opts = ServeOpts {
                listen: String::new(),
                catalog: None,
                workers: 2,
                queue_cap: 64,
                pairing: PairingPolicy::ByRole,
                max_streams: 4,
            };
            while let Some(flag) = cur.next() {
                match flag {
                    "--listen" => opts.listen = cur.value_for(flag)?.to_string(),
                    "--catalog" => opts.catalog = Some(cur.value_for(flag)?.to_string()),
                    "--workers" => {
                        opts.workers = cur
                            .value_for(flag)?
                            .parse()
                            .map_err(|_| CliError::Usage("--workers wants an integer".into()))?
                    }
                    "--queue-cap" => {
                        opts.queue_cap = cur
                            .value_for(flag)?
                            .parse()
                            .map_err(|_| CliError::Usage("--queue-cap wants an integer".into()))?
                    }
                    "--max-streams" => {
                        opts.max_streams = cur
                            .value_for(flag)?
                            .parse()
                            .map_err(|_| CliError::Usage("--max-streams wants an integer".into()))?
                    }
                    "--pairing" => opts.pairing = parse_pairing(cur.value_for(flag)?)?,
                    other => {
                        return Err(CliError::Usage(format!("unknown flag `{other}` for serve")))
                    }
                }
            }
            if opts.listen.is_empty() {
                return Err(CliError::Usage("serve requires --listen <addr|unix:path>".into()));
            }
            Ok(Command::Serve(opts))
        }
        "submit" => {
            let mut to = None;
            let mut files = Vec::new();
            while let Some(arg) = cur.next() {
                match arg {
                    "--to" => to = Some(cur.value_for(arg)?.to_string()),
                    flag if flag.starts_with("--") => {
                        return Err(CliError::Usage(format!("unknown flag `{flag}` for submit")))
                    }
                    file => files.push(file.to_string()),
                }
            }
            let Some(to) = to else {
                return Err(CliError::Usage("submit requires --to <addr|unix:path>".into()));
            };
            if files.is_empty() {
                return Err(CliError::Usage("submit wants at least one trace file".into()));
            }
            Ok(Command::Submit(SubmitOpts { to, files }))
        }
        "stream" => {
            let program = cur.value_for("stream")?.to_string();
            let mut opts = StreamOpts {
                to: String::new(),
                program,
                model: MemoryModel::Wo,
                fidelity: Fidelity::Conditioned,
                hw: HwImpl::StoreBuffer,
                seed: 0,
                chunk: 4096,
                session: None,
            };
            while let Some(flag) = cur.next() {
                match flag {
                    "--to" => opts.to = cur.value_for(flag)?.to_string(),
                    "--model" => opts.model = parse_model(cur.value_for(flag)?)?,
                    "--fidelity" => opts.fidelity = parse_fidelity(cur.value_for(flag)?)?,
                    "--hw" => opts.hw = parse_hw(cur.value_for(flag)?)?,
                    "--seed" => {
                        opts.seed = cur
                            .value_for(flag)?
                            .parse()
                            .map_err(|_| CliError::Usage("--seed wants an integer".into()))?
                    }
                    "--chunk" => {
                        opts.chunk = cur
                            .value_for(flag)?
                            .parse()
                            .map_err(|_| CliError::Usage("--chunk wants an integer".into()))?;
                        if opts.chunk == 0 {
                            return Err(CliError::Usage("--chunk wants at least one byte".into()));
                        }
                    }
                    "--session" => opts.session = Some(cur.value_for(flag)?.to_string()),
                    other => {
                        return Err(CliError::Usage(format!("unknown flag `{other}` for stream")))
                    }
                }
            }
            if opts.to.is_empty() {
                return Err(CliError::Usage("stream requires --to <addr|unix:path>".into()));
            }
            Ok(Command::Stream(opts))
        }
        "query" => {
            let mut to = None;
            let mut spec = None;
            let mut json = false;
            while let Some(arg) = cur.next() {
                match arg {
                    "--to" => to = Some(cur.value_for(arg)?.to_string()),
                    "--format" => match cur.value_for(arg)? {
                        "text" => json = false,
                        "json" => json = true,
                        other => {
                            return Err(CliError::Usage(format!(
                                "unknown format `{other}` (expected text|json)"
                            )))
                        }
                    },
                    flag if flag.starts_with("--") => {
                        return Err(CliError::Usage(format!("unknown flag `{flag}` for query")))
                    }
                    s if spec.is_none() => spec = Some(s.to_string()),
                    extra => {
                        return Err(CliError::Usage(format!("unexpected query argument `{extra}`")))
                    }
                }
            }
            let Some(to) = to else {
                return Err(CliError::Usage("query requires --to <addr|unix:path>".into()));
            };
            let Some(spec) = spec else {
                return Err(CliError::Usage(
                    "query wants a spec (races|traces|key=…|program=…|model=…|since=…|stats|ping|compact|shutdown)"
                        .into(),
                ));
            };
            Ok(Command::Query(QueryOpts { to, spec, json }))
        }
        other => Err(CliError::Usage(format!("unknown command `{other}` (try `wmrd help`)"))),
    }
}

/// The usage text.
pub(crate) const USAGE: &str = "\
wmrd — data-race detection on simulated weak memory systems

USAGE:
  wmrd catalog                         list built-in workloads
  wmrd show <name>                     disassemble a workload
  wmrd export <name> <file.json>       write a workload as program JSON
  wmrd run <name|file.json> [flags]    execute and optionally record traces
      --model sc|wo|rcsc|drf0|drf1       memory model (default sc)
      --fidelity conditioned|raw         honour Condition 3.4 (default) or not
      --hw store-buffer|inval-queue|ooo  weak hardware style (default store-buffer)
      --seed <n>                         scheduler seed (default 0)
      --trace <file>                     write the event trace (JSON)
      --binary                           ...in the compact binary format
      --ops <file>                       write the operation trace (JSON)
      --metrics <file>                   write a RunMetrics report (JSON)
      --stats                            print a metrics summary
  wmrd analyze <trace-file> [flags]    post-mortem race analysis
      --pairing by-role|all-sync         so1 pairing policy (default by-role)
      --salvage                          recover the longest checksummed prefix
                                         of a damaged binary trace and analyze it
      --inject <plan>                    corrupt the trace bytes first (fault-plan
                                         syntax: seed=N;truncate@B;flip@B.T;...)
      --all                              also list withheld races
      --timeline                         per-processor timeline
      --dot <file>                       write a Graphviz rendering
      --json                             machine-readable report
      --metrics <file>                   write a RunMetrics report (JSON)
      --stats                            print a metrics summary
  wmrd check <name|file.json> [flags]  check Condition 3.4 empirically
      --model, --fidelity, --hw, --seeds <n>, --metrics <file>, --stats
  wmrd explore <name|file.json> [flags] parallel cross-execution race hunt
      --seeds A..B|N                     seed range (default 0..100)
      --jobs <n>                         worker threads (default: one per core)
      --budget <n>                       per-execution step budget
      --cycle-budget <n>                 per-execution cycle budget
      --model m1,m2                      memory models to cross (default wo)
      --hw h1,h2                         hardware styles to cross (default
                                         store-buffer; ooo = out-of-order pipeline)
      --drain p1,p2                      drain probabilities to cross (default 0.3)
      --fidelity conditioned|raw         honour Condition 3.4 (default) or not
      --pairing by-role|all-sync         so1 pairing policy (default by-role)
      --prune-static                     lint first: skip statically race-free
                                         programs, cross-check findings otherwise
      --predict                          predict races from the first execution
                                         point and check every predicted key is
                                         reached by some campaign seed
      --always-analyze                   post-mortem every execution, not just hits
      --verify-repair                    synthesize a fence repair, then verify it:
                                         the repaired program must be race-free and
                                         Condition-3.4-clean on every backend over
                                         the seed range; the unrepaired program is
                                         run under raw ooo hardware as an ablation
      --repro <seed>                     replay one seed in full detail
      --sink <addr|unix:path>            stream racy traces to a running daemon
      --inject <plan>                    inject deterministic worker faults
                                         (fault-plan syntax: seed=N;panics=N;panic@I)
      --report <file>                    write the campaign report (JSON)
      --metrics <file>                   write a RunMetrics report (JSON)
      --stats                            print a metrics summary
  wmrd lint <target>... [flags]        static may-race analysis over program text
                                       targets: catalog names, program JSON files,
                                       assembly (.wmrd) files, or `all` (the whole
                                       catalog); exits non-zero on findings
      --format text|json                 output format (default text)
      --cycles                           critical-cycle delay-set analysis: classify
                                         each finding sc-also|weak-only, list the
                                         delay set and the synthesized repair plan
                                         (JSON switches to the versioned v2 envelope)
      --repair <file.wmrd>               write the repaired program (fences inserted,
                                         sync strengthened) as assembly; one target
      --metrics <file>                   write a RunMetrics report (JSON)
      --stats                            print a metrics summary
  wmrd predict <target>... [flags]     sound predictive race detection from a
                                       single recorded trace (SHB/WCP orders)
                                       targets: catalog names, program files,
                                       trace files, or `all` (the whole catalog);
                                       exits non-zero on predicted races
      --order shb|wcp                    predictive partial order (default wcp)
      --format text|json                 output format (default text)
      --model sc|wo|rcsc|drf0|drf1       model when executing a program (default wo)
      --fidelity conditioned|raw         honour Condition 3.4 (default) or not
      --hw store-buffer|inval-queue|ooo  weak hardware style (default store-buffer)
      --seed <n>                         scheduler seed for the one trace (default 0)
      --pairing by-role|all-sync         so1 pairing policy (default by-role)
      --metrics <file>                   write a RunMetrics report (JSON)
      --stats                            print a metrics summary
  wmrd capture <workload|all|list> [flags]
                                       run an instrumented multithreaded workload
                                       (real std::thread + atomics) and capture
                                       its execution as an analyzable trace;
                                       `list` prints the workload registry
      --runs <n>                         captured runs (default 1), one seed each
      --seed <n>                         base nudge-plan seed (default 0)
      --format v2|wmrs                   event-level binary trace (default) or the
                                         operation-granular WMRS stream format
      --out <prefix>                     write <prefix>-<workload>-<seed>.trace|.wmrs
      --sink <addr|unix:path>            deliver to a daemon: SUBMIT (v2) or a
                                         STREAM/FEED/CLOSE session (wmrs)
      --chunk <bytes>                    FEED chunk size for wmrs sinks (default 4096)
      --metrics <file>                   write a RunMetrics report (JSON)
      --stats                            print a metrics summary
  wmrd serve [flags]                   race-analysis daemon over a persistent catalog
      --listen <addr|unix:path>          listen endpoint (required)
      --catalog <file>                   journaled catalog path (default: in-memory)
      --workers <n>                      analysis threads (default 2)
      --queue-cap <n>                    pending-analysis bound; beyond it
                                         submissions get a typed BUSY (default 64)
      --max-streams <n>                  concurrent streaming sessions; beyond it
                                         STREAM gets a typed BUSY (default 4)
      --pairing by-role|all-sync         so1 pairing policy (default by-role)
  wmrd submit --to <addr|unix:path> <trace>...
                                       submit recorded traces for analysis
  wmrd stream <name|file.json> --to <addr|unix:path> [flags]
                                       execute a program and stream its events
                                       live to a daemon (STREAM/FEED/CLOSE;
                                       see SERVING.md)
      --model sc|wo|rcsc|drf0|drf1       memory model (default wo)
      --fidelity conditioned|raw         honour Condition 3.4 (default) or not
      --hw store-buffer|inval-queue|ooo  weak hardware style (default store-buffer)
      --seed <n>                         scheduler seed (default 0)
      --chunk <bytes>                    FEED chunk size (default 4096)
      --session <name>                   session name (default <program>-<seed>)
  wmrd query --to <addr|unix:path> <spec>
                                       query the daemon's catalog; specs:
                                         races | traces | key=<addr>:P<a><R|W>[s]:P<b><R|W>[s]
                                         program=<name> | model=<name> | since=<digest>
                                         and control words stats|ping|compact|shutdown
      --format text|json                 race rows as JSON objects with
                                         observed/predicted provenance (default text)
  wmrd demo                            the paper's Figure 2/3 walkthrough

Metrics reports follow the schema documented in OBSERVABILITY.md.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_simple_commands() {
        assert_eq!(parse(&argv("catalog")).unwrap(), Command::Catalog);
        assert_eq!(parse(&argv("demo")).unwrap(), Command::Demo);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("show fig1a")).unwrap(), Command::Show("fig1a".into()));
        assert_eq!(
            parse(&argv("export fig1b out.json")).unwrap(),
            Command::Export { name: "fig1b".into(), path: "out.json".into() }
        );
    }

    #[test]
    fn parses_run_flags() {
        let cmd = parse(&argv(
            "run fig1a --model wo --fidelity raw --hw inval-queue --seed 9 --trace t.json \
             --binary --ops o.json --metrics m.json --stats",
        ))
        .unwrap();
        let Command::Run(opts) = cmd else { panic!("expected run") };
        assert_eq!(opts.program, "fig1a");
        assert_eq!(opts.model, MemoryModel::Wo);
        assert_eq!(opts.fidelity, Fidelity::Raw);
        assert_eq!(opts.hw, HwImpl::InvalQueue);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.trace_out.as_deref(), Some("t.json"));
        assert!(opts.binary);
        assert_eq!(opts.ops_out.as_deref(), Some("o.json"));
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
        assert!(opts.stats);
    }

    #[test]
    fn run_defaults() {
        let Command::Run(opts) = parse(&argv("run fig1b")).unwrap() else { panic!("expected run") };
        assert_eq!(opts.model, MemoryModel::Sc);
        assert_eq!(opts.fidelity, Fidelity::Conditioned);
        assert_eq!(opts.hw, HwImpl::StoreBuffer);
        assert_eq!(opts.seed, 0);
        assert!(opts.trace_out.is_none());
        assert!(opts.metrics_out.is_none());
        assert!(!opts.stats);
    }

    #[test]
    fn parses_analyze_flags() {
        let cmd = parse(&argv(
            "analyze t.json --pairing all-sync --all --timeline --dot g.dot --json \
             --metrics m.json --stats",
        ))
        .unwrap();
        let Command::Analyze(opts) = cmd else { panic!("expected analyze") };
        assert_eq!(opts.pairing, PairingPolicy::AllSync);
        assert!(opts.show_all && opts.timeline && opts.json);
        assert_eq!(opts.dot_out.as_deref(), Some("g.dot"));
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
        assert!(opts.stats);
        assert!(!opts.salvage);
        assert!(opts.inject.is_none());
    }

    #[test]
    fn parses_salvage_and_inject() {
        let Command::Analyze(opts) =
            parse(&argv("analyze t.bin --salvage --inject truncate@100")).unwrap()
        else {
            panic!("expected analyze")
        };
        assert!(opts.salvage);
        assert_eq!(opts.inject.as_deref(), Some("truncate@100"));
        let Command::Explore(opts) =
            parse(&argv("explore fig1a --inject seed=3;panics=2")).unwrap()
        else {
            panic!("expected explore")
        };
        assert_eq!(opts.inject.as_deref(), Some("seed=3;panics=2"));
        assert!(matches!(parse(&argv("analyze t.bin --inject")), Err(CliError::Usage(_))));
    }

    #[test]
    fn parses_check_flags() {
        let Command::Check(opts) =
            parse(&argv("check fig1a --model rcsc --seeds 12 --metrics m.json --stats")).unwrap()
        else {
            panic!("expected check")
        };
        assert_eq!(opts.model, MemoryModel::RCsc);
        assert_eq!(opts.seeds, 12);
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
        assert!(opts.stats);
    }

    #[test]
    fn explore_defaults() {
        let Command::Explore(opts) = parse(&argv("explore fig1a")).unwrap() else {
            panic!("expected explore")
        };
        assert_eq!(opts.seeds, (0, 100));
        assert_eq!(opts.jobs, 0, "0 means one worker per core");
        assert_eq!(opts.models, vec![MemoryModel::Wo]);
        assert_eq!(opts.hws, vec![HwImpl::StoreBuffer]);
        assert_eq!(opts.drain_probs, vec![0.3]);
        assert!(opts.budget.is_none() && opts.cycle_budget.is_none());
        assert!(opts.repro.is_none());
        assert!(!opts.always_analyze);
        assert!(!opts.prune_static);
    }

    #[test]
    fn parses_lint() {
        let Command::Lint(opts) = parse(&argv("lint fig1a")).unwrap() else {
            panic!("expected lint")
        };
        assert_eq!(opts.targets, vec!["fig1a".to_string()]);
        assert!(!opts.json && !opts.stats && opts.metrics_out.is_none());

        let Command::Lint(opts) =
            parse(&argv("lint all prog.wmrd --format json --metrics m.json --stats")).unwrap()
        else {
            panic!("expected lint")
        };
        assert_eq!(opts.targets, vec!["all".to_string(), "prog.wmrd".to_string()]);
        assert!(opts.json && opts.stats);
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));

        let Command::Lint(opts) = parse(&argv("lint x --format text")).unwrap() else {
            panic!("expected lint")
        };
        assert!(!opts.json);
        assert!(!opts.cycles && opts.repair_out.is_none(), "cycle analysis is opt-in");

        assert!(matches!(parse(&argv("lint")), Err(CliError::Usage(_))), "a target is required");
        assert!(matches!(parse(&argv("lint x --format yaml")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("lint x --bogus")), Err(CliError::Usage(_))));
    }

    #[test]
    fn parses_lint_cycles_and_repair() {
        let Command::Lint(opts) = parse(&argv("lint fig1a --cycles")).unwrap() else {
            panic!("expected lint")
        };
        assert!(opts.cycles);
        assert!(opts.repair_out.is_none());

        let Command::Lint(opts) =
            parse(&argv("lint fig1a --cycles --repair out.wmrd --format json")).unwrap()
        else {
            panic!("expected lint")
        };
        assert!(opts.cycles && opts.json);
        assert_eq!(opts.repair_out.as_deref(), Some("out.wmrd"));

        assert!(
            matches!(parse(&argv("lint a b --repair out.wmrd")), Err(CliError::Usage(_))),
            "--repair wants exactly one target"
        );
        assert!(matches!(parse(&argv("lint x --repair")), Err(CliError::Usage(_))));
    }

    #[test]
    fn parses_explore_prune_static() {
        let Command::Explore(opts) = parse(&argv("explore fig1a --prune-static")).unwrap() else {
            panic!("expected explore")
        };
        assert!(opts.prune_static);
        assert!(!opts.predict);
    }

    #[test]
    fn parses_explore_predict() {
        let Command::Explore(opts) = parse(&argv("explore fig1a --predict")).unwrap() else {
            panic!("expected explore")
        };
        assert!(opts.predict);
    }

    #[test]
    fn parses_explore_verify_repair() {
        let Command::Explore(opts) = parse(&argv("explore fig1a --verify-repair")).unwrap() else {
            panic!("expected explore")
        };
        assert!(opts.verify_repair);
        let Command::Explore(opts) = parse(&argv("explore fig1a")).unwrap() else {
            panic!("expected explore")
        };
        assert!(!opts.verify_repair, "repair verification is opt-in");
    }

    #[test]
    fn parses_predict() {
        let Command::Predict(opts) = parse(&argv("predict fig1a")).unwrap() else {
            panic!("expected predict")
        };
        assert_eq!(opts.targets, vec!["fig1a".to_string()]);
        assert_eq!(opts.order, PredictOrder::Wcp, "wcp is the default order");
        assert_eq!(opts.model, MemoryModel::Wo);
        assert_eq!(opts.seed, 0);
        assert!(!opts.json && !opts.stats && opts.metrics_out.is_none());

        let cmd = parse(&argv(
            "predict all t.bin --order shb --format json --model rcsc --fidelity raw \
             --hw inval-queue --seed 7 --pairing all-sync --metrics m.json --stats",
        ))
        .unwrap();
        let Command::Predict(opts) = cmd else { panic!("expected predict") };
        assert_eq!(opts.targets, vec!["all".to_string(), "t.bin".to_string()]);
        assert_eq!(opts.order, PredictOrder::Shb);
        assert!(opts.json && opts.stats);
        assert_eq!(opts.model, MemoryModel::RCsc);
        assert_eq!(opts.fidelity, Fidelity::Raw);
        assert_eq!(opts.hw, HwImpl::InvalQueue);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.pairing, PairingPolicy::AllSync);
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));

        assert!(matches!(parse(&argv("predict")), Err(CliError::Usage(_))), "target required");
        assert!(matches!(parse(&argv("predict x --order hb3")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("predict x --format yaml")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("predict x --bogus")), Err(CliError::Usage(_))));
    }

    #[test]
    fn parses_capture() {
        let Command::Capture(opts) = parse(&argv("capture publish")).unwrap() else {
            panic!("expected capture")
        };
        assert_eq!(opts.workload, "publish");
        assert_eq!(opts.runs, 1);
        assert_eq!(opts.seed, 0);
        assert!(!opts.wmrs && !opts.stats);
        assert!(opts.out.is_none() && opts.sink.is_none() && opts.metrics_out.is_none());
        assert_eq!(opts.chunk, 4096);

        let cmd = parse(&argv(
            "capture all --runs 5 --seed 11 --format wmrs --out /tmp/cap --sink 127.0.0.1:900 \
             --chunk 64 --metrics m.json --stats",
        ))
        .unwrap();
        let Command::Capture(opts) = cmd else { panic!("expected capture") };
        assert_eq!(opts.workload, "all");
        assert_eq!(opts.runs, 5);
        assert_eq!(opts.seed, 11);
        assert!(opts.wmrs && opts.stats);
        assert_eq!(opts.out.as_deref(), Some("/tmp/cap"));
        assert_eq!(opts.sink.as_deref(), Some("127.0.0.1:900"));
        assert_eq!(opts.chunk, 64);
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));

        assert!(matches!(parse(&argv("capture")), Err(CliError::Usage(_))), "workload required");
        assert!(matches!(parse(&argv("capture a b")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("capture x --runs 0")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("capture x --format json")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("capture x --bogus")), Err(CliError::Usage(_))));
    }

    #[test]
    fn parses_explore_flags() {
        let cmd = parse(&argv(
            "explore fig1a --seeds 5..25 --jobs 8 --budget 500 --cycle-budget 9000 \
             --model wo,rcsc --hw store-buffer,inval-queue --drain 0.1,0.5 \
             --fidelity raw --pairing all-sync --always-analyze --report r.json \
             --metrics m.json --stats",
        ))
        .unwrap();
        let Command::Explore(opts) = cmd else { panic!("expected explore") };
        assert_eq!(opts.seeds, (5, 25));
        assert_eq!(opts.jobs, 8);
        assert_eq!(opts.budget, Some(500));
        assert_eq!(opts.cycle_budget, Some(9000));
        assert_eq!(opts.models, vec![MemoryModel::Wo, MemoryModel::RCsc]);
        assert_eq!(opts.hws, vec![HwImpl::StoreBuffer, HwImpl::InvalQueue]);
        assert_eq!(opts.drain_probs, vec![0.1, 0.5]);
        assert_eq!(opts.fidelity, Fidelity::Raw);
        assert_eq!(opts.pairing, PairingPolicy::AllSync);
        assert!(opts.always_analyze);
        assert_eq!(opts.report_out.as_deref(), Some("r.json"));
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
        assert!(opts.stats);
    }

    #[test]
    fn explore_seed_range_syntax() {
        let Command::Explore(opts) = parse(&argv("explore fig1a --seeds 64")).unwrap() else {
            panic!("expected explore")
        };
        assert_eq!(opts.seeds, (0, 64), "a bare count means 0..N");
        let Command::Explore(opts) = parse(&argv("explore fig1a --repro 17")).unwrap() else {
            panic!("expected explore")
        };
        assert_eq!(opts.repro, Some(17));
        assert!(matches!(parse(&argv("explore x --seeds 9..9")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("explore x --seeds 9..2")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("explore x --seeds 0")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("explore x --seeds a..b")), Err(CliError::Usage(_))));
    }

    #[test]
    fn parses_serve_flags() {
        let cmd = parse(&argv(
            "serve --listen unix:/tmp/wmrd.sock --catalog cat.journal --workers 4 \
             --queue-cap 128 --pairing all-sync",
        ))
        .unwrap();
        let Command::Serve(opts) = cmd else { panic!("expected serve") };
        assert_eq!(opts.listen, "unix:/tmp/wmrd.sock");
        assert_eq!(opts.catalog.as_deref(), Some("cat.journal"));
        assert_eq!(opts.workers, 4);
        assert_eq!(opts.queue_cap, 128);
        assert_eq!(opts.pairing, PairingPolicy::AllSync);

        let Command::Serve(opts) = parse(&argv("serve --listen 127.0.0.1:0")).unwrap() else {
            panic!("expected serve")
        };
        assert_eq!(opts.workers, 2);
        assert_eq!(opts.queue_cap, 64);
        assert_eq!(opts.max_streams, 4);
        assert!(opts.catalog.is_none());

        let Command::Serve(opts) = parse(&argv("serve --listen :0 --max-streams 9")).unwrap()
        else {
            panic!("expected serve")
        };
        assert_eq!(opts.max_streams, 9);
    }

    #[test]
    fn parses_stream_flags() {
        let cmd = parse(&argv(
            "stream fig1a --to unix:/tmp/w.sock --model rcsc --fidelity raw \
             --hw inval-queue --seed 7 --chunk 128 --session s1",
        ))
        .unwrap();
        let Command::Stream(opts) = cmd else { panic!("expected stream") };
        assert_eq!(opts.to, "unix:/tmp/w.sock");
        assert_eq!(opts.program, "fig1a");
        assert_eq!(opts.model, MemoryModel::RCsc);
        assert_eq!(opts.fidelity, Fidelity::Raw);
        assert_eq!(opts.hw, HwImpl::InvalQueue);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.chunk, 128);
        assert_eq!(opts.session.as_deref(), Some("s1"));
    }

    #[test]
    fn stream_defaults_and_rejections() {
        let Command::Stream(opts) = parse(&argv("stream fig1a --to 127.0.0.1:1")).unwrap() else {
            panic!("expected stream")
        };
        assert_eq!(opts.model, MemoryModel::Wo);
        assert_eq!(opts.chunk, 4096);
        assert!(opts.session.is_none());

        assert!(matches!(parse(&argv("stream")), Err(CliError::Usage(_))), "program required");
        assert!(matches!(parse(&argv("stream fig1a")), Err(CliError::Usage(_))), "--to required");
        assert!(matches!(parse(&argv("stream x --to y:1 --chunk 0")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("stream x --to y:1 --bogus")), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&argv("serve --listen :0 --max-streams no")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_submit_and_query() {
        let Command::Submit(opts) =
            parse(&argv("submit --to 127.0.0.1:7919 a.bin b.json")).unwrap()
        else {
            panic!("expected submit")
        };
        assert_eq!(opts.to, "127.0.0.1:7919");
        assert_eq!(opts.files, vec!["a.bin".to_string(), "b.json".to_string()]);

        let Command::Query(opts) = parse(&argv("query --to unix:/tmp/w.sock races")).unwrap()
        else {
            panic!("expected query")
        };
        assert_eq!(opts.to, "unix:/tmp/w.sock");
        assert_eq!(opts.spec, "races");
        assert!(!opts.json, "text is the default");

        let Command::Query(opts) = parse(&argv("query --to x:1 races --format json")).unwrap()
        else {
            panic!("expected query")
        };
        assert!(opts.json);
        assert!(matches!(
            parse(&argv("query --to x:1 races --format yaml")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn explore_sink_flag() {
        let Command::Explore(opts) = parse(&argv("explore fig1a --sink unix:/tmp/w.sock")).unwrap()
        else {
            panic!("expected explore")
        };
        assert_eq!(opts.sink.as_deref(), Some("unix:/tmp/w.sock"));
    }

    #[test]
    fn serve_family_rejects_bad_input() {
        assert!(matches!(parse(&argv("serve")), Err(CliError::Usage(_))), "listen is required");
        assert!(matches!(parse(&argv("serve --workers four")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("serve --listen :0 --bogus")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("submit a.bin")), Err(CliError::Usage(_))), "--to required");
        assert!(matches!(parse(&argv("submit --to x:1")), Err(CliError::Usage(_))), "no files");
        assert!(matches!(parse(&argv("query --to x:1")), Err(CliError::Usage(_))), "no spec");
        assert!(matches!(parse(&argv("query --to x:1 races extra")), Err(CliError::Usage(_))));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(parse(&argv("frobnicate")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("run")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("run x --model tso")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("run x --seed banana")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("run x --bogus")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("analyze t --pairing weird")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("show")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("run x --fidelity maybe")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("run x --hw tso")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("explore x --model wo,tso")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("explore x --drain 0.3,high")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("explore x --jobs many")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("explore x --bogus")), Err(CliError::Usage(_))));
    }

    #[test]
    fn every_hw_variant_parses_on_every_surface() {
        // A new backend must reach every `--hw` surface; a variant that
        // parses on `run` but silently falls back to the default on
        // `explore --prune-static`/`--predict` would skew campaigns.
        for hw in HwImpl::ALL {
            let name = hw.to_string();

            let Command::Run(opts) = parse(&argv(&format!("run fig1a --hw {name}"))).unwrap()
            else {
                panic!("expected run")
            };
            assert_eq!(opts.hw, hw, "run --hw {name}");

            let Command::Check(opts) = parse(&argv(&format!("check fig1a --hw {name}"))).unwrap()
            else {
                panic!("expected check")
            };
            assert_eq!(opts.hw, hw, "check --hw {name}");

            let Command::Explore(opts) =
                parse(&argv(&format!("explore fig1a --hw {name} --prune-static --predict")))
                    .unwrap()
            else {
                panic!("expected explore")
            };
            assert_eq!(opts.hws, vec![hw], "explore --hw {name}");
            assert!(opts.prune_static && opts.predict, "flags survive --hw {name}");

            let Command::Predict(opts) =
                parse(&argv(&format!("predict fig1a --hw {name}"))).unwrap()
            else {
                panic!("expected predict")
            };
            assert_eq!(opts.hw, hw, "predict --hw {name}");

            let Command::Stream(opts) =
                parse(&argv(&format!("stream fig1a --to unix:/tmp/w.sock --hw {name}"))).unwrap()
            else {
                panic!("expected stream")
            };
            assert_eq!(opts.hw, hw, "stream --hw {name}");
        }
        // The list parser used by explore accepts every variant at once.
        let all = HwImpl::ALL.map(|h| h.to_string()).join(",");
        let Command::Explore(opts) = parse(&argv(&format!("explore fig1a --hw {all}"))).unwrap()
        else {
            panic!("expected explore")
        };
        assert_eq!(opts.hws, HwImpl::ALL.to_vec());
    }
}
