//! CLI error type.

use std::fmt;

/// Errors produced by argument parsing or command execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// The invocation could not be parsed; the message is user-facing.
    Usage(String),
    /// A named workload or file could not be found.
    NotFound(String),
    /// The simulator failed.
    Sim(wmrd_sim::SimError),
    /// Trace reading/writing failed.
    Trace(wmrd_trace::TraceError),
    /// Analysis failed.
    Analysis(wmrd_core::AnalysisError),
    /// Verification failed.
    Verify(wmrd_verify::VerifyError),
    /// A campaign failed.
    Explore(wmrd_explore::ExploreError),
    /// An I/O error.
    Io(std::io::Error),
    /// An I/O error on a specific file (named so the user knows which
    /// path failed).
    File {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// JSON (de)serialization failed.
    Json(serde_json::Error),
    /// An assembly source file failed to parse (named so the user knows
    /// which path failed; the source error carries line and column).
    Asm {
        /// The path involved.
        path: String,
        /// The underlying parse error.
        source: wmrd_sim::AsmError,
    },
    /// `wmrd lint` found may-race pairs. Carries the full report text so
    /// the binary can print it before exiting non-zero — findings are a
    /// *verdict*, not a malfunction, but scripts need the exit status.
    LintFindings {
        /// The rendered report(s), exactly as a clean run would print.
        output: String,
        /// Total may-race keys across the linted programs.
        findings: u64,
    },
    /// `wmrd explore --verify-repair` could not verify the synthesized
    /// repair: the repaired program still raced, or violated Condition
    /// 3.4, on some backend. Same shape as `LintFindings`: a verdict
    /// carried with the rendered report so the binary can print it and
    /// exit non-zero for scripts.
    RepairUnverified {
        /// The rendered verification report, exactly as a clean run
        /// would print.
        output: String,
        /// One-line reason (which backend / which check failed).
        reason: String,
    },
    /// `wmrd predict` predicted races. Same shape as `LintFindings`:
    /// a verdict carried with the rendered report so the binary can
    /// print it and exit non-zero for scripts.
    PredictFindings {
        /// The rendered report(s), exactly as a clean run would print.
        output: String,
        /// Total predicted race keys across the analyzed traces.
        findings: u64,
    },
    /// The serve layer (daemon, client, or endpoint) failed.
    Serve(wmrd_serve::ServeError),
    /// The race catalog refused an operation.
    Catalog(wmrd_catalog::CatalogError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::NotFound(m) => write!(f, "not found: {m}"),
            CliError::Sim(e) => write!(f, "simulation failed: {e}"),
            CliError::Trace(e) => write!(f, "trace error: {e}"),
            CliError::Analysis(e) => write!(f, "analysis failed: {e}"),
            CliError::Verify(e) => write!(f, "verification failed: {e}"),
            CliError::Explore(e) => write!(f, "exploration failed: {e}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::File { path, source } => write!(f, "{path}: {source}"),
            CliError::Json(e) => write!(f, "json error: {e}"),
            CliError::Asm { path, source } => write!(f, "{path}: {source}"),
            CliError::LintFindings { findings, .. } => {
                write!(f, "lint found {findings} may-race key(s)")
            }
            CliError::PredictFindings { findings, .. } => {
                write!(f, "predicted {findings} race key(s)")
            }
            CliError::RepairUnverified { reason, .. } => {
                write!(f, "repair verification failed: {reason}")
            }
            CliError::Serve(e) => write!(f, "serve error: {e}"),
            CliError::Catalog(e) => write!(f, "catalog error: {e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Sim(e) => Some(e),
            CliError::Trace(e) => Some(e),
            CliError::Analysis(e) => Some(e),
            CliError::Verify(e) => Some(e),
            CliError::Explore(e) => Some(e),
            CliError::Io(e) => Some(e),
            CliError::File { source, .. } => Some(source),
            CliError::Json(e) => Some(e),
            CliError::Asm { source, .. } => Some(source),
            CliError::Serve(e) => Some(e),
            CliError::Catalog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wmrd_sim::SimError> for CliError {
    fn from(e: wmrd_sim::SimError) -> Self {
        CliError::Sim(e)
    }
}

impl From<wmrd_trace::TraceError> for CliError {
    fn from(e: wmrd_trace::TraceError) -> Self {
        CliError::Trace(e)
    }
}

impl From<wmrd_core::AnalysisError> for CliError {
    fn from(e: wmrd_core::AnalysisError) -> Self {
        CliError::Analysis(e)
    }
}

impl From<wmrd_verify::VerifyError> for CliError {
    fn from(e: wmrd_verify::VerifyError) -> Self {
        CliError::Verify(e)
    }
}

impl From<wmrd_explore::ExploreError> for CliError {
    fn from(e: wmrd_explore::ExploreError) -> Self {
        CliError::Explore(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<serde_json::Error> for CliError {
    fn from(e: serde_json::Error) -> Self {
        CliError::Json(e)
    }
}

impl From<wmrd_serve::ServeError> for CliError {
    fn from(e: wmrd_serve::ServeError) -> Self {
        CliError::Serve(e)
    }
}

impl From<wmrd_catalog::CatalogError> for CliError {
    fn from(e: wmrd_catalog::CatalogError) -> Self {
        CliError::Catalog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_errors_name_the_path() {
        let e = CliError::File {
            path: "/tmp/x.json".into(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert!(e.to_string().contains("/tmp/x.json"));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }

    #[test]
    fn asm_errors_name_path_line_and_column() {
        let source = wmrd_sim::parse_asm("proc\n  frobnicate r0\n").unwrap_err();
        let e = CliError::Asm { path: "bad.wmrd".into(), source };
        let text = e.to_string();
        assert!(text.contains("bad.wmrd"), "{text}");
        assert!(text.contains("line 2"), "{text}");
        use std::error::Error as _;
        assert!(e.source().is_some());
    }

    #[test]
    fn lint_findings_carry_the_count() {
        let e = CliError::LintFindings { output: "report text".into(), findings: 3 };
        assert!(e.to_string().contains("3 may-race key(s)"), "{e}");
        use std::error::Error as _;
        assert!(e.source().is_none(), "a verdict has no underlying fault");
    }

    #[test]
    fn repair_unverified_carries_the_reason() {
        let e = CliError::RepairUnverified {
            output: "report text".into(),
            reason: "repaired program still races on ooo".into(),
        };
        assert!(e.to_string().contains("still races on ooo"), "{e}");
        use std::error::Error as _;
        assert!(e.source().is_none(), "a verdict has no underlying fault");
    }

    #[test]
    fn predict_findings_carry_the_count() {
        let e = CliError::PredictFindings { output: "report text".into(), findings: 2 };
        assert!(e.to_string().contains("predicted 2 race key(s)"), "{e}");
        use std::error::Error as _;
        assert!(e.source().is_none(), "a verdict has no underlying fault");
    }

    #[test]
    fn display_variants() {
        assert!(CliError::Usage("bad flag".into()).to_string().contains("bad flag"));
        assert!(CliError::NotFound("nope".into()).to_string().contains("nope"));
        let e = CliError::from(wmrd_sim::SimError::StepLimit(3));
        assert!(e.to_string().contains("simulation failed"));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }
}
