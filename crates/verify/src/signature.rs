//! Execution-independent race identities.
//!
//! Comparing races *across executions* (Theorem 4.2: "at least one data
//! race per first partition also occurs in a sequentially consistent
//! execution") needs a name for a race that does not depend on dynamic
//! operation ids, which differ between interleavings. Section 2.1 of the
//! paper identifies an operation by "the location it accesses and the
//! part of the program in which it is specified"; a [`RaceSignature`]
//! approximates that with the issuing processor, the location, the access
//! kind and the data/sync classification of both sides — coarse enough to
//! be stable across interleavings of the same program, fine enough to
//! distinguish the races of every workload in this repository.

use std::collections::HashSet;

use wmrd_core::ops::OpRace;
use wmrd_core::DataRace;
use wmrd_trace::{AccessKind, Location, OpTrace, ProcId, TraceSet};

/// One side of a race signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SideSignature {
    /// Issuing processor.
    pub proc: ProcId,
    /// Read or write (for event-level races: whether the event *writes*
    /// the conflict location).
    pub kind: AccessKind,
    /// `true` iff the side is a synchronization operation/event.
    pub sync: bool,
}

/// An execution-independent race identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RaceSignature {
    /// The conflict location.
    pub loc: Location,
    /// The lexicographically smaller side.
    pub a: SideSignature,
    /// The other side.
    pub b: SideSignature,
}

impl RaceSignature {
    /// Builds a normalized signature from two sides.
    pub fn new(loc: Location, x: SideSignature, y: SideSignature) -> Self {
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        RaceSignature { loc, a, b }
    }
}

/// Signatures of the *data* races of an operation-level race list.
pub fn op_race_signatures(races: &[OpRace], trace: &OpTrace) -> HashSet<RaceSignature> {
    let mut out = HashSet::new();
    for race in races.iter().filter(|r| r.is_data_race()) {
        let (Some(a), Some(b)) = (trace.op(race.a), trace.op(race.b)) else { continue };
        out.insert(RaceSignature::new(
            race.loc,
            SideSignature { proc: a.id.proc, kind: a.kind, sync: a.is_sync() },
            SideSignature { proc: b.id.proc, kind: b.kind, sync: b.is_sync() },
        ));
    }
    out
}

/// Signatures of the *data* races of an event-level race list. An event
/// race on several locations yields one signature per conflict location.
pub fn event_race_signatures(races: &[DataRace], trace: &TraceSet) -> HashSet<RaceSignature> {
    let mut out = HashSet::new();
    for race in races.iter().filter(|r| r.is_data_race()) {
        let (Some(ea), Some(eb)) = (trace.event(race.a), trace.event(race.b)) else {
            continue;
        };
        for loc in &race.locations {
            // An event may both read and write the location; it then
            // stands for one lower-level race per access-kind combination
            // (Section 4.1: a higher-level race "may represent many
            // lower-level data races").
            let mut kinds_a = Vec::new();
            if ea.read_set().contains(loc) {
                kinds_a.push(AccessKind::Read);
            }
            if ea.write_set().contains(loc) {
                kinds_a.push(AccessKind::Write);
            }
            let mut kinds_b = Vec::new();
            if eb.read_set().contains(loc) {
                kinds_b.push(AccessKind::Read);
            }
            if eb.write_set().contains(loc) {
                kinds_b.push(AccessKind::Write);
            }
            for &ka in &kinds_a {
                for &kb in &kinds_b {
                    if ka == AccessKind::Read && kb == AccessKind::Read {
                        continue; // read-read pairs do not conflict
                    }
                    out.insert(RaceSignature::new(
                        loc,
                        SideSignature { proc: race.a.proc, kind: ka, sync: ea.is_sync() },
                        SideSignature { proc: race.b.proc, kind: kb, sync: eb.is_sync() },
                    ));
                }
            }
        }
    }
    out
}

/// A single event-level race's signatures (helper for per-partition
/// checks).
pub fn one_event_race_signatures(race: &DataRace, trace: &TraceSet) -> HashSet<RaceSignature> {
    event_race_signatures(std::slice::from_ref(race), trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmrd_core::{detect_races, ops::OpAnalysis, HbGraph, PairingPolicy};
    use wmrd_trace::{OpRecorder, TraceBuilder, TraceSink, Value};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    #[test]
    fn signature_is_normalized() {
        let s1 = SideSignature { proc: p(1), kind: AccessKind::Read, sync: false };
        let s0 = SideSignature { proc: p(0), kind: AccessKind::Write, sync: false };
        let sig_a = RaceSignature::new(l(0), s1, s0);
        let sig_b = RaceSignature::new(l(0), s0, s1);
        assert_eq!(sig_a, sig_b);
        assert_eq!(sig_a.a.proc, p(0));
    }

    #[test]
    fn op_and_event_signatures_agree_on_a_simple_race() {
        // Same execution traced at both granularities.
        let mut events = TraceBuilder::new(2);
        let mut ops = OpRecorder::new(2);
        // Feed both sinks identically.
        let feed = |b: &mut dyn TraceSink| {
            b.data_access(p(0), l(3), AccessKind::Write, Value::new(1), None);
            b.data_access(p(1), l(3), AccessKind::Read, Value::ZERO, None);
        };
        feed(&mut events);
        feed(&mut ops);
        let event_trace = events.finish();
        let op_trace = ops.finish();

        let hb = HbGraph::build(&event_trace, PairingPolicy::ByRole).unwrap();
        let event_races = detect_races(&event_trace, &hb);
        let esigs = event_race_signatures(&event_races, &event_trace);

        let analysis = OpAnalysis::analyze(&op_trace, PairingPolicy::ByRole).unwrap();
        let osigs = op_race_signatures(analysis.races(), &op_trace);

        assert_eq!(esigs, osigs);
        assert_eq!(esigs.len(), 1);
        let sig = esigs.iter().next().unwrap();
        assert_eq!(sig.loc, l(3));
        assert_eq!(sig.a.kind, AccessKind::Write);
        assert_eq!(sig.b.kind, AccessKind::Read);
    }

    #[test]
    fn multi_location_event_race_yields_multiple_signatures() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        b.data_access(p(1), l(1), AccessKind::Read, Value::ZERO, None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let races = detect_races(&t, &hb);
        assert_eq!(races.len(), 1, "one event pair");
        let sigs = event_race_signatures(&races, &t);
        assert_eq!(sigs.len(), 2, "two conflict locations");
    }

    #[test]
    fn sync_sync_races_are_skipped() {
        use wmrd_trace::SyncRole;
        let mut b = TraceBuilder::new(2);
        b.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), l(9), AccessKind::Write, SyncRole::Release, Value::new(1), None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let races = detect_races(&t, &hb);
        assert_eq!(races.len(), 1);
        assert!(event_race_signatures(&races, &t).is_empty());
    }

    #[test]
    fn one_race_helper() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let races = detect_races(&t, &hb);
        assert_eq!(one_event_race_signatures(&races[0], &t).len(), 1);
    }
}
