//! Execution-independent race identities.
//!
//! The canonical types now live in `wmrd-core` ([`wmrd_core::RaceKey`] /
//! [`wmrd_core::SideKey`]), where the campaign engine shares them for
//! cross-execution deduplication; this module keeps the verifier's
//! historical names and set-valued helpers as thin wrappers. See the
//! core module for the identity's rationale (Section 2.1 of the paper:
//! an operation is "the location it accesses and the part of the
//! program in which it is specified").

use std::collections::HashSet;

use wmrd_core::ops::OpRace;
use wmrd_core::DataRace;
use wmrd_trace::{OpTrace, TraceSet};

pub use wmrd_core::{RaceKey as RaceSignature, SideKey as SideSignature};

/// Signatures of the *data* races of an operation-level race list.
pub fn op_race_signatures(races: &[OpRace], trace: &OpTrace) -> HashSet<RaceSignature> {
    wmrd_core::op_race_keys(races, trace).into_iter().collect()
}

/// Signatures of the *data* races of an event-level race list. An event
/// race on several locations yields one signature per conflict location.
pub fn event_race_signatures(races: &[DataRace], trace: &TraceSet) -> HashSet<RaceSignature> {
    wmrd_core::event_race_keys(races, trace).into_iter().collect()
}

/// A single event-level race's signatures (helper for per-partition
/// checks).
pub fn one_event_race_signatures(race: &DataRace, trace: &TraceSet) -> HashSet<RaceSignature> {
    event_race_signatures(std::slice::from_ref(race), trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmrd_core::{detect_races, ops::OpAnalysis, HbGraph, PairingPolicy};
    use wmrd_trace::{AccessKind, Location, OpRecorder, ProcId, TraceBuilder, TraceSink, Value};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    #[test]
    fn signature_is_normalized() {
        let s1 = SideSignature { proc: p(1), kind: AccessKind::Read, sync: false };
        let s0 = SideSignature { proc: p(0), kind: AccessKind::Write, sync: false };
        let sig_a = RaceSignature::new(l(0), s1, s0);
        let sig_b = RaceSignature::new(l(0), s0, s1);
        assert_eq!(sig_a, sig_b);
        assert_eq!(sig_a.a.proc, p(0));
    }

    #[test]
    fn op_and_event_signatures_agree_on_a_simple_race() {
        // Same execution traced at both granularities.
        let mut events = TraceBuilder::new(2);
        let mut ops = OpRecorder::new(2);
        // Feed both sinks identically.
        let feed = |b: &mut dyn TraceSink| {
            b.data_access(p(0), l(3), AccessKind::Write, Value::new(1), None);
            b.data_access(p(1), l(3), AccessKind::Read, Value::ZERO, None);
        };
        feed(&mut events);
        feed(&mut ops);
        let event_trace = events.finish();
        let op_trace = ops.finish();

        let hb = HbGraph::build(&event_trace, PairingPolicy::ByRole).unwrap();
        let event_races = detect_races(&event_trace, &hb);
        let esigs = event_race_signatures(&event_races, &event_trace);

        let analysis = OpAnalysis::analyze(&op_trace, PairingPolicy::ByRole).unwrap();
        let osigs = op_race_signatures(analysis.races(), &op_trace);

        assert_eq!(esigs, osigs);
        assert_eq!(esigs.len(), 1);
        let sig = esigs.iter().next().unwrap();
        assert_eq!(sig.loc, l(3));
        assert_eq!(sig.a.kind, AccessKind::Write);
        assert_eq!(sig.b.kind, AccessKind::Read);
    }

    #[test]
    fn multi_location_event_race_yields_multiple_signatures() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        b.data_access(p(1), l(1), AccessKind::Read, Value::ZERO, None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let races = detect_races(&t, &hb);
        assert_eq!(races.len(), 1, "one event pair");
        let sigs = event_race_signatures(&races, &t);
        assert_eq!(sigs.len(), 2, "two conflict locations");
    }

    #[test]
    fn sync_sync_races_are_skipped() {
        use wmrd_trace::SyncRole;
        let mut b = TraceBuilder::new(2);
        b.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), l(9), AccessKind::Write, SyncRole::Release, Value::new(1), None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let races = detect_races(&t, &hb);
        assert_eq!(races.len(), 1);
        assert!(event_race_signatures(&races, &t).is_empty());
    }

    #[test]
    fn one_race_helper() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let races = detect_races(&t, &hb);
        assert_eq!(one_event_race_signatures(&races[0], &t).len(), 1);
    }
}
