//! Exhaustive enumeration of *weak* executions.
//!
//! [`enumerate_weak`] explores every schedule of the store-buffer
//! machine on a bounded program: at each point the choices are "step
//! some processor" and "drain some buffered write" (any legally
//! drainable entry — this is where weak ordering's write reordering
//! enters the search space). Combined with [`enumerate_sc`]
//! (crate::enumerate_sc), it upgrades the Condition 3.4 checks from
//! sampled to **exhaustive** on small programs: every weak execution is
//! analyzed, race-free ones are proven sequentially consistent by the
//! linearization oracle, and racy ones have their first partitions
//! matched against the complete set of SC races.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use wmrd_sim::{Fidelity, MemoryModel, Program, Timing, WeakMachine};
use wmrd_trace::{MultiSink, OpRecorder, ProcId, TraceBuilder};

use crate::{EnumConfig, ScExecution, VerifyError};

/// The result of a weak-execution enumeration.
#[derive(Debug, Clone)]
pub struct WeakEnumResult {
    /// Distinct executions (by operation trace), with both trace
    /// granularities and final memory — the same shape as SC executions.
    pub executions: Vec<ScExecution>,
    /// `true` iff the schedule space was exhausted within budget.
    pub complete: bool,
}

#[derive(Clone)]
struct Node {
    machine: WeakMachine,
    sink: MultiSink<TraceBuilder, OpRecorder>,
    steps: u64,
    visited: HashMap<u64, u8>,
}

fn ops_fingerprint(ops: &wmrd_trace::OpTrace) -> u64 {
    let mut h = DefaultHasher::new();
    for op in ops.iter() {
        op.hash(&mut h);
    }
    h.finish()
}

/// Exhaustively enumerates the executions of `program` on the
/// store-buffer weak machine under `model`/`fidelity`, up to the budget.
///
/// Register-only instructions are executed eagerly (the same
/// partial-order reduction the SC enumerator uses); the branch points
/// are memory steps and buffer drains.
///
/// # Errors
///
/// Returns [`VerifyError::Sim`] if the program is invalid or faults.
pub fn enumerate_weak(
    program: &Program,
    model: MemoryModel,
    fidelity: Fidelity,
    config: &EnumConfig,
) -> Result<WeakEnumResult, VerifyError> {
    let arc = Arc::new(program.clone());
    let root = Node {
        machine: WeakMachine::new(Arc::clone(&arc), model, fidelity, Timing::uniform())?,
        sink: MultiSink::new(
            TraceBuilder::new(program.num_procs()),
            OpRecorder::new(program.num_procs()),
        ),
        steps: 0,
        visited: HashMap::new(),
    };
    let mut stack = vec![root];
    let mut executions = Vec::new();
    let mut seen = HashSet::new();
    let mut complete = true;

    while let Some(mut node) = stack.pop() {
        if executions.len() >= config.max_executions {
            complete = false;
            break;
        }
        // Eagerly run local instructions of every runnable processor.
        loop {
            let mut progressed = false;
            for proc in node.machine.runnable() {
                while let Some(instr) = node.machine.next_instr(proc) {
                    if instr.touches_memory() {
                        break;
                    }
                    node.machine.step(proc, &mut node.sink)?;
                    node.steps += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        let runnable = node.machine.runnable();
        let mut drains: Vec<(ProcId, usize)> = Vec::new();
        for pi in 0..program.num_procs() {
            let proc = ProcId::new(pi as u16);
            for idx in node.machine.drainable_indices(proc) {
                drains.push((proc, idx));
            }
        }
        if runnable.is_empty() && drains.is_empty() {
            let (builder, recorder) = node.sink.into_inner();
            let ops = recorder.finish();
            if seen.insert(ops_fingerprint(&ops)) {
                executions.push(ScExecution {
                    ops,
                    events: builder.finish(),
                    final_memory: node.machine.memory_values(),
                });
            }
            continue;
        }
        if node.steps >= config.max_steps_per_path {
            complete = false;
            continue;
        }
        let bf = node.machine.behavioral_fingerprint();
        let count = node.visited.entry(bf).or_insert(0);
        *count += 1;
        if *count > config.spin_unroll_limit {
            complete = false;
            continue;
        }
        for proc in runnable {
            let mut child = node.clone();
            child.machine.step(proc, &mut child.sink)?;
            child.steps += 1;
            stack.push(child);
        }
        for (proc, idx) in drains {
            let mut child = node.clone();
            child.machine.drain_one(proc, idx)?;
            child.steps += 1;
            stack.push(child);
        }
    }
    Ok(WeakEnumResult { executions, complete })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theorems::sc_race_signatures;
    use crate::{enumerate_sc, event_race_signatures, is_sequentially_consistent, RaceSignature};
    use wmrd_core::{PairingPolicy, PostMortem};
    use wmrd_progs::catalog;

    fn small_config() -> EnumConfig {
        EnumConfig { max_executions: 50_000, max_steps_per_path: 300, spin_unroll_limit: 1 }
    }

    #[test]
    fn weak_executions_superset_includes_non_sc_behaviors() {
        // fig1a on WO: the enumeration must include an execution where
        // P1 reads y=1 but x=0 — impossible under SC (x is written
        // first), possible when x's write drains after y's.
        let entry = catalog::fig1a();
        let result =
            enumerate_weak(&entry.program, MemoryModel::Wo, Fidelity::Conditioned, &small_config())
                .unwrap();
        assert!(result.complete, "fig1a's weak schedule space is finite");
        let p1 = ProcId::new(1);
        let mut saw_non_sc = false;
        for exec in &result.executions {
            let ops = exec.ops.proc_ops(p1).unwrap();
            let (y, x) = (ops[0].value.get(), ops[1].value.get());
            if (y, x) == (1, 0) {
                saw_non_sc = true;
            }
        }
        assert!(saw_non_sc, "weak ordering must expose the reordered outcome");
    }

    /// The exhaustive Condition 3.4 check on fig1a: every weak execution
    /// either is sequentially consistent, or its first partitions contain
    /// races from the *complete* SC race set.
    #[test]
    fn condition_3_4_exhaustive_on_fig1a() {
        let entry = catalog::fig1a();
        let sc = enumerate_sc(&entry.program, &EnumConfig::default()).unwrap();
        assert!(sc.complete);
        let sc_sigs: HashSet<RaceSignature> =
            sc_race_signatures(&sc.executions, PairingPolicy::ByRole).unwrap();

        let weak =
            enumerate_weak(&entry.program, MemoryModel::Wo, Fidelity::Conditioned, &small_config())
                .unwrap();
        assert!(weak.complete);
        assert!(weak.executions.len() >= sc.executions.len());
        for exec in &weak.executions {
            let report = PostMortem::new(&exec.events).analyze().unwrap();
            if report.is_race_free() {
                assert!(
                    is_sequentially_consistent(&exec.ops, &entry.program.initial_memory()),
                    "race-free weak execution must be SC"
                );
            } else {
                for part in report.first_partitions() {
                    let races: Vec<_> =
                        part.races.iter().map(|&i| report.races[i].clone()).collect();
                    let sigs = event_race_signatures(&races, &exec.events);
                    assert!(
                        sigs.iter().any(|s| sc_sigs.contains(s)),
                        "first partition without an SC race"
                    );
                }
            }
        }
    }

    /// Exhaustive SC-for-DRF on the producer/consumer (no spin in the
    /// producer; the consumer's flag spin is bounded by the unroll
    /// limit): every complete weak execution under every weak model is
    /// race-free and sequentially consistent.
    #[test]
    fn drf_program_is_sc_on_every_enumerated_weak_execution() {
        let entry = catalog::producer_consumer();
        for model in [MemoryModel::Wo, MemoryModel::RCsc] {
            let result =
                enumerate_weak(&entry.program, model, Fidelity::Conditioned, &small_config())
                    .unwrap();
            assert!(!result.executions.is_empty(), "{model}");
            for exec in &result.executions {
                let report = PostMortem::new(&exec.events).analyze().unwrap();
                assert!(report.is_race_free(), "{model}: DRF program raced");
                assert!(
                    is_sequentially_consistent(&exec.ops, &entry.program.initial_memory()),
                    "{model}: weak execution of DRF program not SC"
                );
            }
        }
    }

    /// On the *raw* machine the same exhaustive sweep finds executions
    /// that are race-free yet not SC — exhaustively demonstrating that
    /// Condition 3.4 is a real hardware obligation.
    #[test]
    fn raw_machine_exhaustively_violates() {
        let entry = catalog::ping_pong();
        let result =
            enumerate_weak(&entry.program, MemoryModel::Wo, Fidelity::Raw, &small_config())
                .unwrap();
        let mut violations = 0;
        for exec in &result.executions {
            let report = PostMortem::new(&exec.events).analyze().unwrap();
            if report.is_race_free()
                && !is_sequentially_consistent(&exec.ops, &entry.program.initial_memory())
            {
                violations += 1;
            }
        }
        assert!(violations > 0, "raw hardware must exhibit violations in the full space");
    }

    #[test]
    fn budget_is_respected() {
        let entry = catalog::fig1a();
        let tight = EnumConfig { max_executions: 2, ..EnumConfig::default() };
        let result =
            enumerate_weak(&entry.program, MemoryModel::Wo, Fidelity::Conditioned, &tight).unwrap();
        assert!(!result.complete);
        assert!(result.executions.len() <= 2);
    }
}
