//! Empirical validation of the paper's theorems.
//!
//! * **Theorem 4.1** — there are no first partitions containing data
//!   races iff no data races were exhibited: [`check_theorem_4_1`].
//! * **Theorem 4.2** — each first partition contains at least one data
//!   race that also occurs in a sequentially consistent execution of the
//!   program: [`check_theorem_4_2`] (against enumerated or sampled SC
//!   executions).
//! * **Condition 3.4 / Theorem 3.5** — executions of the conditioned
//!   weak machines have a sequentially consistent prefix through their
//!   first data races, and race-free executions are sequentially
//!   consistent outright: [`check_condition_3_4`], which also validates
//!   the SCP estimate against the linearizability oracle
//!   ([`check_scp_prefix`]).

use std::collections::HashSet;

use wmrd_core::ops::OpAnalysis;
use wmrd_core::{PairingPolicy, PostMortem, RaceReport};
use wmrd_sim::{run_weak_hw, Fidelity, HwImpl, MemoryModel, Program, RandomWeakSched, RunConfig};
use wmrd_trace::{EventKind, MultiSink, OpRecorder, OpTrace, ProcId, TraceBuilder, TraceSet};

use crate::{
    event_race_signatures, is_sequentially_consistent, op_race_signatures, RaceSignature,
    ScExecution, VerifyError,
};

/// Checks Theorem 4.1 on one analyzed execution: first partitions with
/// data races exist iff data races exist.
pub fn check_theorem_4_1(report: &RaceReport) -> bool {
    let has_data_races = !report.is_race_free();
    let has_first_partitions = report.partitions.first_indices().iter().any(|&i| {
        report.partitions.partitions()[i].races.iter().any(|&r| report.races[r].is_data_race())
    });
    has_data_races == has_first_partitions
}

/// Result of a Theorem 4.2 check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Theorem42Outcome {
    /// First partitions examined.
    pub partitions_checked: usize,
    /// First partitions containing at least one race whose signature
    /// occurs in some SC execution.
    pub partitions_confirmed: usize,
}

impl Theorem42Outcome {
    /// `true` iff every first partition was confirmed.
    pub fn holds(&self) -> bool {
        self.partitions_checked == self.partitions_confirmed
    }
}

/// The union of data-race signatures over a set of SC executions.
pub fn sc_race_signatures(
    executions: &[ScExecution],
    pairing: PairingPolicy,
) -> Result<HashSet<RaceSignature>, VerifyError> {
    let mut sigs = HashSet::new();
    for exec in executions {
        let analysis = OpAnalysis::analyze(&exec.ops, pairing)?;
        sigs.extend(op_race_signatures(analysis.races(), &exec.ops));
    }
    Ok(sigs)
}

/// Checks Theorem 4.2: each first partition of `report` (analyzed from
/// `trace`) contains a race whose signature appears among `sc_sigs`.
pub fn check_theorem_4_2(
    trace: &TraceSet,
    report: &RaceReport,
    sc_sigs: &HashSet<RaceSignature>,
) -> Theorem42Outcome {
    let mut checked = 0;
    let mut confirmed = 0;
    for part in report.first_partitions() {
        let has_data_race = part.races.iter().any(|&r| report.races[r].is_data_race());
        if !has_data_race {
            continue;
        }
        checked += 1;
        let part_races: Vec<_> = part.races.iter().map(|&r| report.races[r].clone()).collect();
        let sigs = event_race_signatures(&part_races, trace);
        if sigs.iter().any(|s| sc_sigs.contains(s)) {
            confirmed += 1;
        }
    }
    Theorem42Outcome { partitions_checked: checked, partitions_confirmed: confirmed }
}

/// Truncates an operation trace to the SCP estimate of its event-level
/// report: for each processor, operations strictly before the first
/// event outside the SCP are kept.
pub fn truncate_ops_to_scp(ops: &OpTrace, trace: &TraceSet, report: &RaceReport) -> OpTrace {
    let mut out = OpTrace::new(ops.num_procs());
    for pi in 0..ops.num_procs() {
        let proc = ProcId::new(pi as u16);
        let boundary_event = report.scp.boundary(proc).unwrap_or(0);
        let events = trace.processor(proc).map(|p| p.events()).unwrap_or(&[]);
        // The op index where the first out-of-SCP event begins.
        let op_boundary = if (boundary_event as usize) < events.len() {
            match &events[boundary_event as usize].kind {
                EventKind::Sync(s) => s.op.seq,
                EventKind::Computation(c) => c.first_op.seq,
            }
        } else {
            u32::MAX
        };
        if let Some(proc_ops) = ops.proc_ops(proc) {
            for op in proc_ops.iter().filter(|o| o.id.seq < op_boundary) {
                out.push(proc, op.clone()).expect("same processor count");
            }
        }
    }
    out
}

/// Checks the linearizable core of Definition 3.2 / Condition 3.4 on a
/// weak execution: the **race-free prefix** (each processor's operations
/// strictly before its first race-affected operation, at operation
/// granularity) must be explainable by a sequentially consistent
/// interleaving. Membership of the first races themselves in an SCP is
/// validated separately by [`check_theorem_4_2`]'s cross-execution
/// signature check.
///
/// # Errors
///
/// Returns [`VerifyError::Analysis`] if the operation trace cannot be
/// analyzed.
pub fn check_scp_prefix(
    ops: &OpTrace,
    pairing: PairingPolicy,
    program: &Program,
) -> Result<bool, VerifyError> {
    let analysis = OpAnalysis::analyze(ops, pairing)?;
    let boundaries = analysis.race_free_boundaries();
    let mut prefix = OpTrace::new(ops.num_procs());
    for pi in 0..ops.num_procs() {
        let proc = ProcId::new(pi as u16);
        let boundary = boundaries.get(pi).copied().unwrap_or(0);
        if let Some(proc_ops) = ops.proc_ops(proc) {
            for op in proc_ops.iter().filter(|o| o.id.seq < boundary) {
                prefix.push(proc, op.clone()).expect("same processor count");
            }
        }
    }
    Ok(is_sequentially_consistent(&prefix, &program.initial_memory()))
}

/// The outcome of checking Condition 3.4 on one weak execution.
#[derive(Debug, Clone)]
pub struct Condition34Outcome {
    /// Scheduler seed of the weak execution.
    pub seed: u64,
    /// Whether the execution was data-race-free.
    pub race_free: bool,
    /// For race-free executions: was the whole execution sequentially
    /// consistent (Condition 3.4(1))?
    pub part1_sc: Option<bool>,
    /// For racy executions: Theorem 4.2-style confirmation that the first
    /// partitions contain SC races (Condition 3.4(2)).
    pub part2: Option<Theorem42Outcome>,
    /// Whether the estimated SCP linearizes (Definition 3.2 check).
    pub scp_linearizes: bool,
}

impl Condition34Outcome {
    /// `true` iff every applicable check passed.
    pub fn holds(&self) -> bool {
        self.part1_sc.unwrap_or(true)
            && self.part2.map(|o| o.holds()).unwrap_or(true)
            && self.scp_linearizes
    }
}

/// Runs `program` on a weak machine (model/fidelity) once per seed and
/// checks Condition 3.4 on each execution, comparing racy executions
/// against `sc_sigs` (signatures of the program's SC races, from
/// [`sc_race_signatures`]). Sweeps the default (store-buffer) hardware;
/// use [`check_condition_3_4_hw`] to pick the implementation style.
///
/// # Errors
///
/// Returns [`VerifyError`] for simulator faults or unanalyzable traces.
pub fn check_condition_3_4(
    program: &Program,
    model: MemoryModel,
    fidelity: Fidelity,
    seeds: impl IntoIterator<Item = u64>,
    sc_sigs: &HashSet<RaceSignature>,
    pairing: PairingPolicy,
) -> Result<Vec<Condition34Outcome>, VerifyError> {
    check_condition_3_4_hw(HwImpl::StoreBuffer, program, model, fidelity, seeds, sc_sigs, pairing)
}

/// [`check_condition_3_4`] with an explicit weak-hardware implementation
/// style (store buffers vs invalidation queues) — both must obey the
/// condition; Theorem 3.5's claim is about *all* practical
/// implementations.
///
/// # Errors
///
/// Returns [`VerifyError`] for simulator faults or unanalyzable traces.
pub fn check_condition_3_4_hw(
    hw: HwImpl,
    program: &Program,
    model: MemoryModel,
    fidelity: Fidelity,
    seeds: impl IntoIterator<Item = u64>,
    sc_sigs: &HashSet<RaceSignature>,
    pairing: PairingPolicy,
) -> Result<Vec<Condition34Outcome>, VerifyError> {
    let mut outcomes = Vec::new();
    for seed in seeds {
        let mut sink = MultiSink::new(
            TraceBuilder::new(program.num_procs()),
            OpRecorder::new(program.num_procs()),
        );
        let mut sched = RandomWeakSched::new(seed, 0.3);
        run_weak_hw(hw, program, model, fidelity, &mut sched, &mut sink, RunConfig::uniform())?;
        let (builder, recorder) = sink.into_inner();
        let trace = builder.finish();
        let ops = recorder.finish();
        let report = PostMortem::new(&trace).pairing(pairing).analyze()?;

        let race_free = report.is_race_free();
        let part1_sc = if race_free {
            Some(is_sequentially_consistent(&ops, &program.initial_memory()))
        } else {
            None
        };
        let part2 =
            if race_free { None } else { Some(check_theorem_4_2(&trace, &report, sc_sigs)) };
        let scp_linearizes = check_scp_prefix(&ops, pairing, program)?;
        outcomes.push(Condition34Outcome { seed, race_free, part1_sc, part2, scp_linearizes });
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate_sc, EnumConfig};
    use wmrd_progs::catalog;

    fn sc_sigs_of(program: &Program) -> HashSet<RaceSignature> {
        let result = enumerate_sc(program, &EnumConfig::default()).unwrap();
        sc_race_signatures(&result.executions, PairingPolicy::ByRole).unwrap()
    }

    #[test]
    fn theorem_4_1_on_both_outcomes() {
        for entry in [catalog::fig1a(), catalog::fig1b()] {
            let outcomes = check_condition_3_4(
                &entry.program,
                MemoryModel::Wo,
                Fidelity::Conditioned,
                0..3,
                &HashSet::new(),
                PairingPolicy::ByRole,
            );
            // We only need reports here; rebuild them via PostMortem in
            // check_condition_3_4 — theorem 4.1 is re-checked through the
            // library entry point below.
            assert!(outcomes.is_ok());
        }
    }

    #[test]
    fn condition_3_4_holds_for_race_free_program_on_all_weak_models() {
        let entry = catalog::fig1b();
        let sigs = HashSet::new(); // race-free: no SC sigs needed
        for model in MemoryModel::WEAK {
            let outcomes = check_condition_3_4(
                &entry.program,
                model,
                Fidelity::Conditioned,
                0..8,
                &sigs,
                PairingPolicy::ByRole,
            )
            .unwrap();
            for o in &outcomes {
                assert!(o.race_free, "{model} seed {}: fig1b must not race", o.seed);
                assert_eq!(o.part1_sc, Some(true), "{model} seed {}: must be SC", o.seed);
                assert!(o.holds());
            }
        }
    }

    #[test]
    fn condition_3_4_part2_holds_for_fig1a() {
        let entry = catalog::fig1a();
        let sigs = sc_sigs_of(&entry.program);
        assert!(!sigs.is_empty(), "fig1a has SC races");
        for model in MemoryModel::WEAK {
            let outcomes = check_condition_3_4(
                &entry.program,
                model,
                Fidelity::Conditioned,
                0..8,
                &sigs,
                PairingPolicy::ByRole,
            )
            .unwrap();
            for o in &outcomes {
                assert!(!o.race_free, "{model} seed {}: fig1a must race", o.seed);
                assert!(o.part2.unwrap().holds(), "{model} seed {}: 4.2 fails", o.seed);
                assert!(o.scp_linearizes, "{model} seed {}: SCP must linearize", o.seed);
                assert!(o.holds());
            }
        }
    }

    #[test]
    fn raw_fidelity_violates_part1() {
        // On the raw machine, the race-free producer/consumer can go
        // non-SC (the consumer spins forever on a flag stuck in the
        // producer's buffer... actually the random scheduler's drains do
        // eventually land — the violation shows up as a stale *data*
        // read after the flag arrives). Probe seeds for a violation.
        let entry = catalog::producer_consumer();
        let mut saw_violation = false;
        for seed in 0..40 {
            let outcomes = check_condition_3_4(
                &entry.program,
                MemoryModel::Wo,
                Fidelity::Raw,
                [seed],
                &HashSet::new(),
                PairingPolicy::ByRole,
            )
            .unwrap();
            let o = &outcomes[0];
            if o.race_free && o.part1_sc == Some(false) {
                saw_violation = true;
                break;
            }
        }
        assert!(
            saw_violation,
            "raw hardware should produce a race-free-but-non-SC execution for some seed"
        );
    }

    #[test]
    fn truncation_respects_boundaries() {
        use wmrd_trace::{AccessKind, Location, SyncRole, TraceSink, Value};
        // Build matching event/op traces with a race then more work.
        let mut events = TraceBuilder::new(2);
        let mut ops = OpRecorder::new(2);
        let feed = |s: &mut dyn TraceSink| {
            s.data_access(ProcId::new(0), Location::new(0), AccessKind::Write, Value::new(1), None);
            s.data_access(ProcId::new(1), Location::new(0), AccessKind::Read, Value::ZERO, None);
            s.sync_access(
                ProcId::new(0),
                Location::new(8),
                AccessKind::Write,
                SyncRole::Release,
                Value::ZERO,
                None,
            );
            s.data_access(ProcId::new(0), Location::new(1), AccessKind::Write, Value::new(2), None);
        };
        feed(&mut events);
        feed(&mut ops);
        let trace = events.finish();
        let optrace = ops.finish();
        let report = PostMortem::new(&trace).analyze().unwrap();
        assert!(!report.scp.covers_everything());
        let prefix = truncate_ops_to_scp(&optrace, &trace, &report);
        // P0 keeps only its first op (the racy write); P1 keeps its read.
        assert_eq!(prefix.proc_ops(ProcId::new(0)).unwrap().len(), 1);
        assert_eq!(prefix.proc_ops(ProcId::new(1)).unwrap().len(), 1);
    }
}
