//! Enumerating and sampling sequentially consistent executions.
//!
//! The enumerator drives [`ScMachine`] directly — no scheduler — doing
//! depth-first search over which processor performs its next *memory*
//! operation. Register-only instructions touch no shared state, so they
//! are executed eagerly in a fixed order (a sound partial-order
//! reduction); the branching factor is the number of processors with a
//! pending memory operation.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use wmrd_sim::{Program, RandomSched, RunConfig, ScMachine, Scheduler, Timing};
use wmrd_trace::{MultiSink, OpRecorder, OpTrace, TraceBuilder, TraceSet, Value};

use crate::VerifyError;

/// One sequentially consistent execution of a program.
#[derive(Debug, Clone)]
pub struct ScExecution {
    /// The exact operation-level trace.
    pub ops: OpTrace,
    /// The event-level trace (what instrumentation would record).
    pub events: TraceSet,
    /// Final shared-memory contents.
    pub final_memory: Vec<Value>,
}

/// Budget for [`enumerate_sc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumConfig {
    /// Stop after gathering this many distinct executions.
    pub max_executions: usize,
    /// Abandon any path longer than this many steps (guards against
    /// unbounded spin loops).
    pub max_steps_per_path: u64,
    /// Prune a path once it revisits the same *behavioral* machine state
    /// (values, not writer identities) more than this many times —
    /// bounding spin-loop unrolling, which otherwise makes the execution
    /// space infinite.
    pub spin_unroll_limit: u8,
}

impl Default for EnumConfig {
    fn default() -> Self {
        EnumConfig { max_executions: 20_000, max_steps_per_path: 10_000, spin_unroll_limit: 2 }
    }
}

/// The result of an enumeration.
#[derive(Debug, Clone)]
pub struct EnumResult {
    /// Distinct executions found (deduplicated by operation trace).
    pub executions: Vec<ScExecution>,
    /// `true` iff the search space was exhausted within budget — when
    /// `false`, `executions` is a sample, not the full set.
    pub complete: bool,
}

#[derive(Clone)]
struct Node {
    machine: ScMachine,
    sink: MultiSink<TraceBuilder, OpRecorder>,
    steps: u64,
    /// Behavioral states already visited along this path, with counts
    /// (for spin-unroll pruning).
    visited: std::collections::HashMap<u64, u8>,
}

fn ops_fingerprint(ops: &OpTrace) -> u64 {
    let mut h = DefaultHasher::new();
    for op in ops.iter() {
        op.hash(&mut h);
    }
    h.finish()
}

/// Runs a node's machines until every runnable processor's next
/// instruction is a memory operation (or it halts).
fn advance_locals(node: &mut Node) -> Result<(), VerifyError> {
    loop {
        let mut progressed = false;
        for proc in node.machine.runnable() {
            while let Some(instr) = node.machine.next_instr(proc) {
                if instr.touches_memory() {
                    break;
                }
                node.machine.step(proc, &mut node.sink)?;
                node.steps += 1;
                progressed = true;
            }
        }
        if !progressed {
            return Ok(());
        }
    }
}

/// Exhaustively enumerates the sequentially consistent executions of
/// `program`, up to the budget.
///
/// # Errors
///
/// Returns [`VerifyError::Sim`] if the program is invalid or faults.
/// Hitting the budget is *not* an error — it is reported through
/// [`EnumResult::complete`].
pub fn enumerate_sc(program: &Program, config: &EnumConfig) -> Result<EnumResult, VerifyError> {
    let arc = Arc::new(program.clone());
    let root = Node {
        machine: ScMachine::new(Arc::clone(&arc), Timing::uniform())?,
        sink: MultiSink::new(
            TraceBuilder::new(program.num_procs()),
            OpRecorder::new(program.num_procs()),
        ),
        steps: 0,
        visited: std::collections::HashMap::new(),
    };
    let mut stack = vec![root];
    let mut executions = Vec::new();
    let mut seen = HashSet::new();
    let mut complete = true;

    while let Some(mut node) = stack.pop() {
        if executions.len() >= config.max_executions {
            complete = false;
            break;
        }
        advance_locals(&mut node)?;
        let runnable = node.machine.runnable();
        if runnable.is_empty() {
            let (builder, recorder) = node.sink.into_inner();
            let ops = recorder.finish();
            if seen.insert(ops_fingerprint(&ops)) {
                executions.push(ScExecution {
                    ops,
                    events: builder.finish(),
                    final_memory: node.machine.memory_values(),
                });
            }
            continue;
        }
        if node.steps >= config.max_steps_per_path {
            complete = false;
            continue;
        }
        let bf = node.machine.behavioral_fingerprint();
        let count = node.visited.entry(bf).or_insert(0);
        *count += 1;
        if *count > config.spin_unroll_limit {
            // A spin loop returned to an already-seen behavioral state;
            // further unrolling yields no new behaviors, only longer
            // traces of the same races.
            complete = false;
            continue;
        }
        for proc in runnable {
            let mut child = node.clone();
            child.machine.step(proc, &mut child.sink)?;
            child.steps += 1;
            stack.push(child);
        }
    }
    Ok(EnumResult { executions, complete })
}

/// Draws one SC execution per seed with a seeded random scheduler,
/// deduplicated by operation trace.
///
/// # Errors
///
/// Returns [`VerifyError::Sim`] on simulator faults (including the step
/// limit in `run_config`).
pub fn sample_sc(
    program: &Program,
    seeds: impl IntoIterator<Item = u64>,
    run_config: RunConfig,
) -> Result<Vec<ScExecution>, VerifyError> {
    let arc = Arc::new(program.clone());
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for seed in seeds {
        let mut machine = ScMachine::new(Arc::clone(&arc), run_config.timing)?;
        let mut sink = MultiSink::new(
            TraceBuilder::new(program.num_procs()),
            OpRecorder::new(program.num_procs()),
        );
        let mut sched = RandomSched::new(seed);
        let mut steps = 0u64;
        while !machine.all_halted() {
            if steps >= run_config.max_steps {
                return Err(VerifyError::Sim(wmrd_sim::SimError::StepLimit(run_config.max_steps)));
            }
            let runnable = machine.runnable();
            let Some(pick) = sched.next(&runnable) else { break };
            machine.step(pick, &mut sink)?;
            steps += 1;
        }
        let (builder, recorder) = sink.into_inner();
        let ops = recorder.finish();
        if seen.insert(ops_fingerprint(&ops)) {
            out.push(ScExecution {
                ops,
                events: builder.finish(),
                final_memory: machine.memory_values(),
            });
        }
    }
    Ok(out)
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Node(steps={})", self.steps)
    }
}

/// Convenience: `ProcId` for index `i` (test helper used across this
/// crate's tests).
#[cfg(test)]
pub(crate) fn pid(i: u16) -> wmrd_trace::ProcId {
    wmrd_trace::ProcId::new(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_sequentially_consistent;
    use wmrd_progs::catalog;
    use wmrd_sim::{Addr, Instr, Reg};
    use wmrd_trace::Location;

    #[test]
    fn enumerates_fig1a_completely() {
        let fig1a = catalog::fig1a();
        let result = enumerate_sc(&fig1a.program, &EnumConfig::default()).unwrap();
        assert!(result.complete);
        // P0 has one computation (2 writes), P1 one computation (2
        // reads); op-level interleavings of 2+2 ops: C(4,2)=6, but traces
        // dedup by read values, leaving the distinct observable
        // executions.
        assert!((2..=6).contains(&result.executions.len()), "got {}", result.executions.len());
        for exec in &result.executions {
            assert!(is_sequentially_consistent(&exec.ops, &fig1a.program.initial_memory()));
            assert_eq!(exec.final_memory.len(), 3);
            assert!(exec.events.validate().is_ok());
        }
    }

    #[test]
    fn enumeration_covers_both_race_outcomes() {
        // In fig1a, P1 can read (y,x) as (0,0), (1,1), (0,1)... — at
        // least the all-old and all-new outcomes must appear.
        let fig1a = catalog::fig1a();
        let result = enumerate_sc(&fig1a.program, &EnumConfig::default()).unwrap();
        let read_pairs: HashSet<(i64, i64)> = result
            .executions
            .iter()
            .map(|e| {
                let ops = e.ops.proc_ops(pid(1)).unwrap();
                (ops[0].value.get(), ops[1].value.get())
            })
            .collect();
        assert!(read_pairs.contains(&(0, 0)));
        assert!(read_pairs.contains(&(1, 1)));
        // And never the non-SC outcome "new y (flag) but old x" ... which
        // IS possible under SC here since y is written second: reading
        // y=1 implies x=1 already written. Check it:
        assert!(!read_pairs.contains(&(1, 0)), "y=1 implies x=1 under SC");
    }

    #[test]
    fn budget_truncation_is_reported() {
        let fig1a = catalog::fig1a();
        let tight = EnumConfig { max_executions: 1, ..EnumConfig::default() };
        let result = enumerate_sc(&fig1a.program, &tight).unwrap();
        assert!(!result.complete);
        assert_eq!(result.executions.len(), 1);
    }

    #[test]
    fn step_cap_prunes_unbounded_spins() {
        // A program that can spin forever: enumeration must terminate,
        // incomplete.
        let mut prog = Program::new("spin", 2);
        prog.set_init(Location::new(0), Value::new(1));
        prog.push_proc(vec![
            Instr::TestSet { dst: Reg::new(0), addr: Addr::Abs(Location::new(0)) },
            Instr::Bnz { cond: Reg::new(0), target: 0 },
            Instr::Halt,
        ]);
        prog.push_proc(vec![Instr::Unset { addr: Addr::Abs(Location::new(0)) }, Instr::Halt]);
        let cfg =
            EnumConfig { max_executions: 100, max_steps_per_path: 40, ..EnumConfig::default() };
        let result = enumerate_sc(&prog, &cfg).unwrap();
        assert!(!result.complete, "spin paths exceed the cap");
        assert!(!result.executions.is_empty(), "finite paths still collected");
    }

    #[test]
    fn sample_sc_dedups_and_validates() {
        let fig1a = catalog::fig1a();
        let samples = sample_sc(&fig1a.program, 0..20, RunConfig::uniform()).unwrap();
        assert!(!samples.is_empty());
        assert!(samples.len() <= 20);
        for s in &samples {
            assert!(is_sequentially_consistent(&s.ops, &fig1a.program.initial_memory()));
        }
        // Sampled executions are a subset of the enumerated set.
        let full = enumerate_sc(&fig1a.program, &EnumConfig::default()).unwrap();
        let full_prints: HashSet<u64> =
            full.executions.iter().map(|e| ops_fingerprint(&e.ops)).collect();
        for s in &samples {
            assert!(full_prints.contains(&ops_fingerprint(&s.ops)));
        }
    }

    #[test]
    fn deterministic_program_has_one_execution() {
        let mut prog = Program::new("seq", 2);
        prog.push_proc(vec![
            Instr::St { src: 1.into(), addr: Addr::Abs(Location::new(0)) },
            Instr::Ld { dst: Reg::new(0), addr: Addr::Abs(Location::new(0)) },
            Instr::Halt,
        ]);
        let result = enumerate_sc(&prog, &EnumConfig::default()).unwrap();
        assert!(result.complete);
        assert_eq!(result.executions.len(), 1);
        assert_eq!(result.executions[0].final_memory[0], Value::new(1));
    }

    #[test]
    fn enumeration_of_locked_program_is_race_free_everywhere() {
        use wmrd_core::{ops::OpAnalysis, PairingPolicy};
        let entry = catalog::counter_locked(2, 1);
        let result = enumerate_sc(&entry.program, &EnumConfig::default()).unwrap();
        // Spin loops make the raw execution space infinite; the unroll
        // bound truncates it, so `complete` is false by design here.
        assert!(!result.executions.is_empty());
        for exec in &result.executions {
            let analysis = OpAnalysis::analyze(&exec.ops, PairingPolicy::ByRole).unwrap();
            assert_eq!(analysis.data_races().count(), 0);
            // Both increments land.
            assert_eq!(exec.final_memory[1], Value::new(2));
        }
    }
}
