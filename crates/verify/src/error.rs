//! Error type for the verification oracle.

use std::fmt;

use wmrd_core::AnalysisError;
use wmrd_sim::SimError;

/// Errors produced by enumeration and theorem checking.
#[derive(Debug)]
#[non_exhaustive]
pub enum VerifyError {
    /// The simulator failed while exploring or replaying executions.
    Sim(SimError),
    /// Race analysis of a produced trace failed.
    Analysis(AnalysisError),
    /// Enumeration exceeded its execution budget without completing and
    /// the caller required completeness.
    Incomplete {
        /// Executions gathered before giving up.
        gathered: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Sim(e) => write!(f, "simulation failed: {e}"),
            VerifyError::Analysis(e) => write!(f, "analysis failed: {e}"),
            VerifyError::Incomplete { gathered } => {
                write!(f, "enumeration incomplete after {gathered} executions")
            }
        }
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyError::Sim(e) => Some(e),
            VerifyError::Analysis(e) => Some(e),
            VerifyError::Incomplete { .. } => None,
        }
    }
}

impl From<SimError> for VerifyError {
    fn from(e: SimError) -> Self {
        VerifyError::Sim(e)
    }
}

impl From<AnalysisError> for VerifyError {
    fn from(e: AnalysisError) -> Self {
        VerifyError::Analysis(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_source() {
        let e = VerifyError::from(SimError::StepLimit(5));
        assert!(e.to_string().contains("simulation failed"));
        assert!(e.source().is_some());
        let i = VerifyError::Incomplete { gathered: 3 };
        assert!(i.to_string().contains("3"));
        assert!(i.source().is_none());
    }
}
