//! Model-checking oracle for the `wmrd` workspace.
//!
//! The paper proves its theorems formally (in the companion technical
//! report [AHM91]); this crate validates the same statements empirically
//! on concrete programs, standing in for those proofs:
//!
//! * [`enumerate_sc`] explores the sequentially consistent executions of
//!   a bounded program exhaustively (with partial-order reduction over
//!   register-only instructions); [`sample_sc`] draws seeded random SC
//!   executions when exhaustion is infeasible.
//! * [`is_sequentially_consistent`] decides whether a recorded
//!   operation-level trace is *explainable* by sequential consistency —
//!   i.e. whether some interleaving of the per-processor operation
//!   sequences reads every value from the most recent write. This is the
//!   workhorse for checking Condition 3.4(1) ("no data races ⇒ the
//!   execution is sequentially consistent") and Definition 3.2 ("the
//!   prefix is also the prefix of an SC execution").
//! * [`RaceSignature`] names a race independently of dynamic operation
//!   ids, so a race found in a weak execution can be matched against
//!   races of enumerated SC executions (Theorem 4.2 / Condition 3.4(2)).
//! * [`theorems`] bundles the checks: [`theorems::check_theorem_4_1`],
//!   [`theorems::check_theorem_4_2`], and
//!   [`theorems::check_condition_3_4`].
//!
//! # Example
//!
//! ```
//! use wmrd_progs::catalog;
//! use wmrd_verify::{enumerate_sc, EnumConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fig1a = catalog::fig1a();
//! let result = enumerate_sc(&fig1a.program, &EnumConfig::default())?;
//! assert!(result.complete);
//! assert!(result.executions.len() >= 2, "multiple SC interleavings exist");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod linearize;
mod oracle;
mod signature;
pub mod theorems;
mod weak_oracle;

pub use error::VerifyError;
pub use linearize::{is_sequentially_consistent, linearization_witness};
pub use oracle::{enumerate_sc, sample_sc, EnumConfig, EnumResult, ScExecution};
pub use signature::{
    event_race_signatures, one_event_race_signatures, op_race_signatures, RaceSignature,
    SideSignature,
};
pub use weak_oracle::{enumerate_weak, WeakEnumResult};
