//! Deciding whether a recorded execution is explainable by sequential
//! consistency.
//!
//! An operation-level trace is *sequentially consistent* (Lamport) iff
//! some interleaving of the per-processor operation sequences (respecting
//! program order) has every read return the value of the most recent
//! write to its location (or the initial value). [`is_sequentially_consistent`]
//! searches for such an interleaving with memoized depth-first search;
//! [`linearization_witness`] additionally returns one.
//!
//! `Test&Set`'s two operations (acquire read + sync write of the same
//! location, adjacent in program order) are scheduled as one atomic unit,
//! matching the simulator's (and real hardware's) semantics. This is a
//! *heuristic over the trace*: a program that issues a separate `LdAcq`
//! immediately followed by a separate `StSync` to the same location would
//! be coupled too, making the check conservatively stricter (it can
//! reject an SC-explainable trace of such a program, never accept a
//! non-SC one). No workload in this repository uses that pattern.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use wmrd_trace::{AccessKind, MemOp, OpId, OpTrace, ProcId, SyncRole, Value};

/// `true` iff `ops` is explainable by some sequentially consistent
/// interleaving starting from `initial_memory`.
///
/// Locations at/above `initial_memory.len()` are treated as initially
/// zero.
pub fn is_sequentially_consistent(ops: &OpTrace, initial_memory: &[Value]) -> bool {
    linearization_witness(ops, initial_memory).is_some()
}

/// Searches for a witness interleaving; returns the operation ids in
/// schedule order, or `None` if the trace is not sequentially consistent.
pub fn linearization_witness(ops: &OpTrace, initial_memory: &[Value]) -> Option<Vec<OpId>> {
    let num_procs = ops.num_procs();
    let per_proc: Vec<&[MemOp]> =
        (0..num_procs).map(|i| ops.proc_ops(ProcId::new(i as u16)).unwrap_or(&[])).collect();
    let max_loc = per_proc
        .iter()
        .flat_map(|o| o.iter())
        .map(|o| o.loc.index() + 1)
        .max()
        .unwrap_or(0)
        .max(initial_memory.len());
    let mut memory = vec![Value::ZERO; max_loc];
    memory[..initial_memory.len()].copy_from_slice(initial_memory);

    let mut indices = vec![0usize; num_procs];
    let mut witness = Vec::new();
    let mut failed: HashSet<u64> = HashSet::new();
    if dfs(&per_proc, &mut indices, &mut memory, &mut witness, &mut failed) {
        Some(witness)
    } else {
        None
    }
}

fn state_hash(indices: &[usize], memory: &[Value]) -> u64 {
    let mut h = DefaultHasher::new();
    indices.hash(&mut h);
    memory.hash(&mut h);
    h.finish()
}

/// The next schedulable unit for one processor: one op, or an atomic
/// read+write pair (Test&Set).
fn unit(ops: &[MemOp], idx: usize) -> Option<(&MemOp, Option<&MemOp>)> {
    let first = ops.get(idx)?;
    if first.kind == AccessKind::Read && first.class.sync_role().is_some_and(|r| r.is_acquire()) {
        if let Some(second) = ops.get(idx + 1) {
            if second.kind == AccessKind::Write
                && second.loc == first.loc
                && second.class.sync_role() == Some(SyncRole::None)
            {
                return Some((first, Some(second)));
            }
        }
    }
    Some((first, None))
}

fn dfs(
    per_proc: &[&[MemOp]],
    indices: &mut [usize],
    memory: &mut [Value],
    witness: &mut Vec<OpId>,
    failed: &mut HashSet<u64>,
) -> bool {
    if indices.iter().zip(per_proc).all(|(&i, ops)| i == ops.len()) {
        return true;
    }
    let h = state_hash(indices, memory);
    if failed.contains(&h) {
        return false;
    }
    for p in 0..per_proc.len() {
        let Some((first, second)) = unit(per_proc[p], indices[p]) else { continue };
        // Feasibility: reads must see current memory.
        let feasible = match first.kind {
            AccessKind::Read => memory[first.loc.index()] == first.value,
            AccessKind::Write => true,
        };
        if !feasible {
            continue;
        }
        // Apply.
        let advance = if second.is_some() { 2 } else { 1 };
        let saved_first = memory[first.loc.index()];
        if first.kind == AccessKind::Write {
            memory[first.loc.index()] = first.value;
        }
        let mut saved_second = None;
        if let Some(w) = second {
            saved_second = Some(memory[w.loc.index()]);
            memory[w.loc.index()] = w.value;
        }
        indices[p] += advance;
        witness.push(first.id);
        if let Some(w) = second {
            witness.push(w.id);
        }
        if dfs(per_proc, indices, memory, witness, failed) {
            return true;
        }
        // Undo.
        witness.truncate(witness.len() - advance);
        indices[p] -= advance;
        if let Some(w) = second {
            memory[w.loc.index()] = saved_second.expect("saved alongside the second op");
        }
        memory[first.loc.index()] = saved_first;
    }
    failed.insert(h);
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmrd_trace::{OpClass, OpRecorder, TraceSink};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> wmrd_trace::Location {
        wmrd_trace::Location::new(a)
    }

    fn v(x: i64) -> Value {
        Value::new(x)
    }

    #[test]
    fn empty_trace_is_sc() {
        let ops = OpTrace::new(2);
        assert!(is_sequentially_consistent(&ops, &[]));
        assert_eq!(linearization_witness(&ops, &[]).unwrap(), vec![]);
    }

    #[test]
    fn simple_handoff_is_sc() {
        let mut r = OpRecorder::new(2);
        r.data_access(p(0), l(0), AccessKind::Write, v(7), None);
        r.data_access(p(1), l(0), AccessKind::Read, v(7), None);
        let ops = r.finish();
        let w = linearization_witness(&ops, &[]).unwrap();
        assert_eq!(w, vec![OpId::new(p(0), 0), OpId::new(p(1), 0)]);
    }

    #[test]
    fn read_of_initial_value_forces_order() {
        let mut r = OpRecorder::new(2);
        r.data_access(p(0), l(0), AccessKind::Write, v(7), None);
        r.data_access(p(1), l(0), AccessKind::Read, v(0), None);
        let ops = r.finish();
        // The read of 0 must be scheduled before the write of 7.
        let w = linearization_witness(&ops, &[]).unwrap();
        assert_eq!(w, vec![OpId::new(p(1), 0), OpId::new(p(0), 0)]);
    }

    #[test]
    fn the_classic_non_sc_outcome_is_rejected() {
        // Store-buffer litmus: P0: x=1; read y=0.  P1: y=1; read x=0.
        // Not sequentially consistent.
        let mut r = OpRecorder::new(2);
        r.data_access(p(0), l(0), AccessKind::Write, v(1), None);
        r.data_access(p(0), l(1), AccessKind::Read, v(0), None);
        r.data_access(p(1), l(1), AccessKind::Write, v(1), None);
        r.data_access(p(1), l(0), AccessKind::Read, v(0), None);
        let ops = r.finish();
        assert!(!is_sequentially_consistent(&ops, &[]));
    }

    #[test]
    fn message_passing_stale_read_is_rejected() {
        // P0: data=1; flag=1.  P1: reads flag=1 then data=0. Needs data
        // write reordered after flag write: not SC.
        let mut r = OpRecorder::new(2);
        r.data_access(p(0), l(0), AccessKind::Write, v(1), None);
        r.data_access(p(0), l(1), AccessKind::Write, v(1), None);
        r.data_access(p(1), l(1), AccessKind::Read, v(1), None);
        r.data_access(p(1), l(0), AccessKind::Read, v(0), None);
        let ops = r.finish();
        assert!(!is_sequentially_consistent(&ops, &[]));
    }

    #[test]
    fn initial_memory_is_respected() {
        let mut r = OpRecorder::new(1);
        r.data_access(p(0), l(3), AccessKind::Read, v(37), None);
        let ops = r.finish();
        assert!(!is_sequentially_consistent(&ops, &[]));
        let init = [v(0), v(0), v(0), v(37)];
        assert!(is_sequentially_consistent(&ops, &init));
    }

    #[test]
    fn test_set_pairs_are_atomic() {
        // Two Test&Sets of a free lock: exactly one may read 0. A trace
        // where both read 0 must be rejected even though interleaving the
        // four ops read/read/write/write would "explain" the values.
        let mut r = OpRecorder::new(2);
        for proc in [p(0), p(1)] {
            r.sync_access(proc, l(0), AccessKind::Read, SyncRole::Acquire, v(0), None);
            r.sync_access(proc, l(0), AccessKind::Write, SyncRole::None, v(1), None);
        }
        let ops = r.finish();
        assert!(!is_sequentially_consistent(&ops, &[]), "both Test&Sets succeeding is not SC");

        // The legitimate outcome (second reads 1) is accepted.
        let mut r = OpRecorder::new(2);
        r.sync_access(p(0), l(0), AccessKind::Read, SyncRole::Acquire, v(0), None);
        r.sync_access(p(0), l(0), AccessKind::Write, SyncRole::None, v(1), None);
        r.sync_access(p(1), l(0), AccessKind::Read, SyncRole::Acquire, v(1), None);
        r.sync_access(p(1), l(0), AccessKind::Write, SyncRole::None, v(1), None);
        let ops = r.finish();
        assert!(is_sequentially_consistent(&ops, &[]));
    }

    #[test]
    fn witness_respects_program_order() {
        let mut r = OpRecorder::new(2);
        r.data_access(p(0), l(0), AccessKind::Write, v(1), None);
        r.data_access(p(0), l(1), AccessKind::Write, v(2), None);
        r.data_access(p(1), l(1), AccessKind::Read, v(2), None);
        let ops = r.finish();
        let w = linearization_witness(&ops, &[]).unwrap();
        let pos = |id: OpId| w.iter().position(|&x| x == id).expect("all ops in witness");
        assert!(pos(OpId::new(p(0), 0)) < pos(OpId::new(p(0), 1)), "po respected");
        assert!(pos(OpId::new(p(0), 1)) < pos(OpId::new(p(1), 0)), "read after its write");
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn intra_processor_value_flow() {
        // P0 writes 1 then reads 2: impossible without another writer.
        let mut r = OpRecorder::new(1);
        r.data_access(p(0), l(0), AccessKind::Write, v(1), None);
        r.data_access(p(0), l(0), AccessKind::Read, v(2), None);
        let ops = r.finish();
        assert!(!is_sequentially_consistent(&ops, &[]));
    }

    #[test]
    fn memoization_handles_diamond_blowup() {
        // Many processors writing distinct locations: huge interleaving
        // count, but trivially SC; memoized DFS must return quickly.
        let mut r = OpRecorder::new(8);
        for i in 0..8u16 {
            for j in 0..6u32 {
                r.data_access(p(i), l(i as u32 * 8 + j), AccessKind::Write, v(1), None);
            }
        }
        let ops = r.finish();
        assert!(is_sequentially_consistent(&ops, &[]));
    }

    #[test]
    fn unit_groups_only_adjacent_test_set_shapes() {
        let mut r = OpRecorder::new(1);
        // Acquire read at loc 0, then sync write at *different* loc: not
        // a Test&Set pair.
        r.sync_access(p(0), l(0), AccessKind::Read, SyncRole::Acquire, v(0), None);
        r.sync_access(p(0), l(1), AccessKind::Write, SyncRole::None, v(1), None);
        let ops = r.finish();
        let proc_ops = ops.proc_ops(p(0)).unwrap();
        let (first, second) = unit(proc_ops, 0).unwrap();
        assert_eq!(first.loc, l(0));
        assert!(second.is_none());
        // Release writes never begin a unit pair either.
        assert!(matches!(proc_ops[1].class, OpClass::Sync(SyncRole::None)));
    }
}
