//! Predicted-race enumeration and the deterministic report type.

use std::collections::{BTreeSet, HashMap, HashSet};

use serde::{Deserialize, Serialize};
use wmrd_core::{event_race_keys, DataRace, HbGraph, PairingPolicy, RaceKey, RaceKind, SideKey};
use wmrd_trace::{metric_keys, EventId, Location, Metrics, TraceSet};

use crate::order::{PredictGraph, PredictOrder};

/// Counters describing one predictive analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictStats {
    /// Events in the analyzed trace.
    pub events: usize,
    /// Critical sections recovered from the sync skeleton.
    pub sections: usize,
    /// `so1` edges admitted into the predictive order.
    pub kept_edges: usize,
    /// `so1` edges the weakening removed.
    pub dropped_edges: usize,
    /// Distinct conflicting cross-processor event pairs examined.
    pub candidate_pairs: u64,
    /// Candidates unordered by the predictive order (predicted races,
    /// at event granularity).
    pub predicted_pairs: u64,
}

/// A deterministic predictive race report for one trace.
///
/// `keys` is the predicted set; `observed` the subset already flagged
/// by the hb1 analysis of the same trace. Because the predictive order
/// is a subset of hb1, `observed ⊆ keys` always holds (asserted at
/// construction); `predicted_only` names the yield the weakening added.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictReport {
    /// Name of the analyzed program or trace.
    pub program: String,
    /// The predictive order used.
    pub order: PredictOrder,
    /// The `so1` pairing policy used.
    pub pairing: PairingPolicy,
    /// Analysis counters.
    pub stats: PredictStats,
    /// Every predicted data-race identity (observed ∪ predicted-only).
    pub keys: BTreeSet<RaceKey>,
    /// The identities hb1 already reports on this trace.
    pub observed: BTreeSet<RaceKey>,
}

impl PredictReport {
    /// `true` iff nothing was predicted — no schedule of the recorded
    /// sync skeleton races.
    pub fn is_race_free(&self) -> bool {
        self.keys.is_empty()
    }

    /// `true` iff `key` is in the predicted set.
    pub fn covers(&self, key: &RaceKey) -> bool {
        self.keys.contains(key)
    }

    /// The identities predicted but not observed in this trace — the
    /// detection power the weakened order added over hb1.
    pub fn predicted_only(&self) -> impl Iterator<Item = &RaceKey> {
        self.keys.difference(&self.observed)
    }

    /// Records `predict.*` metrics for this report.
    pub fn record_into(&self, metrics: &Metrics) {
        metrics.incr(metric_keys::PREDICT_TRACES);
        metrics.add(metric_keys::PREDICT_KEYS, self.keys.len() as u64);
        metrics.add(metric_keys::PREDICT_OBSERVED_KEYS, self.observed.len() as u64);
        metrics.add(metric_keys::PREDICT_ONLY_KEYS, self.predicted_only().count() as u64);
        metrics.add(metric_keys::PREDICT_SECTIONS, self.stats.sections as u64);
        metrics.add(metric_keys::PREDICT_DROPPED_EDGES, self.stats.dropped_edges as u64);
        if self.is_race_free() {
            metrics.incr(metric_keys::PREDICT_RACE_FREE);
        }
    }

    /// Renders the report as human-readable text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "predictive race report for '{}' (order {}, pairing {})",
            self.program, self.order, self.pairing
        );
        let _ = writeln!(
            out,
            "  events: {}, critical sections: {}, so1 edges: {} kept / {} dropped",
            self.stats.events, self.stats.sections, self.stats.kept_edges, self.stats.dropped_edges
        );
        let _ = writeln!(
            out,
            "  candidates: {}, predicted pairs: {}",
            self.stats.candidate_pairs, self.stats.predicted_pairs
        );
        let _ = writeln!(out, "  predicted keys: {}", self.keys.len());
        for key in &self.keys {
            let mark = if self.observed.contains(key) { "observed" } else { "predicted-only" };
            let _ = writeln!(
                out,
                "    {}: {} x {} [{}]",
                key.loc,
                side_str(&key.a),
                side_str(&key.b),
                mark
            );
        }
        let verdict =
            if self.is_race_free() { "predictively race-free" } else { "RACES PREDICTED" };
        let _ = writeln!(out, "  verdict: {verdict}");
        out
    }
}

fn side_str(side: &SideKey) -> String {
    let class = if side.sync { "sync" } else { "data" };
    format!("{} {} {}", side.proc, side.kind, class)
}

/// Enumerates the races of `trace` under an already-built predictive
/// order — the same per-location candidate loop as
/// [`wmrd_core::detect_races`], with concurrency answered by the
/// weakened order instead of hb1.
pub fn predicted_races(trace: &TraceSet, graph: &PredictGraph) -> (Vec<DataRace>, u64) {
    let mut writers: HashMap<Location, Vec<EventId>> = HashMap::new();
    let mut accessors: HashMap<Location, Vec<EventId>> = HashMap::new();
    for event in trace.events() {
        let w = event.write_set();
        let r = event.read_set();
        for loc in &w {
            writers.entry(loc).or_default().push(event.id);
            accessors.entry(loc).or_default().push(event.id);
        }
        for loc in &r {
            if !w.contains(loc) {
                accessors.entry(loc).or_default().push(event.id);
            }
        }
    }
    let mut seen: HashSet<(EventId, EventId)> = HashSet::new();
    let mut candidates = 0u64;
    let mut races = Vec::new();
    for (loc, ws) in &writers {
        let Some(accs) = accessors.get(loc) else { continue };
        for &w in ws {
            for &x in accs {
                if w == x || w.proc == x.proc {
                    continue;
                }
                let (a, b) = if w < x { (w, x) } else { (x, w) };
                if !seen.insert((a, b)) {
                    continue;
                }
                candidates += 1;
                if !graph.concurrent(a, b) {
                    continue;
                }
                let (ea, eb) = match (trace.event(a), trace.event(b)) {
                    (Some(ea), Some(eb)) => (ea, eb),
                    _ => continue,
                };
                let locations = ea.conflict_locations(eb);
                let kind = match (ea.is_sync(), eb.is_sync()) {
                    (false, false) => RaceKind::DataData,
                    (true, true) => RaceKind::SyncSync,
                    _ => RaceKind::DataSync,
                };
                races.push(DataRace { a, b, locations, kind });
            }
        }
    }
    races.sort_by_key(|r| (r.a, r.b));
    (races, candidates)
}

/// Runs the full predictive analysis of one trace.
///
/// # Errors
///
/// Propagates trace-validation and pairing failures from the order
/// builders ([`PredictGraph::build`] / [`HbGraph::build`]).
pub fn predict(
    trace: &TraceSet,
    program: &str,
    policy: PairingPolicy,
    order: PredictOrder,
) -> Result<PredictReport, wmrd_core::AnalysisError> {
    let graph = PredictGraph::build(trace, policy, order)?;
    let (races, candidates) = predicted_races(trace, &graph);
    let keys = event_race_keys(&races, trace);

    let hb = HbGraph::build(trace, policy)?;
    let observed = event_race_keys(&wmrd_core::detect_races(trace, &hb), trace);
    debug_assert!(
        observed.is_subset(&keys),
        "the predictive order must weaken hb1, never strengthen it"
    );

    let stats = PredictStats {
        events: graph.num_events(),
        sections: graph.sections().len(),
        kept_edges: graph.kept_edges().len(),
        dropped_edges: graph.dropped_edges().len(),
        candidate_pairs: candidates,
        predicted_pairs: races.len() as u64,
    };
    Ok(PredictReport {
        program: program.to_string(),
        order,
        pairing: policy,
        stats,
        keys,
        observed,
    })
}

/// [`predict`], timed under the `predict.analysis` phase with
/// `predict.*` counters recorded into `metrics`.
///
/// # Errors
///
/// Same as [`predict`].
pub fn predict_with_metrics(
    trace: &TraceSet,
    program: &str,
    policy: PairingPolicy,
    order: PredictOrder,
    metrics: &Metrics,
) -> Result<PredictReport, wmrd_core::AnalysisError> {
    let report =
        metrics.time(metric_keys::PREDICT_ANALYSIS, || predict(trace, program, policy, order))?;
    report.record_into(metrics);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmrd_trace::{AccessKind, ProcId, SyncRole, TraceBuilder, TraceSink, Value};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    /// Two same-lock critical sections with non-conflicting bodies, each
    /// also touching a shared location OUTSIDE any section ordering:
    /// P0 {acq; write x; rel}; P1 {acq; write y; rel}; then P1 reads x
    /// inside its section. The only ordering of P0's write x before
    /// P1's read x runs through the dropped edge — a predicted race.
    fn predictable_trace() -> TraceSet {
        let mut b = TraceBuilder::new(2);
        let s = l(9);
        b.sync_access(p(0), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        let rel = b.sync_access(p(0), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel));
        b.data_access(p(1), l(1), AccessKind::Write, Value::new(1), None);
        b.sync_access(p(1), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.finish()
    }

    #[test]
    fn shb_predicts_exactly_the_observed_races() {
        let t = predictable_trace();
        let r = predict(&t, "t", PairingPolicy::ByRole, PredictOrder::Shb).unwrap();
        assert_eq!(r.keys, r.observed, "SHB is the hb1 baseline");
        assert_eq!(r.predicted_only().count(), 0);
        assert_eq!(r.stats.dropped_edges, 0);
    }

    #[test]
    fn wcp_predicts_nothing_for_truly_disjoint_sections() {
        // Disjoint bodies that never touch a common location: dropping
        // the edge exposes no conflicting pair.
        let t = predictable_trace();
        let r = predict(&t, "t", PairingPolicy::ByRole, PredictOrder::Wcp).unwrap();
        assert_eq!(r.stats.dropped_edges, 1);
        assert!(r.is_race_free(), "{}", r.render());
    }

    /// The motivating case: a conflicting access pair whose only hb1
    /// ordering runs through two non-conflicting critical sections.
    #[test]
    fn wcp_predicts_a_race_hb1_misses() {
        let mut b = TraceBuilder::new(2);
        let s = l(9);
        // P0: write x OUTSIDE the section, then {acq; write a; rel}.
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.sync_access(p(0), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        b.data_access(p(0), l(5), AccessKind::Write, Value::new(1), None);
        let rel = b.sync_access(p(0), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        // P1: {acq; write b; rel}, then read x.
        b.sync_access(p(1), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel));
        b.data_access(p(1), l(6), AccessKind::Write, Value::new(1), None);
        b.sync_access(p(1), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::new(1), None);
        let t = b.finish();

        let shb = predict(&t, "t", PairingPolicy::ByRole, PredictOrder::Shb).unwrap();
        assert!(shb.is_race_free(), "hb1 sees the accidental ordering:\n{}", shb.render());

        let wcp = predict(&t, "t", PairingPolicy::ByRole, PredictOrder::Wcp).unwrap();
        assert_eq!(wcp.stats.dropped_edges, 1);
        assert_eq!(wcp.keys.len(), 1, "{}", wcp.render());
        assert_eq!(wcp.predicted_only().count(), 1);
        let key = wcp.keys.iter().next().unwrap();
        assert_eq!(key.loc, l(0));
        assert!(wcp.covers(key));
        assert!(!wcp.is_race_free());
    }

    #[test]
    fn report_renders_provenance_marks() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(3), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(3), AccessKind::Read, Value::ZERO, None);
        let t = b.finish();
        let r = predict(&t, "demo", PairingPolicy::ByRole, PredictOrder::Wcp).unwrap();
        let text = r.render();
        assert!(text.contains("predictive race report for 'demo'"), "{text}");
        assert!(text.contains("[observed]"), "{text}");
        assert!(text.contains("RACES PREDICTED"), "{text}");
        assert_eq!(r.observed, r.keys);
    }

    #[test]
    fn json_roundtrip() {
        let t = predictable_trace();
        let r = predict(&t, "t", PairingPolicy::ByRole, PredictOrder::Wcp).unwrap();
        let j = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<PredictReport>(&j).unwrap(), r);
    }

    #[test]
    fn metrics_recording() {
        let metrics = Metrics::enabled();
        let t = predictable_trace();
        predict_with_metrics(&t, "t", PairingPolicy::ByRole, PredictOrder::Wcp, &metrics).unwrap();
        assert_eq!(metrics.counter(metric_keys::PREDICT_TRACES), Some(1));
        assert_eq!(metrics.counter(metric_keys::PREDICT_RACE_FREE), Some(1));
        assert_eq!(metrics.counter(metric_keys::PREDICT_DROPPED_EDGES), Some(1));
    }

    #[test]
    fn analysis_is_deterministic() {
        let t = predictable_trace();
        let a = predict(&t, "t", PairingPolicy::ByRole, PredictOrder::Wcp).unwrap();
        let b = predict(&t, "t", PairingPolicy::ByRole, PredictOrder::Wcp).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
    }
}
