//! Critical-section recovery from the recorded synchronization skeleton.
//!
//! The WCP-style order (see [`crate::order`]) weakens hb1 by keeping a
//! release → acquire edge only when the two critical sections it joins
//! contain conflicting accesses. That requires knowing, per processor
//! and per lock location, which events lie *inside* a critical section —
//! information that is fully recoverable from a trace: an acquiring sync
//! read of `s` opens a section on `(proc, s)`, the next releasing sync
//! write to `s` by the same processor closes it, and every *data* event
//! between the two contributes its READ/WRITE sets (sync accesses can
//! never be a race's conflicting pair, so they are excluded).

use std::collections::HashMap;

use wmrd_trace::{AccessKind, Event, EventId, LocSet, Location, ProcId, TraceSet};

/// One recovered critical section: the span of a processor's event
/// sequence between an acquiring read of a lock location and the
/// matching releasing write, with the accesses performed inside.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalSection {
    /// The processor that held the section.
    pub proc: ProcId,
    /// The lock location (the synchronization variable acquired).
    pub lock: Location,
    /// The acquiring sync read that opened the section.
    pub acquire: EventId,
    /// The releasing sync write that closed it; `None` if the processor
    /// never released (the section extends to the end of the trace).
    pub release: Option<EventId>,
    /// Locations read by *data* events strictly inside the section
    /// (sync accesses, including the lock word's own, are excluded).
    pub reads: LocSet,
    /// Locations written by data events strictly inside the section.
    pub writes: LocSet,
}

impl CriticalSection {
    /// `true` iff the accesses inside `self` conflict with the accesses
    /// inside `other`: some location is written by one section and
    /// accessed by the other.
    pub fn conflicts_with(&self, other: &CriticalSection) -> bool {
        self.writes.intersects(&other.reads)
            || self.writes.intersects(&other.writes)
            || other.writes.intersects(&self.reads)
    }
}

fn is_acquire_read(event: &Event) -> Option<Location> {
    let s = event.as_sync()?;
    (s.kind == AccessKind::Read && s.role.is_acquire()).then_some(s.loc)
}

fn is_release_write(event: &Event) -> Option<Location> {
    let s = event.as_sync()?;
    (s.kind == AccessKind::Write && s.role.is_release()).then_some(s.loc)
}

/// Recovers every critical section of a trace, in deterministic order
/// (processors ascending, then opening position).
///
/// Sections may nest (different locks) and re-enter (the same lock
/// acquired again later); a releasing write closes the *innermost* open
/// section on its location. A releasing write with no open section on
/// its location — a bare handoff release like the paper's Figure 1b —
/// opens nothing and closes nothing: the order layer treats its edges
/// as unconditional.
///
/// An acquiring read on a lock that already has an open, unreleased
/// section on the same processor is a spin *retry* (a `Test&Set` that
/// found the lock held and looped): it restarts that section rather
/// than opening a second one, so the section's span begins at the final
/// attempt — the one that actually took the lock. Without this, every
/// failed spin attempt would leave a phantom section open to the end of
/// the trace, polluting its footprint with everything the processor
/// does afterwards.
pub fn critical_sections(trace: &TraceSet) -> Vec<CriticalSection> {
    let mut out: Vec<CriticalSection> = Vec::new();
    for proc_trace in trace.processors() {
        // Indexes into `out` of this processor's still-open sections, in
        // opening order; `by_lock` tracks the innermost open section per
        // lock location.
        let mut open: Vec<usize> = Vec::new();
        let mut by_lock: HashMap<Location, Vec<usize>> = HashMap::new();
        for event in proc_trace.events() {
            if let Some(lock) = is_release_write(event) {
                // Close the innermost open section on this lock before
                // accumulating, so a section never contains its own
                // release; outer sections (and a bare release's
                // enclosing sections) still see the lock-word write.
                if let Some(idx) = by_lock.get_mut(&lock).and_then(Vec::pop) {
                    out[idx].release = Some(event.id);
                    open.retain(|&i| i != idx);
                }
            }
            // Only *data* accesses contribute to a section's footprint:
            // race candidates are data/data pairs, so synchronization
            // accesses inside the span (a `Test&Set`'s write of the lock
            // word, a nested lock's acquire/release) can never be the
            // conflicting pair the WCP rule is probing for.
            if !open.is_empty() && event.as_sync().is_none() {
                let reads = event.read_set();
                let writes = event.write_set();
                for &idx in &open {
                    let section: &mut CriticalSection = &mut out[idx];
                    section.reads.union_with(&reads);
                    section.writes.union_with(&writes);
                }
            }
            if let Some(lock) = is_acquire_read(event) {
                if let Some(&idx) = by_lock.get(&lock).and_then(|stack| stack.last()) {
                    // Spin retry: restart the still-open section at this
                    // attempt instead of stacking a phantom one.
                    let section = &mut out[idx];
                    section.acquire = event.id;
                    section.reads = LocSet::new();
                    section.writes = LocSet::new();
                } else {
                    let idx = out.len();
                    out.push(CriticalSection {
                        proc: event.id.proc,
                        lock,
                        acquire: event.id,
                        release: None,
                        reads: LocSet::new(),
                        writes: LocSet::new(),
                    });
                    open.push(idx);
                    by_lock.entry(lock).or_default().push(idx);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmrd_trace::{SyncRole, TraceBuilder, TraceSink, Value};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    /// P0: acquire(s), write x, release(s).
    #[test]
    fn recovers_a_simple_section() {
        let mut b = TraceBuilder::new(1);
        let s = l(9);
        b.sync_access(p(0), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.sync_access(p(0), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        let cs = critical_sections(&b.finish());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].lock, s);
        assert_eq!(cs[0].acquire, EventId::new(p(0), 0));
        assert_eq!(cs[0].release, Some(EventId::new(p(0), 2)));
        assert!(cs[0].writes.contains(l(0)));
        assert!(cs[0].reads.is_empty());
        assert!(!cs[0].writes.contains(s), "the lock word itself is excluded");
    }

    /// A bare release (no enclosing acquire) produces no section.
    #[test]
    fn bare_release_opens_nothing() {
        let mut b = TraceBuilder::new(1);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        assert!(critical_sections(&b.finish()).is_empty());
    }

    /// An acquire never released still collects the tail of the trace.
    #[test]
    fn unreleased_section_extends_to_the_end() {
        let mut b = TraceBuilder::new(1);
        b.sync_access(p(0), l(9), AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        b.data_access(p(0), l(3), AccessKind::Read, Value::ZERO, None);
        let cs = critical_sections(&b.finish());
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].release, None);
        assert!(cs[0].reads.contains(l(3)));
    }

    /// Nested sections on different locks each collect the inner access.
    #[test]
    fn nested_sections_both_collect() {
        let mut b = TraceBuilder::new(1);
        let (s1, s2) = (l(8), l(9));
        b.sync_access(p(0), s1, AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        b.sync_access(p(0), s2, AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.sync_access(p(0), s2, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(0), s1, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        let cs = critical_sections(&b.finish());
        assert_eq!(cs.len(), 2);
        assert!(cs.iter().all(|c| c.writes.contains(l(0))), "{cs:?}");
        assert!(cs.iter().all(|c| c.release.is_some()));
    }

    /// Re-entering the same lock yields two disjoint sections.
    #[test]
    fn reentry_yields_two_sections() {
        let mut b = TraceBuilder::new(1);
        let s = l(9);
        b.sync_access(p(0), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.sync_access(p(0), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(0), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        b.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        b.sync_access(p(0), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        let cs = critical_sections(&b.finish());
        assert_eq!(cs.len(), 2);
        assert!(cs[0].writes.contains(l(0)) && !cs[0].writes.contains(l(1)));
        assert!(cs[1].writes.contains(l(1)) && !cs[1].writes.contains(l(0)));
    }

    /// Failed `Test&Set` spin attempts restart the pending section
    /// rather than stacking phantoms: only the winning attempt opens
    /// the section, and its body excludes pre-acquisition accesses.
    #[test]
    fn spin_retries_restart_the_section() {
        let mut b = TraceBuilder::new(1);
        let s = l(9);
        // Two failed attempts (lock observed held), then the winner.
        b.sync_access(p(0), s, AccessKind::Read, SyncRole::Acquire, Value::new(1), None);
        b.sync_access(p(0), s, AccessKind::Read, SyncRole::Acquire, Value::new(1), None);
        b.sync_access(p(0), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.sync_access(p(0), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.data_access(p(0), l(1), AccessKind::Read, Value::ZERO, None);
        let cs = critical_sections(&b.finish());
        assert_eq!(cs.len(), 1, "{cs:?}");
        assert_eq!(cs[0].acquire, EventId::new(p(0), 2), "section starts at the winning attempt");
        assert_eq!(cs[0].release, Some(EventId::new(p(0), 4)));
        assert!(cs[0].writes.contains(l(0)));
        assert!(!cs[0].reads.contains(l(1)), "post-release accesses stay outside");
    }

    #[test]
    fn conflict_predicate() {
        let mk = |reads: &[u32], writes: &[u32]| CriticalSection {
            proc: p(0),
            lock: l(9),
            acquire: EventId::new(p(0), 0),
            release: None,
            reads: reads.iter().map(|&a| l(a)).collect(),
            writes: writes.iter().map(|&a| l(a)).collect(),
        };
        assert!(mk(&[], &[1]).conflicts_with(&mk(&[1], &[])), "write-read");
        assert!(mk(&[1], &[]).conflicts_with(&mk(&[], &[1])), "read-write");
        assert!(mk(&[], &[1]).conflicts_with(&mk(&[], &[1])), "write-write");
        assert!(!mk(&[1], &[]).conflicts_with(&mk(&[1], &[])), "read-read is no conflict");
        assert!(!mk(&[], &[1]).conflicts_with(&mk(&[2], &[3])), "disjoint");
    }
}
