//! The predictive partial orders: SHB and the WCP-style weakening.
//!
//! Both orders are built exactly like the dynamic side's
//! [`HbGraph`](wmrd_core::HbGraph) — one node per event, `po` edges
//! between consecutive events of a processor, release → acquire edges
//! from the recorded `so1` pairing, transitive closure answered through
//! a [`Reachability`] index — but differ in *which* `so1` edges they
//! admit:
//!
//! * [`PredictOrder::Shb`] keeps every `so1` edge. The order equals hb1,
//!   so the "predicted" races are exactly the observed ones — the sound
//!   baseline (the SHB paper's insight is that hb over the *recorded*
//!   trace is already predictive for the first race).
//! * [`PredictOrder::Wcp`] keeps a release → acquire edge only when the
//!   two critical sections it joins contain conflicting accesses
//!   (WCP's core weakening: non-conflicting critical sections on the
//!   same lock commute, so the order between them is a scheduling
//!   accident, not a program constraint). The rule is applied
//!   *chain-wide*, not just to adjacent handoffs: a release is ordered
//!   before every hb1-later conflicting section on its lock, even when
//!   the lock passed through commuting sections in between. Edges whose
//!   release or acquire is not part of a recovered critical section —
//!   bare handoffs such as the paper's Figure 1b `Unset` — are kept
//!   unconditionally: without lock discipline there is no commuting
//!   argument, and dropping them would be unsound for flag
//!   synchronization.
//!
//! Fewer edges mean fewer ordered pairs, so the WCP-style order finds a
//! superset of the hb1 races: conflicting accesses whose only ordering
//! ran through a dropped edge become *predicted* races, reachable in
//! some other schedule of the same program.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use wmrd_core::{so1_edges, AnalysisError, DiGraph, PairingPolicy, Reachability, So1Edge};
use wmrd_trace::{EventId, TraceSet};

use crate::sections::{critical_sections, CriticalSection};

/// Which predictive partial order to build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum PredictOrder {
    /// SHB-style: `po ∪ so1`, the hb1 baseline (predicted = observed).
    Shb,
    /// WCP-style: release → acquire edges only between critical
    /// sections with conflicting accesses.
    #[default]
    Wcp,
}

impl PredictOrder {
    /// Parses the CLI spelling (`shb` / `wcp`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "shb" => Some(PredictOrder::Shb),
            "wcp" => Some(PredictOrder::Wcp),
            _ => None,
        }
    }
}

impl fmt::Display for PredictOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PredictOrder::Shb => "shb",
            PredictOrder::Wcp => "wcp",
        })
    }
}

/// The predictive order of one traced execution: `(po ∪ kept-so1)+`.
#[derive(Debug)]
pub struct PredictGraph {
    nodes: Vec<EventId>,
    index: HashMap<EventId, u32>,
    reach: Reachability,
    order: PredictOrder,
    sections: Vec<CriticalSection>,
    kept: Vec<So1Edge>,
    dropped: Vec<So1Edge>,
}

impl PredictGraph {
    /// Builds the predictive order of `trace` under a pairing policy.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Trace`] for invalid traces and
    /// [`AnalysisError::DanglingRelease`] for unresolvable pairings —
    /// the same failure modes as [`wmrd_core::HbGraph::build`].
    pub fn build(
        trace: &TraceSet,
        policy: PairingPolicy,
        order: PredictOrder,
    ) -> Result<Self, AnalysisError> {
        trace.validate()?;
        let mut nodes = Vec::with_capacity(trace.num_events());
        let mut index = HashMap::with_capacity(trace.num_events());
        for proc_trace in trace.processors() {
            for event in proc_trace.events() {
                index.insert(event.id, nodes.len() as u32);
                nodes.push(event.id);
            }
        }
        let mut graph = DiGraph::new(nodes.len());
        for proc_trace in trace.processors() {
            for pair in proc_trace.events().windows(2) {
                graph.add_edge(index[&pair[0].id], index[&pair[1].id]);
            }
        }

        let sections = match order {
            PredictOrder::Shb => Vec::new(),
            PredictOrder::Wcp => critical_sections(trace),
        };
        // The section (if any) releasing / acquiring at a given event.
        let mut by_release: HashMap<EventId, usize> = HashMap::new();
        let mut by_acquire: HashMap<EventId, usize> = HashMap::new();
        for (i, section) in sections.iter().enumerate() {
            by_acquire.insert(section.acquire, i);
            if let Some(release) = section.release {
                by_release.insert(release, i);
            }
        }

        let so1 = so1_edges(trace, policy)?;

        // Under the weakening we also need the *full* hb1 order, to
        // place same-lock critical sections relative to each other: a
        // release must stay ordered before every later conflicting
        // section on its lock even when the lock passed through
        // non-conflicting sections in between (dropping the adjacent
        // edges alone would disorder the conflicting pair — unsound).
        let hb1 = if sections.is_empty() {
            None
        } else {
            let mut full = graph.clone();
            for edge in &so1 {
                full.add_edge(index[&edge.release], index[&edge.acquire]);
            }
            Some(Reachability::compute(&full))
        };

        let mut kept = Vec::new();
        let mut dropped = Vec::new();
        for edge in so1 {
            let keep = match order {
                PredictOrder::Shb => true,
                PredictOrder::Wcp => {
                    match (by_release.get(&edge.release), by_acquire.get(&edge.acquire)) {
                        // Lock-discipline pair: both endpoints delimit
                        // recovered critical sections on this lock. The
                        // edge is a program constraint only if their
                        // bodies conflict.
                        (Some(&src), Some(&dst)) => sections[src].conflicts_with(&sections[dst]),
                        // Bare release and/or bare acquire: a flag
                        // handoff, kept unconditionally.
                        _ => true,
                    }
                }
            };
            if keep {
                graph.add_edge(index[&edge.release], index[&edge.acquire]);
                kept.push(edge);
            } else {
                dropped.push(edge);
            }
        }

        // WCP's release rule, chain-wide: for every hb1-ordered pair of
        // same-lock sections with conflicting bodies, order the earlier
        // release before the later acquire. Adjacent pairs were already
        // handled by the kept edges above; this pass restores the
        // orderings that run through intermediate commuting sections.
        if let Some(hb1) = &hb1 {
            for (i, s1) in sections.iter().enumerate() {
                let Some(r1) = s1.release else { continue };
                for (j, s2) in sections.iter().enumerate() {
                    if i == j || s1.lock != s2.lock || !s1.conflicts_with(s2) {
                        continue;
                    }
                    if hb1.query(index[&r1], index[&s2.acquire]) {
                        graph.add_edge(index[&r1], index[&s2.acquire]);
                    }
                }
            }
        }
        let reach = Reachability::compute(&graph);
        Ok(PredictGraph { nodes, index, reach, order, sections, kept, dropped })
    }

    /// The order this graph was built under.
    pub fn order(&self) -> PredictOrder {
        self.order
    }

    /// Number of events (nodes).
    pub fn num_events(&self) -> usize {
        self.nodes.len()
    }

    /// The recovered critical sections (empty under [`PredictOrder::Shb`]).
    pub fn sections(&self) -> &[CriticalSection] {
        &self.sections
    }

    /// The `so1` edges admitted into the order.
    pub fn kept_edges(&self) -> &[So1Edge] {
        &self.kept
    }

    /// The `so1` edges the weakening removed.
    pub fn dropped_edges(&self) -> &[So1Edge] {
        &self.dropped
    }

    /// `true` iff `a` precedes `b` in the predictive order.
    pub fn ordered(&self, a: EventId, b: EventId) -> bool {
        match (self.index.get(&a), self.index.get(&b)) {
            (Some(&na), Some(&nb)) => self.reach.query(na, nb),
            _ => false,
        }
    }

    /// `true` iff neither event precedes the other — the "unordered"
    /// half of the race definition, under the *predictive* order.
    pub fn concurrent(&self, a: EventId, b: EventId) -> bool {
        !self.ordered(a, b) && !self.ordered(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmrd_trace::{AccessKind, Location, ProcId, SyncRole, TraceBuilder, TraceSink, Value};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    fn e(proc: u16, index: u32) -> EventId {
        EventId::new(p(proc), index)
    }

    /// Two critical sections on the same lock touching disjoint data:
    /// P0 {acq s; write x; rel s}, P1 {acq s (observing P0's release);
    /// write y; rel s}.
    fn disjoint_sections_trace() -> TraceSet {
        let mut b = TraceBuilder::new(2);
        let s = l(9);
        b.sync_access(p(0), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        let rel = b.sync_access(p(0), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel));
        b.data_access(p(1), l(1), AccessKind::Write, Value::new(1), None);
        b.sync_access(p(1), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.finish()
    }

    /// Same shape but both sections write x — conflicting bodies.
    fn conflicting_sections_trace() -> TraceSet {
        let mut b = TraceBuilder::new(2);
        let s = l(9);
        b.sync_access(p(0), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        let rel = b.sync_access(p(0), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel));
        b.data_access(p(1), l(0), AccessKind::Write, Value::new(2), None);
        b.sync_access(p(1), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.finish()
    }

    /// Figure 1b: a bare handoff release with no enclosing section.
    fn fig1b_trace() -> TraceSet {
        let mut b = TraceBuilder::new(2);
        let (x, y, s) = (l(0), l(1), l(9));
        b.data_access(p(0), x, AccessKind::Write, Value::new(1), None);
        b.data_access(p(0), y, AccessKind::Write, Value::new(1), None);
        let rel = b.sync_access(p(0), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel));
        b.sync_access(p(1), s, AccessKind::Write, SyncRole::None, Value::new(1), None);
        b.data_access(p(1), y, AccessKind::Read, Value::new(1), None);
        b.data_access(p(1), x, AccessKind::Read, Value::new(1), None);
        b.finish()
    }

    #[test]
    fn order_parsing_and_display() {
        assert_eq!(PredictOrder::parse("shb"), Some(PredictOrder::Shb));
        assert_eq!(PredictOrder::parse("WCP"), Some(PredictOrder::Wcp));
        assert_eq!(PredictOrder::parse("hb2"), None);
        assert_eq!(PredictOrder::Shb.to_string(), "shb");
        assert_eq!(PredictOrder::Wcp.to_string(), "wcp");
        assert_eq!(PredictOrder::default(), PredictOrder::Wcp);
    }

    #[test]
    fn shb_keeps_every_edge() {
        let t = disjoint_sections_trace();
        let g = PredictGraph::build(&t, PairingPolicy::ByRole, PredictOrder::Shb).unwrap();
        assert_eq!(g.kept_edges().len(), 1);
        assert!(g.dropped_edges().is_empty());
        assert!(g.sections().is_empty(), "SHB skips section recovery");
        // The cross-processor data events are ordered through the lock.
        assert!(g.ordered(e(0, 1), e(1, 1)));
    }

    #[test]
    fn wcp_drops_the_edge_between_disjoint_sections() {
        let t = disjoint_sections_trace();
        let g = PredictGraph::build(&t, PairingPolicy::ByRole, PredictOrder::Wcp).unwrap();
        assert_eq!(g.sections().len(), 2);
        assert!(g.kept_edges().is_empty(), "non-conflicting sections commute");
        assert_eq!(g.dropped_edges().len(), 1);
        assert!(g.concurrent(e(0, 1), e(1, 1)), "bodies become unordered");
    }

    #[test]
    fn wcp_keeps_the_edge_between_conflicting_sections() {
        let t = conflicting_sections_trace();
        let g = PredictGraph::build(&t, PairingPolicy::ByRole, PredictOrder::Wcp).unwrap();
        assert_eq!(g.kept_edges().len(), 1);
        assert!(g.dropped_edges().is_empty());
        assert!(g.ordered(e(0, 1), e(1, 1)), "conflicting bodies stay ordered");
    }

    /// Three sections chained through the same lock: P0 {write x},
    /// P1 {write y}, P2 {write x}. Both adjacent handoffs join
    /// commuting sections (x/y, y/x disjoint) and are dropped, but the
    /// outer pair conflicts on x — the chain-wide release rule must
    /// keep P0's body ordered before P2's.
    #[test]
    fn wcp_orders_conflicting_sections_across_a_commuting_chain() {
        let mut b = TraceBuilder::new(3);
        let s = l(9);
        b.sync_access(p(0), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        let r0 = b.sync_access(p(0), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(r0));
        b.data_access(p(1), l(1), AccessKind::Write, Value::new(1), None);
        let r1 = b.sync_access(p(1), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(2), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(r1));
        b.data_access(p(2), l(0), AccessKind::Write, Value::new(2), None);
        b.sync_access(p(2), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        let t = b.finish();
        let g = PredictGraph::build(&t, PairingPolicy::ByRole, PredictOrder::Wcp).unwrap();
        assert_eq!(g.sections().len(), 3);
        assert!(g.kept_edges().is_empty(), "both adjacent handoffs commute");
        assert_eq!(g.dropped_edges().len(), 2);
        assert!(g.ordered(e(0, 1), e(2, 1)), "outer conflicting bodies stay ordered");
        assert!(g.concurrent(e(0, 1), e(1, 1)), "inner commuting bodies do not");
        assert!(g.concurrent(e(1, 1), e(2, 1)));
    }

    #[test]
    fn wcp_keeps_bare_handoff_edges() {
        let t = fig1b_trace();
        let g = PredictGraph::build(&t, PairingPolicy::ByRole, PredictOrder::Wcp).unwrap();
        // P1's Test&Set acquire opens an (unreleased) section, but P0's
        // bare release delimits none — the edge survives unconditionally.
        assert_eq!(g.sections().len(), 1);
        assert_eq!(g.sections()[0].release, None);
        assert_eq!(g.kept_edges().len(), 1, "the flag handoff is not weakened");
        assert!(g.ordered(e(0, 0), e(1, 2)), "fig1b stays race-free under WCP");
    }

    #[test]
    fn unknown_events_are_unordered() {
        let t = fig1b_trace();
        let g = PredictGraph::build(&t, PairingPolicy::ByRole, PredictOrder::Wcp).unwrap();
        assert!(!g.ordered(e(7, 0), e(0, 0)));
        assert!(g.num_events() > 0);
        assert_eq!(g.order(), PredictOrder::Wcp);
    }
}
