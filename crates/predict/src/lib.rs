//! Sound predictive race detection from a single trace.
//!
//! The dynamic pipeline in this workspace (the paper's hb1/so1
//! analysis) reports the races of the *one* schedule that actually ran;
//! `wmrd explore` recovers the rest by brute-force re-execution across
//! seeds, multiplying cost linearly with schedule count. The predictive
//! literature — WCP ("Dynamic Race Prediction in Linear Time") and SHB
//! ("What Happens-After the First Race?") — shows that many of those
//! unobserved races are derivable from a single trace: build a partial
//! order *weaker* than happens-before but still sound, and every
//! conflicting pair it leaves unordered races in *some* schedule of the
//! same program.
//!
//! This crate implements two such orders over the recorded trace
//! (see [`PredictOrder`]):
//!
//! * **SHB-style** — `(po ∪ so1)+`, the hb1 baseline: predicted races
//!   are exactly the observed ones.
//! * **WCP-style** — release → acquire edges are admitted only between
//!   critical sections (recovered from the sync skeleton by
//!   [`critical_sections`]) whose bodies contain conflicting accesses.
//!   Non-conflicting same-lock sections commute, so the order between
//!   them is a scheduling accident; dropping the edge exposes the races
//!   of the schedules where they ran the other way around. Bare
//!   releases with no enclosing section — flag handoffs like the
//!   paper's Figure 1b — keep their edges unconditionally.
//!
//! Predicted races are keyed by the same execution-independent
//! [`RaceKey`](wmrd_core::RaceKey) identities the dynamic, streaming
//! and static engines emit, so the `explore` campaign engine can serve
//! as a ground-truth oracle: every predicted key must be reachable by
//! some seed (the soundness gate in `tests/predict.rs`), and
//! predicted ∪ observed must dominate single-seed hb1 yield
//! (EXPERIMENTS.md E15). The analysis is deterministic — same trace,
//! same report, byte for byte — and single-pass: one graph build plus
//! one candidate sweep per trace.
//!
//! # Example
//!
//! ```
//! use wmrd_core::PairingPolicy;
//! use wmrd_predict::{predict, PredictOrder};
//! use wmrd_trace::{AccessKind, Location, ProcId, SyncRole, TraceBuilder, TraceSink, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // P0 writes x, then takes a lock touching only `a`; P1 takes the
//! // same lock touching only `b`, then reads x. hb1 orders the two
//! // x-accesses through the lock; WCP sees the sections commute.
//! let mut b = TraceBuilder::new(2);
//! let (x, s) = (Location::new(0), Location::new(9));
//! let p = ProcId::new;
//! b.data_access(p(0), x, AccessKind::Write, Value::new(1), None);
//! b.sync_access(p(0), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
//! b.data_access(p(0), Location::new(5), AccessKind::Write, Value::new(1), None);
//! let rel = b.sync_access(p(0), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
//! b.sync_access(p(1), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel));
//! b.data_access(p(1), Location::new(6), AccessKind::Write, Value::new(1), None);
//! b.sync_access(p(1), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
//! b.data_access(p(1), x, AccessKind::Read, Value::new(1), None);
//! let trace = b.finish();
//!
//! let report = predict(&trace, "demo", PairingPolicy::ByRole, PredictOrder::Wcp)?;
//! assert!(!report.is_race_free());
//! assert_eq!(report.predicted_only().count(), 1, "a race hb1 misses");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod order;
mod report;
mod sections;

pub use order::{PredictGraph, PredictOrder};
pub use report::{predict, predict_with_metrics, predicted_races, PredictReport, PredictStats};
pub use sections::{critical_sections, CriticalSection};
