//! Release/acquire pairing: the `so1` relation (Definitions 2.1–2.2).
//!
//! Two synchronization operations are *paired* when the first is a
//! release write, the second an acquire read of the same location, and
//! the read **returns the value written by** the release
//! (Definition 2.1(3)). Traces record exactly which synchronization write
//! each synchronization read observed, so pairing is a lookup, not a
//! heuristic.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use wmrd_trace::{AccessKind, EventId, Location, OpId, SyncRole, TraceSet};

use crate::AnalysisError;

/// Which synchronization operations may pair into `so1` edges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PairingPolicy {
    /// Pair only release writes with acquire reads (Definition 2.1; the
    /// semantics WO, RCsc and DRF1 analyses use). The write half of a
    /// `Test&Set` is *not* a release and creates no edge.
    #[default]
    ByRole,
    /// Pair every synchronization write with every synchronization read
    /// that returned its value — the DRF0 view, which "does not
    /// distinguish between acquire and release operations" (Section 2.2).
    AllSync,
}

impl fmt::Display for PairingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PairingPolicy::ByRole => "by-role",
            PairingPolicy::AllSync => "all-sync",
        })
    }
}

/// One `so1` edge: a release paired with an acquire that returned its
/// value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct So1Edge {
    /// The releasing (writing) synchronization event.
    pub release: EventId,
    /// The acquiring (reading) synchronization event.
    pub acquire: EventId,
    /// The synchronization location.
    pub loc: Location,
}

/// Computes the `so1` edges of a trace under a pairing policy.
///
/// # Errors
///
/// Returns [`AnalysisError::DanglingRelease`] if a synchronization read
/// claims to have observed a write that is not a recorded synchronization
/// write — a corrupt trace.
pub fn so1_edges(trace: &TraceSet, policy: PairingPolicy) -> Result<Vec<So1Edge>, AnalysisError> {
    // Index sync writes by operation id.
    let mut sync_writes: HashMap<OpId, (EventId, SyncRole, Location)> = HashMap::new();
    for event in trace.events() {
        if let Some(s) = event.as_sync() {
            if s.kind == AccessKind::Write {
                sync_writes.insert(s.op, (event.id, s.role, s.loc));
            }
        }
    }
    let mut edges = Vec::new();
    for event in trace.events() {
        let Some(s) = event.as_sync() else { continue };
        if s.kind != AccessKind::Read {
            continue;
        }
        let Some(rel_op) = s.observed_release else { continue };
        let &(rel_event, rel_role, rel_loc) = sync_writes
            .get(&rel_op)
            .ok_or(AnalysisError::DanglingRelease { reader: event.id, release: rel_op })?;
        if rel_loc != s.loc {
            return Err(AnalysisError::Internal(format!(
                "paired sync ops access different locations: {} vs {}",
                rel_loc, s.loc
            )));
        }
        let pairs = match policy {
            PairingPolicy::ByRole => rel_role.is_release() && s.role.is_acquire(),
            PairingPolicy::AllSync => true,
        };
        if pairs {
            edges.push(So1Edge { release: rel_event, acquire: event.id, loc: s.loc });
        }
    }
    Ok(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmrd_trace::{ProcId, TraceBuilder, TraceSink, Value};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    /// Builds the Unset / Test&Set pairing of the paper's Figure 1b:
    /// P0: Unset(s) (release);  P1: Test&Set(s) = acquire read observing
    /// the Unset, plus a plain sync write.
    fn unset_test_set_trace() -> TraceSet {
        let mut b = TraceBuilder::new(2);
        let s = l(9);
        let rel = b.sync_access(p(0), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel));
        b.sync_access(p(1), s, AccessKind::Write, SyncRole::None, Value::new(1), None);
        b.finish()
    }

    #[test]
    fn pairs_release_with_acquire() {
        let t = unset_test_set_trace();
        let edges = so1_edges(&t, PairingPolicy::ByRole).unwrap();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].release, EventId::new(p(0), 0));
        assert_eq!(edges[0].acquire, EventId::new(p(1), 0));
        assert_eq!(edges[0].loc, l(9));
    }

    #[test]
    fn test_set_write_is_not_a_release() {
        // A second Test&Set observing the first one's write pairs only
        // under AllSync, because the Test&Set write has no release role —
        // exactly the paper's example in Section 2.1.
        let mut b = TraceBuilder::new(2);
        let s = l(9);
        b.sync_access(p(0), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        let ts_write =
            b.sync_access(p(0), s, AccessKind::Write, SyncRole::None, Value::new(1), None);
        b.sync_access(p(1), s, AccessKind::Read, SyncRole::Acquire, Value::new(1), Some(ts_write));
        let t = b.finish();
        assert!(so1_edges(&t, PairingPolicy::ByRole).unwrap().is_empty());
        let all = so1_edges(&t, PairingPolicy::AllSync).unwrap();
        assert_eq!(all.len(), 1, "DRF0-style pairing accepts any sync write");
    }

    #[test]
    fn read_of_initial_value_pairs_nothing() {
        let mut b = TraceBuilder::new(1);
        b.sync_access(p(0), l(9), AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        let t = b.finish();
        assert!(so1_edges(&t, PairingPolicy::ByRole).unwrap().is_empty());
    }

    #[test]
    fn dangling_release_is_an_error() {
        let mut b = TraceBuilder::new(1);
        b.sync_access(
            p(0),
            l(9),
            AccessKind::Read,
            SyncRole::Acquire,
            Value::ZERO,
            Some(OpId::new(p(0), 99)),
        );
        let t = b.finish();
        assert!(matches!(
            so1_edges(&t, PairingPolicy::ByRole),
            Err(AnalysisError::DanglingRelease { .. })
        ));
    }

    #[test]
    fn multiple_acquires_of_one_release() {
        // Two readers both acquire the same release: two edges.
        let mut b = TraceBuilder::new(3);
        let s = l(9);
        let rel = b.sync_access(p(0), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel));
        b.sync_access(p(2), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel));
        let t = b.finish();
        let edges = so1_edges(&t, PairingPolicy::ByRole).unwrap();
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn policy_display() {
        assert_eq!(PairingPolicy::ByRole.to_string(), "by-role");
        assert_eq!(PairingPolicy::AllSync.to_string(), "all-sync");
        assert_eq!(PairingPolicy::default(), PairingPolicy::ByRole);
    }
}
