//! Analysis over salvaged trace prefixes.
//!
//! The paper's central observation (Theorem 4.2) is that an execution
//! need not be *fully* well-behaved to be analyzable: the sequentially
//! consistent prefix supports exact race detection even when the
//! suffix deviates. [`SalvageAnalysis`] applies the same philosophy one
//! layer down, to the trace *file*: when a file is torn or corrupted,
//! the salvage decoder (`TraceSet::salvage_binary`) recovers the
//! longest checksummed event prefix, and the full post-mortem analysis
//! runs on that prefix. The per-processor *salvage boundary* (how far
//! the recovered prefix reaches) is reported alongside the SCP estimate
//! (how far sequential consistency reaches) — two frontiers, one
//! physical and one semantic, bounding what the evidence supports.

use std::fmt;

use wmrd_trace::{metric_keys, Metrics, ProcId, Salvage, TraceSet};

use crate::{AnalysisError, PairingPolicy, PostMortem, RaceReport};

/// The result of analyzing a salvaged trace prefix: the race report for
/// the recovered events, plus the salvage boundary that scopes it.
#[derive(Debug)]
pub struct SalvageAnalysis {
    /// How much of the file was recovered, per processor.
    pub salvage: Salvage,
    /// The full post-mortem race report over the recovered prefix.
    pub report: RaceReport,
}

impl SalvageAnalysis {
    /// Salvages `data` (a binary trace file) and runs the post-mortem
    /// analysis on the recovered prefix.
    ///
    /// Records `salvage.*` metrics on `metrics` when enabled.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] if nothing recoverable precedes the
    /// damage or the recovered prefix fails analysis.
    pub fn run(
        data: &[u8],
        pairing: PairingPolicy,
        metrics: &Metrics,
    ) -> Result<Self, AnalysisError> {
        let salvage = TraceSet::salvage_binary(data).map_err(AnalysisError::Trace)?;
        metrics.set_gauge(metric_keys::SALVAGE_EVENTS_RECOVERED, salvage.events_recovered() as u64);
        metrics.set_gauge(metric_keys::SALVAGE_EVENTS_LOST, salvage.events_lost() as u64);
        metrics.set_gauge(metric_keys::SALVAGE_BYTES_DROPPED, salvage.bytes_dropped() as u64);
        metrics.set_gauge(metric_keys::SALVAGE_COMPLETE, u64::from(salvage.complete));
        let report = PostMortem::new(&salvage.trace).pairing(pairing).metrics(metrics).analyze()?;
        Ok(SalvageAnalysis { salvage, report })
    }

    /// The salvage boundary for `proc`: the number of events recovered,
    /// i.e. the index of the first event lost to damage.
    pub fn boundary(&self, proc: ProcId) -> Option<u32> {
        self.salvage.recovered.get(proc.index()).copied()
    }

    /// `true` iff the whole file decoded and the analysis saw every
    /// event the writer recorded.
    pub fn is_complete(&self) -> bool {
        self.salvage.complete
    }
}

impl fmt::Display for SalvageAnalysis {
    /// Shows the salvage boundary (same `P<i>:<got>/<expected>` shape
    /// as the SCP frontier) above the race report it scopes.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.salvage)?;
        write!(f, "{}", self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmrd_trace::{AccessKind, Location, SyncRole, TraceBuilder, TraceSink, Value};

    fn racy_trace() -> TraceSet {
        let mut b = TraceBuilder::new(2);
        let p0 = ProcId::new(0);
        let p1 = ProcId::new(1);
        // Race on x, then a sync epoch, then more (clean) work.
        b.data_access(p0, Location::new(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p1, Location::new(0), AccessKind::Read, Value::ZERO, None);
        let rel = b.sync_access(
            p0,
            Location::new(8),
            AccessKind::Write,
            SyncRole::Release,
            Value::ZERO,
            None,
        );
        b.sync_access(
            p1,
            Location::new(8),
            AccessKind::Read,
            SyncRole::Acquire,
            Value::ZERO,
            Some(rel),
        );
        b.data_access(p0, Location::new(1), AccessKind::Write, Value::new(2), None);
        b.data_access(p1, Location::new(2), AccessKind::Write, Value::new(3), None);
        b.finish()
    }

    #[test]
    fn complete_file_analyzes_like_a_plain_decode() {
        let t = racy_trace();
        let a = SalvageAnalysis::run(&t.to_binary(), PairingPolicy::ByRole, &Metrics::disabled())
            .unwrap();
        assert!(a.is_complete());
        let direct = PostMortem::new(&t).pairing(PairingPolicy::ByRole).analyze().unwrap();
        assert_eq!(a.report.races.len(), direct.races.len());
        assert_eq!(a.boundary(ProcId::new(0)), Some(3));
    }

    #[test]
    fn truncated_file_reports_the_prefix_races() {
        let t = racy_trace();
        let b = t.to_binary();
        // Find a cut that keeps the racing events but loses the tail.
        let mut found = false;
        for len in (6..b.len()).rev() {
            let Ok(a) =
                SalvageAnalysis::run(&b[..len], PairingPolicy::ByRole, &Metrics::disabled())
            else {
                continue;
            };
            if a.is_complete() || a.salvage.events_recovered() < 2 {
                continue;
            }
            found = true;
            // The race between the first two events is within the
            // salvaged prefix, so the analysis still finds it.
            assert!(!a.report.is_race_free(), "prefix with both race endpoints at cut {len}");
            assert!(a.to_string().contains("salvage"), "{a}");
            break;
        }
        assert!(found, "some cut must keep a racy prefix");
    }

    #[test]
    fn salvage_metrics_are_recorded() {
        let t = racy_trace();
        let m = Metrics::enabled();
        SalvageAnalysis::run(&t.to_binary(), PairingPolicy::ByRole, &m).unwrap();
        assert_eq!(m.gauge(metric_keys::SALVAGE_COMPLETE), Some(1));
        assert_eq!(m.gauge(metric_keys::SALVAGE_EVENTS_RECOVERED), Some(t.num_events() as u64));
        assert_eq!(m.gauge(metric_keys::SALVAGE_EVENTS_LOST), Some(0));
    }
}
