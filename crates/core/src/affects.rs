//! The *affects* relation (Definition 3.3).
//!
//! A race `⟨x,y⟩` affects a memory operation (here: event) `z` iff `z` is
//! `x` or `y`, or `x` or `y` happens-before `z`, or the effect chains
//! through another race. The paper observes (Section 4.2) that with the
//! doubly-directed race edges of G′, "a path exists in G′ from A (or B)
//! to C (or D) iff ⟨A,B⟩ affects ⟨C,D⟩" — so the whole relation is G′
//! reachability.

use wmrd_trace::EventId;

use crate::{AugmentedGraph, DataRace};

/// Answers *affects* queries over one execution's augmented graph.
#[derive(Debug)]
pub struct AffectsOracle<'a> {
    aug: &'a AugmentedGraph<'a>,
    races: &'a [DataRace],
}

impl<'a> AffectsOracle<'a> {
    /// Creates an oracle. `races` must be the slice the augmented graph
    /// was built from.
    pub fn new(aug: &'a AugmentedGraph<'a>, races: &'a [DataRace]) -> Self {
        AffectsOracle { aug, races }
    }

    /// `true` iff race `race_index` affects `event` (Definition 3.3).
    ///
    /// # Panics
    ///
    /// Panics if `race_index` is out of range.
    pub fn affects_event(&self, race_index: usize, event: EventId) -> bool {
        let race = &self.races[race_index];
        if race.involves(event) {
            return true;
        }
        self.aug.path(race.a, event) || self.aug.path(race.b, event)
    }

    /// `true` iff race `i` affects race `j` (affects either endpoint).
    ///
    /// Every race affects itself (clause (1) of the definition).
    pub fn affects_race(&self, i: usize, j: usize) -> bool {
        let rj = &self.races[j];
        self.affects_event(i, rj.a) || self.affects_event(i, rj.b)
    }

    /// Indices of the data races not affected by any *other* data race —
    /// the paper's "first data races", which Condition 3.4(2) guarantees
    /// occur in the sequentially consistent prefix.
    pub fn unaffected_data_races(&self) -> Vec<usize> {
        let data: Vec<usize> = self.aug.data_race_indices().to_vec();
        data.iter()
            .copied()
            .filter(|&j| data.iter().all(|&i| i == j || !self.affects_race(i, j)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{detect_races, HbGraph, PairingPolicy};
    use wmrd_trace::{
        AccessKind, Location, ProcId, SyncRole, TraceBuilder, TraceSet, TraceSink, Value,
    };

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    fn e(proc: u16, index: u32) -> EventId {
        EventId::new(p(proc), index)
    }

    fn two_phase_trace() -> TraceSet {
        // Phase 1: race on x between P0.e0 and P1.e0.
        // Phase 2 (po-after): race on y between P0.e2 and P1.e2.
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        b.sync_access(p(0), l(8), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(1), AccessKind::Read, Value::ZERO, None);
        b.finish()
    }

    #[test]
    fn race_affects_itself_and_successors() {
        let t = two_phase_trace();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let races = detect_races(&t, &hb);
        assert_eq!(races.len(), 2);
        let aug = AugmentedGraph::build(&hb, &races);
        let oracle = AffectsOracle::new(&aug, &races);

        // Race 0 is on x (events P0.e0, P1.e0); race 1 on y.
        assert!(oracle.affects_event(0, e(0, 0)), "involves");
        assert!(oracle.affects_event(0, e(0, 2)), "po successor of endpoint");
        assert!(oracle.affects_event(0, e(1, 2)), "cross-processor through race edge + po");
        assert!(oracle.affects_race(0, 0), "affects itself");
        assert!(oracle.affects_race(0, 1), "first race affects the later one");
        assert!(!oracle.affects_race(1, 0), "later race does not affect the earlier one");
        assert!(!oracle.affects_event(1, e(0, 0)));
    }

    #[test]
    fn unaffected_races_are_the_first_ones() {
        let t = two_phase_trace();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let races = detect_races(&t, &hb);
        let aug = AugmentedGraph::build(&hb, &races);
        let oracle = AffectsOracle::new(&aug, &races);
        let unaffected = oracle.unaffected_data_races();
        assert_eq!(unaffected.len(), 1);
        assert!(races[unaffected[0]].locations.contains(l(0)), "the x race is first");
    }

    #[test]
    fn mutually_affecting_races_yield_no_unaffected_race() {
        // Same shape as partition.rs's cyclic test: two races on a G′
        // cycle affect each other, so *neither* is unaffected — which is
        // exactly why the paper reports partitions rather than individual
        // races.
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.sync_access(p(0), l(8), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(1), AccessKind::Write, Value::new(2), None);
        b.sync_access(p(1), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.data_access(p(1), l(0), AccessKind::Write, Value::new(2), None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let races = detect_races(&t, &hb);
        assert_eq!(races.len(), 2);
        let aug = AugmentedGraph::build(&hb, &races);
        let oracle = AffectsOracle::new(&aug, &races);
        assert!(oracle.affects_race(0, 1));
        assert!(oracle.affects_race(1, 0));
        assert!(oracle.unaffected_data_races().is_empty());
    }

    #[test]
    fn independent_races_are_all_unaffected() {
        let mut b = TraceBuilder::new(4);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        b.data_access(p(2), l(5), AccessKind::Write, Value::new(1), None);
        b.data_access(p(3), l(5), AccessKind::Read, Value::ZERO, None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let races = detect_races(&t, &hb);
        let aug = AugmentedGraph::build(&hb, &races);
        let oracle = AffectsOracle::new(&aug, &races);
        assert_eq!(oracle.unaffected_data_races().len(), 2);
        assert!(!oracle.affects_race(0, 1));
        assert!(!oracle.affects_race(1, 0));
    }
}
