//! The analysis result presented to the programmer.

use std::fmt;

use serde::{Deserialize, Serialize};

use wmrd_trace::TraceMeta;

use crate::{DataRace, PairingPolicy, PartitionSet, RacePartition, ScpEstimate};

/// Everything the post-mortem analysis derives from one trace.
///
/// Per the paper's Section 4.2, only the races in **first partitions**
/// should be reported: each first partition is guaranteed to contain at
/// least one race that also occurs in a sequentially consistent execution
/// (Theorem 4.2). Races in non-first partitions may be artifacts of
/// earlier races (or, on weak hardware, races that cannot occur under
/// sequential consistency at all — Figure 2's confusion) and are exposed
/// separately for tooling, not for the programmer's first look.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaceReport {
    /// Provenance of the analyzed trace.
    pub meta: TraceMeta,
    /// Pairing policy used for `so1`.
    pub pairing: PairingPolicy,
    /// Number of events analyzed.
    pub num_events: usize,
    /// Number of `so1` edges found.
    pub num_so1_edges: usize,
    /// Every race detected (data and sync-sync), sorted.
    pub races: Vec<DataRace>,
    /// The race partitions with their ordering.
    pub partitions: PartitionSet,
    /// The estimated sequentially consistent prefix.
    pub scp: ScpEstimate,
}

impl RaceReport {
    /// `true` iff the execution exhibited no data races — in which case
    /// Condition 3.4(1) certifies it was sequentially consistent.
    pub fn is_race_free(&self) -> bool {
        self.races.iter().all(|r| !r.is_data_race())
    }

    /// All data races (excludes sync-sync races).
    pub fn data_races(&self) -> impl Iterator<Item = &DataRace> {
        self.races.iter().filter(|r| r.is_data_race())
    }

    /// The first partitions — what should be reported to the programmer.
    pub fn first_partitions(&self) -> impl Iterator<Item = &RacePartition> {
        self.partitions.first_partitions()
    }

    /// The data races inside first partitions: the *reportable* set, at
    /// least one race per partition of which occurs in a sequentially
    /// consistent execution.
    pub fn reported_races(&self) -> Vec<&DataRace> {
        self.partitions
            .first_partitions()
            .flat_map(|p| p.races.iter().map(|&i| &self.races[i]))
            .collect()
    }

    /// The data races withheld as potential artifacts (non-first
    /// partitions).
    pub fn withheld_races(&self) -> Vec<&DataRace> {
        self.partitions
            .non_first_partitions()
            .flat_map(|p| p.races.iter().map(|&i| &self.races[i]))
            .collect()
    }

    /// The verdict string a debugger front-end would show.
    pub fn verdict(&self) -> String {
        if self.is_race_free() {
            "no data races: execution was sequentially consistent".to_string()
        } else {
            format!(
                "{} data race(s) in {} partition(s); reporting {} first partition(s) \
                 with {} race(s)",
                self.data_races().count(),
                self.partitions.len(),
                self.partitions.first_indices().len(),
                self.reported_races().len()
            )
        }
    }
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== race report ===")?;
        if let Some(program) = &self.meta.program {
            writeln!(f, "program: {program}")?;
        }
        if let Some(model) = &self.meta.model {
            writeln!(f, "model:   {model}")?;
        }
        writeln!(
            f,
            "events:  {}   so1 edges: {}   pairing: {}",
            self.num_events, self.num_so1_edges, self.pairing
        )?;
        writeln!(f, "verdict: {}", self.verdict())?;
        if !self.is_race_free() {
            for (i, part) in self.partitions.partitions().iter().enumerate() {
                let tag = if self.partitions.is_first(i) { "FIRST" } else { "withheld" };
                writeln!(f, "partition {i} ({tag}):")?;
                for &ri in &part.races {
                    writeln!(f, "  {}", self.races[ri])?;
                }
            }
            writeln!(f, "{}", self.scp)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::PostMortem;
    use wmrd_trace::{AccessKind, Location, ProcId, SyncRole, TraceBuilder, TraceSink, Value};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    #[test]
    fn race_free_report() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(1), AccessKind::Write, Value::new(1), None);
        let report = PostMortem::new(&b.finish()).analyze().unwrap();
        assert!(report.is_race_free());
        assert!(report.reported_races().is_empty());
        assert!(report.withheld_races().is_empty());
        assert!(report.verdict().contains("sequentially consistent"));
        assert!(report.to_string().contains("verdict"));
    }

    #[test]
    fn racy_report_contents() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        b.sync_access(p(0), l(8), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(1), AccessKind::Read, Value::ZERO, None);
        let report = PostMortem::new(&b.finish()).analyze().unwrap();
        assert!(!report.is_race_free());
        assert_eq!(report.data_races().count(), 2);
        assert_eq!(report.reported_races().len(), 1);
        assert_eq!(report.withheld_races().len(), 1);
        let text = report.to_string();
        assert!(text.contains("FIRST"));
        assert!(text.contains("withheld"));
        assert!(text.contains("SCP"));
    }

    #[test]
    fn sync_sync_only_race_is_still_race_free_verdict() {
        let mut b = TraceBuilder::new(2);
        b.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), l(9), AccessKind::Write, SyncRole::Release, Value::new(1), None);
        let report = PostMortem::new(&b.finish()).analyze().unwrap();
        assert_eq!(report.races.len(), 1, "the sync-sync race is detected");
        assert!(report.is_race_free(), "but it is not a *data* race");
    }

    #[test]
    fn serde_roundtrip() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let report = PostMortem::new(&b.finish()).analyze().unwrap();
        let j = serde_json::to_string(&report).unwrap();
        let back: crate::RaceReport = serde_json::from_str(&j).unwrap();
        assert_eq!(report, back);
    }
}
