//! The one-call post-mortem driver (Section 4's pipeline).

use wmrd_trace::{Metrics, TraceSet};

use crate::{
    detect_races_with_stats, estimate_scp, partition_races, AnalysisError, AugmentedGraph, HbGraph,
    PairingPolicy, RaceReport,
};

/// Options for a post-mortem analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// How `so1` pairing is derived (default: by acquire/release role).
    pub pairing: PairingPolicy,
}

/// Post-mortem analysis builder.
///
/// # Example
///
/// ```
/// use wmrd_core::{PairingPolicy, PostMortem};
/// use wmrd_trace::{AccessKind, Location, ProcId, TraceBuilder, TraceSink, Value};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TraceBuilder::new(2);
/// b.data_access(ProcId::new(0), Location::new(0), AccessKind::Write, Value::new(1), None);
/// b.data_access(ProcId::new(1), Location::new(0), AccessKind::Read, Value::ZERO, None);
/// let trace = b.finish();
///
/// let report = PostMortem::new(&trace)
///     .pairing(PairingPolicy::ByRole)
///     .analyze()?;
/// assert_eq!(report.reported_races().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PostMortem<'t> {
    trace: &'t TraceSet,
    options: AnalysisOptions,
    metrics: Metrics,
}

impl<'t> PostMortem<'t> {
    /// Creates an analysis over `trace`.
    pub fn new(trace: &'t TraceSet) -> Self {
        PostMortem { trace, options: AnalysisOptions::default(), metrics: Metrics::disabled() }
    }

    /// Sets the pairing policy.
    pub fn pairing(mut self, pairing: PairingPolicy) -> Self {
        self.options.pairing = pairing;
        self
    }

    /// Sets all options at once.
    pub fn options(mut self, options: AnalysisOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a metrics handle: each pipeline phase is timed
    /// (`analysis.hb_build` … `analysis.scp` in `phases_ns`) and the
    /// pipeline's sizes are recorded as `analysis.*` gauges. A disabled
    /// handle (the default) records nothing.
    ///
    /// ```
    /// use wmrd_core::PostMortem;
    /// use wmrd_trace::{AccessKind, Location, Metrics, ProcId, TraceBuilder, TraceSink, Value};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = TraceBuilder::new(2);
    /// b.data_access(ProcId::new(0), Location::new(0), AccessKind::Write, Value::new(1), None);
    /// b.data_access(ProcId::new(1), Location::new(0), AccessKind::Read, Value::ZERO, None);
    /// let trace = b.finish();
    ///
    /// let metrics = Metrics::enabled();
    /// PostMortem::new(&trace).metrics(&metrics).analyze()?;
    /// assert_eq!(metrics.report().gauge("analysis.races"), Some(1));
    /// # Ok(())
    /// # }
    /// ```
    pub fn metrics(mut self, metrics: &Metrics) -> Self {
        self.metrics = metrics.clone();
        self
    }

    /// Runs the full pipeline: hb1 graph → races → augmented graph →
    /// partitions → SCP estimate.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] for invalid traces or unresolvable
    /// pairings.
    pub fn analyze(self) -> Result<RaceReport, AnalysisError> {
        let m = &self.metrics;
        let hb =
            m.time("analysis.hb_build", || HbGraph::build(self.trace, self.options.pairing))?;
        let (races, detect) =
            m.time("analysis.detect", || detect_races_with_stats(self.trace, &hb));
        let aug = m.time("analysis.augment", || AugmentedGraph::build(&hb, &races));
        let partitions = m.time("analysis.partition", || partition_races(&aug, &races));
        let scp = m.time("analysis.scp", || estimate_scp(self.trace, &aug, &races));
        if m.is_enabled() {
            m.set_gauge("analysis.events", hb.num_events() as u64);
            m.set_gauge("analysis.po_edges", hb.num_po_edges() as u64);
            m.set_gauge("analysis.so1_edges", hb.so1().len() as u64);
            m.set_gauge("analysis.hb1_edges", (hb.num_po_edges() + hb.so1().len()) as u64);
            m.set_gauge("analysis.candidate_pairs", detect.candidate_pairs);
            m.set_gauge("analysis.races", detect.races);
            m.set_gauge(
                "analysis.data_races",
                races.iter().filter(|r| r.is_data_race()).count() as u64,
            );
            m.set_gauge("analysis.scc_count", aug.reach().scc().num_components() as u64);
            m.set_gauge("analysis.partitions", partitions.len() as u64);
            m.set_gauge("analysis.first_partitions", partitions.first_indices().len() as u64);
        }
        Ok(RaceReport {
            meta: self.trace.meta.clone(),
            pairing: self.options.pairing,
            num_events: hb.num_events(),
            num_so1_edges: hb.so1().len(),
            races,
            partitions,
            scp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmrd_trace::{
        AccessKind, Location, OpId, ProcId, SyncRole, TraceBuilder, TraceSink, Value,
    };

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    #[test]
    fn pipeline_end_to_end() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let t = b.finish();
        let report = PostMortem::new(&t).analyze().unwrap();
        assert_eq!(report.num_events, 2);
        assert_eq!(report.num_so1_edges, 0);
        assert_eq!(report.races.len(), 1);
        assert_eq!(report.partitions.len(), 1);
        assert!(report.scp.covers_everything());
    }

    #[test]
    fn pairing_policy_changes_results() {
        // A Test&Set write observed by another Test&Set read orders the
        // surrounding data accesses only under AllSync pairing.
        let mut b = TraceBuilder::new(2);
        let (x, s) = (l(0), l(9));
        b.data_access(p(0), x, AccessKind::Write, Value::new(1), None);
        let w = b.sync_access(p(0), s, AccessKind::Write, SyncRole::None, Value::new(1), None);
        b.sync_access(p(1), s, AccessKind::Read, SyncRole::Acquire, Value::new(1), Some(w));
        b.data_access(p(1), x, AccessKind::Read, Value::new(1), None);
        let t = b.finish();
        let by_role = PostMortem::new(&t).pairing(PairingPolicy::ByRole).analyze().unwrap();
        assert!(!by_role.is_race_free(), "no release role, no edge, race remains");
        let all_sync = PostMortem::new(&t).pairing(PairingPolicy::AllSync).analyze().unwrap();
        assert!(all_sync.is_race_free(), "DRF0-style pairing orders the accesses");
    }

    #[test]
    fn corrupt_trace_is_rejected() {
        let mut b = TraceBuilder::new(1);
        b.sync_access(
            p(0),
            l(9),
            AccessKind::Read,
            SyncRole::Acquire,
            Value::ZERO,
            Some(OpId::new(p(0), 42)),
        );
        let t = b.finish();
        assert!(matches!(
            PostMortem::new(&t).analyze(),
            Err(AnalysisError::DanglingRelease { .. })
        ));
    }

    #[test]
    fn metered_analysis_records_phases_and_sizes() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let t = b.finish();
        let metrics = Metrics::enabled();
        let report = PostMortem::new(&t).metrics(&metrics).analyze().unwrap();
        let snap = metrics.report();
        assert_eq!(snap.gauge("analysis.events"), Some(report.num_events as u64));
        assert_eq!(snap.gauge("analysis.so1_edges"), Some(0));
        assert_eq!(snap.gauge("analysis.races"), Some(1));
        assert_eq!(snap.gauge("analysis.data_races"), Some(1));
        assert_eq!(snap.gauge("analysis.candidate_pairs"), Some(1));
        assert_eq!(snap.gauge("analysis.partitions"), Some(1));
        assert_eq!(snap.gauge("analysis.first_partitions"), Some(1));
        assert!(snap.gauge("analysis.scc_count").unwrap() >= 1);
        for phase in [
            "analysis.hb_build",
            "analysis.detect",
            "analysis.augment",
            "analysis.partition",
            "analysis.scp",
        ] {
            assert!(snap.phase_ns(phase).is_some(), "missing phase {phase}");
        }
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let t = b.finish();
        let off = Metrics::disabled();
        PostMortem::new(&t).metrics(&off).analyze().unwrap();
        assert!(off.report().is_empty());
    }

    #[test]
    fn metered_and_unmetered_reports_agree() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Write, Value::new(2), None);
        let t = b.finish();
        let plain = PostMortem::new(&t).analyze().unwrap();
        let metered = PostMortem::new(&t).metrics(&Metrics::enabled()).analyze().unwrap();
        assert_eq!(plain, metered);
    }

    #[test]
    fn options_builder() {
        let mut b = TraceBuilder::new(1);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        let t = b.finish();
        let opts = AnalysisOptions { pairing: PairingPolicy::AllSync };
        let report = PostMortem::new(&t).options(opts).analyze().unwrap();
        assert_eq!(report.pairing, PairingPolicy::AllSync);
    }
}
