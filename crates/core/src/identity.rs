//! Execution-independent race identities.
//!
//! Comparing races *across executions* — the verifier checking
//! Theorem 4.2 against an SC oracle, or a campaign engine deduplicating
//! thousands of seeds' findings — needs a name for a race that does not
//! depend on dynamic operation ids, which differ between interleavings.
//! Section 2.1 of the paper identifies an operation by "the location it
//! accesses and the part of the program in which it is specified"; a
//! [`RaceKey`] approximates that source-location pair with the issuing
//! processor, the conflict location, the access kind and the data/sync
//! classification of both sides — coarse enough to be stable across
//! interleavings of the same program, fine enough to distinguish the
//! races of every workload in this repository.
//!
//! Keys are totally ordered and serializable, so campaign reports keyed
//! by them are deterministic and can be emitted as JSON.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use wmrd_trace::{AccessKind, Location, OpTrace, ProcId, TraceSet};

use crate::ops::OpRace;
use crate::DataRace;

/// One side of a race identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SideKey {
    /// Issuing processor.
    pub proc: ProcId,
    /// Read or write (for event-level races: whether the event *writes*
    /// the conflict location).
    pub kind: AccessKind,
    /// `true` iff the side is a synchronization operation/event.
    pub sync: bool,
}

/// An execution-independent race identity: a conflict location plus the
/// normalized pair of sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RaceKey {
    /// The conflict location.
    pub loc: Location,
    /// The lexicographically smaller side.
    pub a: SideKey,
    /// The other side.
    pub b: SideKey,
}

impl RaceKey {
    /// Builds a normalized key from two sides (argument order is
    /// irrelevant).
    pub fn new(loc: Location, x: SideKey, y: SideKey) -> Self {
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        RaceKey { loc, a, b }
    }
}

/// Keys of the *data* races of an operation-level race list.
pub fn op_race_keys(races: &[OpRace], trace: &OpTrace) -> BTreeSet<RaceKey> {
    let mut out = BTreeSet::new();
    for race in races.iter().filter(|r| r.is_data_race()) {
        let (Some(a), Some(b)) = (trace.op(race.a), trace.op(race.b)) else { continue };
        out.insert(RaceKey::new(
            race.loc,
            SideKey { proc: a.id.proc, kind: a.kind, sync: a.is_sync() },
            SideKey { proc: b.id.proc, kind: b.kind, sync: b.is_sync() },
        ));
    }
    out
}

/// Keys of the *data* races of an event-level race list. An event race
/// on several locations yields one key per conflict location.
pub fn event_race_keys(races: &[DataRace], trace: &TraceSet) -> BTreeSet<RaceKey> {
    let mut out = BTreeSet::new();
    for race in races.iter().filter(|r| r.is_data_race()) {
        let (Some(ea), Some(eb)) = (trace.event(race.a), trace.event(race.b)) else {
            continue;
        };
        for loc in &race.locations {
            // An event may both read and write the location; it then
            // stands for one lower-level race per access-kind combination
            // (Section 4.1: a higher-level race "may represent many
            // lower-level data races").
            let mut kinds_a = Vec::new();
            if ea.read_set().contains(loc) {
                kinds_a.push(AccessKind::Read);
            }
            if ea.write_set().contains(loc) {
                kinds_a.push(AccessKind::Write);
            }
            let mut kinds_b = Vec::new();
            if eb.read_set().contains(loc) {
                kinds_b.push(AccessKind::Read);
            }
            if eb.write_set().contains(loc) {
                kinds_b.push(AccessKind::Write);
            }
            for &ka in &kinds_a {
                for &kb in &kinds_b {
                    if ka == AccessKind::Read && kb == AccessKind::Read {
                        continue; // read-read pairs do not conflict
                    }
                    out.insert(RaceKey::new(
                        loc,
                        SideKey { proc: race.a.proc, kind: ka, sync: ea.is_sync() },
                        SideKey { proc: race.b.proc, kind: kb, sync: eb.is_sync() },
                    ));
                }
            }
        }
    }
    out
}

/// A single event-level race's keys (helper for per-partition checks).
pub fn one_event_race_keys(race: &DataRace, trace: &TraceSet) -> BTreeSet<RaceKey> {
    event_race_keys(std::slice::from_ref(race), trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{detect_races, HbGraph, PairingPolicy};
    use wmrd_trace::{TraceBuilder, TraceSink, Value};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    #[test]
    fn key_is_normalized() {
        let s1 = SideKey { proc: p(1), kind: AccessKind::Read, sync: false };
        let s0 = SideKey { proc: p(0), kind: AccessKind::Write, sync: false };
        let key_a = RaceKey::new(l(0), s1, s0);
        let key_b = RaceKey::new(l(0), s0, s1);
        assert_eq!(key_a, key_b);
        assert_eq!(key_a.a.proc, p(0));
    }

    /// The dedup contract a campaign engine relies on: the same
    /// source-location pair observed under two different schedules must
    /// produce the same key.
    #[test]
    fn same_pair_under_different_schedules_same_key() {
        // Schedule 1: writer first. Schedule 2: reader first. The
        // dynamic event ids and observed values differ; the key must not.
        let mut b1 = TraceBuilder::new(2);
        b1.data_access(p(0), l(3), AccessKind::Write, Value::new(1), None);
        b1.data_access(p(1), l(3), AccessKind::Read, Value::new(1), None);
        let t1 = b1.finish();

        let mut b2 = TraceBuilder::new(2);
        b2.data_access(p(1), l(3), AccessKind::Read, Value::ZERO, None);
        b2.data_access(p(0), l(3), AccessKind::Write, Value::new(1), None);
        let t2 = b2.finish();

        let keys = |t: &TraceSet| {
            let hb = HbGraph::build(t, PairingPolicy::ByRole).unwrap();
            event_race_keys(&detect_races(t, &hb), t)
        };
        let k1 = keys(&t1);
        let k2 = keys(&t2);
        assert_eq!(k1.len(), 1);
        assert_eq!(k1, k2, "schedule must not influence identity");
    }

    /// The converse: distinct source-location pairs must not merge.
    #[test]
    fn distinct_pairs_do_not_merge() {
        // Two races on different locations...
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        b.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(1), AccessKind::Read, Value::ZERO, None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let keys = event_race_keys(&detect_races(&t, &hb), &t);
        assert_eq!(keys.len(), 2, "different locations stay distinct");

        // ...and two races on the same location with different access
        // kinds (write-read vs write-write).
        let mut b = TraceBuilder::new(3);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        b.data_access(p(2), l(0), AccessKind::Write, Value::new(2), None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let keys = event_race_keys(&detect_races(&t, &hb), &t);
        assert!(keys.len() >= 3, "kind/processor differences stay distinct: {keys:?}");
    }

    #[test]
    fn multi_location_event_race_yields_multiple_keys() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        b.data_access(p(1), l(1), AccessKind::Read, Value::ZERO, None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let races = detect_races(&t, &hb);
        assert_eq!(races.len(), 1, "one event pair");
        assert_eq!(event_race_keys(&races, &t).len(), 2, "two conflict locations");
    }

    #[test]
    fn sync_sync_races_are_skipped() {
        use wmrd_trace::SyncRole;
        let mut b = TraceBuilder::new(2);
        b.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), l(9), AccessKind::Write, SyncRole::Release, Value::new(1), None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let races = detect_races(&t, &hb);
        assert_eq!(races.len(), 1);
        assert!(event_race_keys(&races, &t).is_empty());
    }

    #[test]
    fn keys_are_totally_ordered_and_stable() {
        // BTreeSet iteration order (= campaign report order) is the
        // lexicographic key order, independent of insertion order.
        let w = |i| SideKey { proc: p(i), kind: AccessKind::Write, sync: false };
        let r = |i| SideKey { proc: p(i), kind: AccessKind::Read, sync: false };
        let k1 = RaceKey::new(l(0), w(0), r(1));
        let k2 = RaceKey::new(l(1), w(0), r(1));
        let k3 = RaceKey::new(l(0), w(1), r(0));
        let fwd: BTreeSet<_> = [k1, k2, k3].into_iter().collect();
        let rev: BTreeSet<_> = [k3, k2, k1].into_iter().collect();
        assert!(fwd.iter().eq(rev.iter()));
        assert!(k1 < k2, "location is the major sort key");
    }
}
