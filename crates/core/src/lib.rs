//! Dynamic data-race detection for weak memory systems.
//!
//! This crate implements the analysis of *Detecting Data Races on Weak
//! Memory Systems* (Adve, Hill, Miller & Netzer, ISCA 1991): a
//! post-mortem technique that, given the trace of an execution on a weak
//! system obeying the paper's Condition 3.4, either
//!
//! 1. reports **no data races**, certifying that the execution was
//!    sequentially consistent (Theorem 4.1 + Condition 3.4(1)), or
//! 2. reports the **first partitions** of data races — groups, each
//!    guaranteed to contain at least one race that also occurs in a
//!    sequentially consistent execution of the program (Theorem 4.2) —
//!    so the programmer can keep reasoning in terms of sequential
//!    consistency even though the hardware is weak.
//!
//! The pipeline (Section 4 of the paper):
//!
//! * [`HbGraph`] — the happens-before-1 relation `(po ∪ so1)+` over
//!   events, with release/acquire pairing derived from the trace
//!   ([`PairingPolicy`]).
//! * [`detect_races`] — conflicting, hb1-unordered event pairs
//!   (Definition 2.4 lifted to events).
//! * [`AugmentedGraph`] — the graph G′: hb1 edges plus a doubly-directed
//!   edge per data race, capturing the *affects* relation
//!   (Definition 3.3).
//! * [`partition_races`] — races grouped by strongly connected component
//!   of G′, partially ordered by path existence (`P`, Definition 4.1);
//!   the minimal elements are the **first partitions**.
//! * [`estimate_scp`] — the per-processor boundary of the sequentially
//!   consistent prefix implied by Condition 3.4.
//! * [`PostMortem`] — one-call driver producing a [`RaceReport`].
//!
//! An [`OnTheFly`] vector-clock detector (the paper's Section 5
//! comparison point and "future work"), its exact epoch-compressed
//! streaming sibling ([`StreamDetector`], the engine behind the serving
//! daemon's `STREAM` verb), and an exact operation-level analysis
//! ([`ops`]) for cross-validation round out the crate.
//!
//! # Example
//!
//! ```
//! use wmrd_core::PostMortem;
//! use wmrd_trace::{AccessKind, Location, ProcId, SyncRole, TraceBuilder, TraceSink, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // P0 writes x with no synchronization; P1 reads x concurrently.
//! let mut b = TraceBuilder::new(2);
//! let x = Location::new(0);
//! b.data_access(ProcId::new(0), x, AccessKind::Write, Value::new(1), None);
//! b.data_access(ProcId::new(1), x, AccessKind::Read, Value::new(0), None);
//! let trace = b.finish();
//!
//! let report = PostMortem::new(&trace).analyze()?;
//! assert!(!report.is_race_free());
//! assert_eq!(report.first_partitions().count(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod affects;
mod augmented;
mod error;
mod graph;
mod hb;
mod identity;
mod onthefly;
pub mod ops;
mod pairing;
mod parallel;
mod partition;
mod postmortem;
mod race;
pub mod render;
mod report;
mod salvage;
mod scp;
mod stream_detect;
mod vc;

pub use affects::AffectsOracle;
pub use augmented::AugmentedGraph;
pub use error::AnalysisError;
pub use graph::{Condensation, DiGraph, Reachability, SccInfo};
pub use hb::HbGraph;
pub use identity::{event_race_keys, one_event_race_keys, op_race_keys, RaceKey, SideKey};
pub use onthefly::{OnTheFly, OnTheFlyConfig, OnTheFlyRace};
pub use pairing::{so1_edges, PairingPolicy, So1Edge};
pub use parallel::{
    analyze_batch, analyze_batch_metered, detect_races_parallel, detect_races_parallel_metered,
};
pub use partition::{partition_races, PartitionSet, RacePartition};
pub use postmortem::{AnalysisOptions, PostMortem};
pub use race::{detect_races, detect_races_with_stats, DataRace, DetectStats, RaceKind};
pub use report::RaceReport;
pub use salvage::SalvageAnalysis;
pub use scp::{estimate_scp, ScpEstimate};
pub use stream_detect::StreamDetector;
pub use vc::VectorClock;
