//! Vector clocks, the machinery behind the on-the-fly detector.

use std::fmt;

use serde::{Deserialize, Serialize};

use wmrd_trace::ProcId;

/// A vector clock over processors.
///
/// Component `p` counts the operations of processor `p` known to have
/// "happened before" the clock's owner. Joins grow the vector on demand,
/// so clocks of different widths combine correctly.
///
/// # Example
///
/// ```
/// use wmrd_core::VectorClock;
/// use wmrd_trace::ProcId;
///
/// let mut a = VectorClock::new();
/// a.tick(ProcId::new(0));
/// let mut b = VectorClock::new();
/// b.tick(ProcId::new(1));
/// assert!(!a.le(&b));
/// b.join(&a);
/// assert!(a.le(&b));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorClock {
    clocks: Vec<u64>,
}

impl VectorClock {
    /// Creates the zero clock.
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// The component for one processor (absent components are zero).
    pub fn get(&self, proc: ProcId) -> u64 {
        self.clocks.get(proc.index()).copied().unwrap_or(0)
    }

    /// Sets the component for one processor.
    pub fn set(&mut self, proc: ProcId, value: u64) {
        if proc.index() >= self.clocks.len() {
            self.clocks.resize(proc.index() + 1, 0);
        }
        self.clocks[proc.index()] = value;
    }

    /// Increments this processor's own component, returning the new value.
    pub fn tick(&mut self, proc: ProcId) -> u64 {
        let v = self.get(proc) + 1;
        self.set(proc, v);
        v
    }

    /// Pointwise maximum with `other`.
    pub fn join(&mut self, other: &VectorClock) {
        if other.clocks.len() > self.clocks.len() {
            self.clocks.resize(other.clocks.len(), 0);
        }
        for (s, o) in self.clocks.iter_mut().zip(&other.clocks) {
            *s = (*s).max(*o);
        }
    }

    /// `true` iff `self` ≤ `other` pointwise (self happened-before or
    /// equals other).
    pub fn le(&self, other: &VectorClock) -> bool {
        self.clocks.iter().enumerate().all(|(i, &v)| v <= other.clocks.get(i).copied().unwrap_or(0))
    }

    /// Approximate heap footprint in bytes (for the on-the-fly memory
    /// accounting of experiment E9).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.clocks.len() * std::mem::size_of::<u64>()
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.clocks.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    #[test]
    fn tick_and_get() {
        let mut vc = VectorClock::new();
        assert_eq!(vc.get(p(3)), 0);
        assert_eq!(vc.tick(p(3)), 1);
        assert_eq!(vc.tick(p(3)), 2);
        assert_eq!(vc.get(p(3)), 2);
        assert_eq!(vc.get(p(0)), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(p(0), 5);
        a.set(p(1), 1);
        let mut b = VectorClock::new();
        b.set(p(1), 7);
        b.set(p(2), 2);
        a.join(&b);
        assert_eq!(a.get(p(0)), 5);
        assert_eq!(a.get(p(1)), 7);
        assert_eq!(a.get(p(2)), 2);
    }

    #[test]
    fn le_comparisons() {
        let zero = VectorClock::new();
        let mut a = VectorClock::new();
        a.set(p(0), 1);
        assert!(zero.le(&a));
        assert!(!a.le(&zero));
        assert!(a.le(&a));
        let mut b = VectorClock::new();
        b.set(p(1), 1);
        assert!(!a.le(&b) && !b.le(&a), "concurrent clocks");
    }

    #[test]
    fn le_with_different_widths() {
        let mut wide = VectorClock::new();
        wide.set(p(5), 1);
        let narrow = VectorClock::new();
        assert!(narrow.le(&wide));
        assert!(!wide.le(&narrow));
    }

    #[test]
    fn display_and_bytes() {
        let mut vc = VectorClock::new();
        vc.set(p(1), 3);
        assert_eq!(vc.to_string(), "[0,3]");
        assert!(vc.approx_bytes() >= 16);
    }
}
