//! An on-the-fly (vector-clock) race detector.
//!
//! Section 5 of the paper compares the post-mortem approach against
//! on-the-fly techniques: they avoid trace files but are "typically less
//! accurate and have higher run-time overhead", because space limits
//! force them to buffer only partial history. This detector makes that
//! trade-off concrete:
//!
//! * It is a [`TraceSink`], so the simulator can run it *during*
//!   execution — no trace file at all.
//! * Per location it keeps the last write and a bounded list of reads
//!   ([`OnTheFlyConfig::read_history_limit`]); shrinking the bound saves
//!   memory and loses races, which is the accuracy knob experiment E9
//!   sweeps.
//! * It orders processors through per-location synchronization clocks —
//!   an approximation of exact `so1` pairing (it orders an acquire after
//!   *every* earlier release of that location, not only the one whose
//!   value it returned), so it can also miss races the post-mortem
//!   analysis finds. This, too, is the accuracy gap the paper describes.
//!
//! It reports races *as they occur*, so the first race it sees is a
//! first race of the execution — on conditioned weak hardware, a race
//! the sequentially consistent prefix contains.

use std::collections::HashMap;
use std::fmt;

use wmrd_trace::{AccessKind, Location, OpId, ProcId, SyncRole, TraceSink, Value};

use crate::{PairingPolicy, RaceKind, VectorClock};

/// Configuration for the on-the-fly detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnTheFlyConfig {
    /// Pairing policy (which sync operations transfer ordering).
    pub pairing: PairingPolicy,
    /// Maximum reads remembered per location (`None` = unbounded). The
    /// paper's accuracy-vs-space knob: with a bound, old reads are
    /// forgotten and write-read races against them go undetected.
    pub read_history_limit: Option<usize>,
    /// Stop recording after this many races (`None` = unbounded); a
    /// debugger typically only needs the first few.
    pub max_races: Option<usize>,
}

impl Default for OnTheFlyConfig {
    fn default() -> Self {
        OnTheFlyConfig { pairing: PairingPolicy::ByRole, read_history_limit: None, max_races: None }
    }
}

/// A race reported by the on-the-fly detector, at operation granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OnTheFlyRace {
    /// The earlier operation (by detection time).
    pub earlier: OpId,
    /// The operation whose execution detected the race.
    pub later: OpId,
    /// The location raced on.
    pub loc: Location,
    /// Data/sync classification.
    pub kind: RaceKind,
}

impl fmt::Display for OnTheFlyRace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}> on {} ({})", self.earlier, self.later, self.loc, self.kind)
    }
}

#[derive(Debug, Clone, Copy)]
struct AccessRecord {
    op: OpId,
    /// The accessor's clock component at access time.
    time: u64,
    sync: bool,
}

#[derive(Debug, Clone, Default)]
struct LocationState {
    last_write: Option<AccessRecord>,
    reads: Vec<AccessRecord>,
    dropped_reads: u64,
}

/// The on-the-fly detector. Feed it an execution (it is a
/// [`TraceSink`]), then call [`finish`](OnTheFly::finish).
#[derive(Debug)]
pub struct OnTheFly {
    config: OnTheFlyConfig,
    clocks: Vec<VectorClock>,
    op_counters: Vec<u32>,
    locations: HashMap<Location, LocationState>,
    sync_clocks: HashMap<Location, VectorClock>,
    races: Vec<OnTheFlyRace>,
    dropped_reads: u64,
}

impl OnTheFly {
    /// Creates a detector for `num_procs` processors.
    pub fn new(num_procs: usize, config: OnTheFlyConfig) -> Self {
        OnTheFly {
            config,
            clocks: vec![VectorClock::new(); num_procs],
            op_counters: vec![0; num_procs],
            locations: HashMap::new(),
            sync_clocks: HashMap::new(),
            races: Vec::new(),
            dropped_reads: 0,
        }
    }

    /// The races found so far.
    pub fn races(&self) -> &[OnTheFlyRace] {
        &self.races
    }

    /// Number of read records discarded because of
    /// [`OnTheFlyConfig::read_history_limit`].
    ///
    /// Each dropped read is a *potential missed race*: a later write to
    /// the same location can no longer be checked against it, so a
    /// non-zero value means the reported race set may be incomplete
    /// (never unsound — every race reported is real). The counter is
    /// cumulative over the detector's lifetime and survives
    /// [`finish`](OnTheFly::finish); only [`reset`](OnTheFly::reset)
    /// zeroes it. Experiment E9 sweeps the history bound against this
    /// counter to chart the paper's accuracy-vs-space trade-off.
    pub fn dropped_reads(&self) -> u64 {
        self.dropped_reads
    }

    /// Approximate bytes of detector state — the "memory instead of
    /// trace files" cost on-the-fly detection pays (experiment E9).
    ///
    /// Counts the per-processor vector clocks, the per-location
    /// synchronization clocks, and every buffered access record
    /// (`last_write` + bounded read history per location), using
    /// `size_of`-based estimates. It is an *estimate*: allocator
    /// overhead and `HashMap` bucket slack are not modeled, so treat it
    /// as a growth signal (compare two readings), not a byte-accurate
    /// audit. Grows monotonically between [`reset`](OnTheFly::reset)s
    /// except when a write prunes happened-before reads.
    pub fn approx_memory_bytes(&self) -> usize {
        let clock_bytes: usize = self.clocks.iter().map(VectorClock::approx_bytes).sum();
        let sync_bytes: usize = self.sync_clocks.values().map(|v| 16 + v.approx_bytes()).sum();
        let loc_bytes: usize = self
            .locations
            .values()
            .map(|s| {
                48 + (s.reads.len() + usize::from(s.last_write.is_some()))
                    * std::mem::size_of::<AccessRecord>()
            })
            .sum();
        clock_bytes + sync_bytes + loc_bytes
    }

    /// Takes the detected races (in detection order), leaving the
    /// detector's clocks and access history intact.
    ///
    /// The detector remains usable: more accesses can be fed and later
    /// races will still be detected against the retained history. To
    /// start over for a fresh execution, call
    /// [`reset`](OnTheFly::reset) instead — `finish` used to consume
    /// the detector, which blocked exactly that reuse in long-lived
    /// sessions.
    pub fn finish(&mut self) -> Vec<OnTheFlyRace> {
        std::mem::take(&mut self.races)
    }

    /// Clears all state — clocks, operation counters, access history,
    /// pending races, and the [`dropped_reads`](OnTheFly::dropped_reads)
    /// counter — returning the detector to its just-constructed state
    /// (configuration and processor count are kept).
    pub fn reset(&mut self) {
        let procs = self.clocks.len();
        self.clocks.clear();
        self.clocks.resize_with(procs, VectorClock::new);
        self.op_counters.clear();
        self.op_counters.resize(procs, 0);
        self.locations.clear();
        self.sync_clocks.clear();
        self.races.clear();
        self.dropped_reads = 0;
    }

    fn ensure_proc(&mut self, proc: ProcId) {
        if proc.index() >= self.clocks.len() {
            self.clocks.resize_with(proc.index() + 1, VectorClock::new);
            self.op_counters.resize(proc.index() + 1, 0);
        }
    }

    fn assign(&mut self, proc: ProcId) -> OpId {
        let seq = self.op_counters[proc.index()];
        self.op_counters[proc.index()] += 1;
        OpId::new(proc, seq)
    }

    fn report(&mut self, earlier: AccessRecord, later: OpId, loc: Location, later_sync: bool) {
        if let Some(max) = self.config.max_races {
            if self.races.len() >= max {
                return;
            }
        }
        let kind = match (earlier.sync, later_sync) {
            (false, false) => RaceKind::DataData,
            // Two synchronization operations never form a *data* race
            // (Definition 2.4); an on-the-fly debugger reports data races
            // only.
            (true, true) => return,
            _ => RaceKind::DataSync,
        };
        self.races.push(OnTheFlyRace { earlier: earlier.op, later, loc, kind });
    }

    /// `true` iff the recorded access happened-before the current
    /// operation of `proc`.
    fn ordered_before(&self, rec: &AccessRecord, proc: ProcId) -> bool {
        rec.time <= self.clocks[proc.index()].get(rec.op.proc)
    }

    fn check_read(&mut self, proc: ProcId, loc: Location, op: OpId, sync: bool) {
        let Some(state) = self.locations.get(&loc) else { return };
        if let Some(w) = state.last_write {
            if w.op.proc != proc && !self.ordered_before(&w, proc) {
                self.report(w, op, loc, sync);
            }
        }
    }

    fn check_write(&mut self, proc: ProcId, loc: Location, op: OpId, sync: bool) {
        let Some(state) = self.locations.get(&loc) else { return };
        let mut hits: Vec<AccessRecord> = Vec::new();
        if let Some(w) = state.last_write {
            if w.op.proc != proc && !self.ordered_before(&w, proc) {
                hits.push(w);
            }
        }
        for r in &state.reads {
            if r.op.proc != proc && !self.ordered_before(r, proc) {
                hits.push(*r);
            }
        }
        for h in hits {
            self.report(h, op, loc, sync);
        }
    }

    fn record_read(&mut self, proc: ProcId, loc: Location, op: OpId, sync: bool) {
        let time = self.clocks[proc.index()].get(proc);
        let state = self.locations.entry(loc).or_default();
        state.reads.push(AccessRecord { op, time, sync });
        if let Some(limit) = self.config.read_history_limit {
            while state.reads.len() > limit {
                state.reads.remove(0);
                state.dropped_reads += 1;
                self.dropped_reads += 1;
            }
        }
    }

    fn record_write(&mut self, proc: ProcId, loc: Location, op: OpId, sync: bool) {
        let time = self.clocks[proc.index()].get(proc);
        let state = self.locations.entry(loc).or_default();
        state.last_write = Some(AccessRecord { op, time, sync });
        // Reads that happened-before this write can no longer race with
        // anything that happens after it; drop the ones ordered before us
        // to bound growth even without an explicit limit.
        let clock = &self.clocks[proc.index()];
        state.reads.retain(|r| r.time > clock.get(r.op.proc));
    }
}

impl TraceSink for OnTheFly {
    fn data_access(
        &mut self,
        proc: ProcId,
        loc: Location,
        kind: AccessKind,
        _value: Value,
        _observed: Option<OpId>,
    ) -> OpId {
        self.ensure_proc(proc);
        let op = self.assign(proc);
        self.clocks[proc.index()].tick(proc);
        match kind {
            AccessKind::Read => {
                self.check_read(proc, loc, op, false);
                self.record_read(proc, loc, op, false);
            }
            AccessKind::Write => {
                self.check_write(proc, loc, op, false);
                self.record_write(proc, loc, op, false);
            }
        }
        op
    }

    fn sync_access(
        &mut self,
        proc: ProcId,
        loc: Location,
        kind: AccessKind,
        role: SyncRole,
        _value: Value,
        _observed_release: Option<OpId>,
    ) -> OpId {
        self.ensure_proc(proc);
        let op = self.assign(proc);
        self.clocks[proc.index()].tick(proc);
        let transfers = match self.config.pairing {
            PairingPolicy::ByRole => match kind {
                AccessKind::Write => role.is_release(),
                AccessKind::Read => role.is_acquire(),
            },
            PairingPolicy::AllSync => true,
        };
        match kind {
            AccessKind::Read => {
                // Join *before* the race check: the acquire is ordered
                // after the releases it synchronizes with, and must not
                // be reported as racing with them.
                if transfers {
                    if let Some(sc) = self.sync_clocks.get(&loc) {
                        let sc = sc.clone();
                        self.clocks[proc.index()].join(&sc);
                    }
                }
                self.check_read(proc, loc, op, true);
                self.record_read(proc, loc, op, true);
            }
            AccessKind::Write => {
                self.check_write(proc, loc, op, true);
                if transfers {
                    let clock = self.clocks[proc.index()].clone();
                    self.sync_clocks.entry(loc).or_default().join(&clock);
                }
                self.record_write(proc, loc, op, true);
            }
        }
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    fn detector() -> OnTheFly {
        OnTheFly::new(2, OnTheFlyConfig::default())
    }

    #[test]
    fn detects_write_read_race() {
        let mut d = detector();
        d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        d.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let races = d.finish();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::DataData);
        assert_eq!(races[0].loc, l(0));
    }

    #[test]
    fn detects_read_write_and_write_write_races() {
        let mut d = detector();
        d.data_access(p(0), l(0), AccessKind::Read, Value::ZERO, None);
        d.data_access(p(1), l(0), AccessKind::Write, Value::new(1), None);
        assert_eq!(d.races().len(), 1, "read-write");
        d.data_access(p(0), l(0), AccessKind::Write, Value::new(2), None);
        // P0's write races with P1's write.
        assert_eq!(d.races().len(), 2, "write-write added");
    }

    #[test]
    fn release_acquire_orders_accesses() {
        let mut d = detector();
        d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        d.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        d.sync_access(p(1), l(9), AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        d.data_access(p(1), l(0), AccessKind::Read, Value::new(1), None);
        assert!(d.finish().is_empty(), "properly synchronized: no race");
    }

    #[test]
    fn unpaired_sync_roles_do_not_order_by_role() {
        // Sync write without release role transfers nothing under ByRole.
        let mut d = detector();
        d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        d.sync_access(p(0), l(9), AccessKind::Write, SyncRole::None, Value::new(1), None);
        d.sync_access(p(1), l(9), AccessKind::Read, SyncRole::Acquire, Value::new(1), None);
        d.data_access(p(1), l(0), AccessKind::Read, Value::new(1), None);
        assert_eq!(d.finish().len(), 1);

        // Under AllSync the same trace is ordered.
        let mut d = OnTheFly::new(
            2,
            OnTheFlyConfig { pairing: PairingPolicy::AllSync, ..OnTheFlyConfig::default() },
        );
        d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        d.sync_access(p(0), l(9), AccessKind::Write, SyncRole::None, Value::new(1), None);
        d.sync_access(p(1), l(9), AccessKind::Read, SyncRole::Acquire, Value::new(1), None);
        d.data_access(p(1), l(0), AccessKind::Read, Value::new(1), None);
        assert!(d.finish().is_empty());
    }

    #[test]
    fn same_processor_accesses_never_race() {
        let mut d = detector();
        d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        d.data_access(p(0), l(0), AccessKind::Read, Value::new(1), None);
        d.data_access(p(0), l(0), AccessKind::Write, Value::new(2), None);
        assert!(d.finish().is_empty());
    }

    #[test]
    fn data_sync_race_detected() {
        let mut d = detector();
        d.data_access(p(0), l(9), AccessKind::Write, Value::new(1), None);
        d.sync_access(p(1), l(9), AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        let races = d.finish();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::DataSync);
    }

    #[test]
    fn bounded_history_misses_races() {
        // Three readers, then a racing writer. With history limit 1, two
        // of the three write-read races go unreported.
        let config = OnTheFlyConfig { read_history_limit: Some(1), ..OnTheFlyConfig::default() };
        let mut d = OnTheFly::new(4, config);
        for i in 0..3 {
            d.data_access(p(i), l(0), AccessKind::Read, Value::ZERO, None);
        }
        d.data_access(p(3), l(0), AccessKind::Write, Value::new(1), None);
        assert_eq!(d.races().len(), 1, "only the remembered read races");
        assert_eq!(d.dropped_reads(), 2);

        // Unbounded history catches all three.
        let mut d = OnTheFly::new(4, OnTheFlyConfig::default());
        for i in 0..3 {
            d.data_access(p(i), l(0), AccessKind::Read, Value::ZERO, None);
        }
        d.data_access(p(3), l(0), AccessKind::Write, Value::new(1), None);
        assert_eq!(d.races().len(), 3);
        assert_eq!(d.dropped_reads(), 0);
    }

    #[test]
    fn max_races_caps_reporting() {
        let config = OnTheFlyConfig { max_races: Some(1), ..OnTheFlyConfig::default() };
        let mut d = OnTheFly::new(3, config);
        d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        d.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        d.data_access(p(2), l(0), AccessKind::Read, Value::ZERO, None);
        assert_eq!(d.finish().len(), 1);
    }

    #[test]
    fn memory_accounting_grows_with_state() {
        let mut d = detector();
        let before = d.approx_memory_bytes();
        for i in 0..50 {
            d.data_access(p(0), l(i), AccessKind::Write, Value::new(1), None);
        }
        assert!(d.approx_memory_bytes() > before);
    }

    #[test]
    fn display() {
        let mut d = detector();
        d.data_access(p(0), l(3), AccessKind::Write, Value::new(1), None);
        d.data_access(p(1), l(3), AccessKind::Read, Value::ZERO, None);
        let races = d.finish();
        assert_eq!(races[0].to_string(), "<P0#0, P1#0> on m[3] (data-data)");
    }

    #[test]
    fn finish_drains_races_and_reset_reuses_the_detector() {
        let mut d = detector();
        d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        d.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        assert_eq!(d.finish().len(), 1);
        assert!(d.races().is_empty(), "finish drains the race buffer");
        // History survives finish: a third processor's read still races
        // with the retained write.
        d.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        assert_eq!(d.finish().len(), 1, "detector stays live after finish");

        // reset() forgets everything: the same read is now race-free.
        d.reset();
        assert_eq!(d.dropped_reads(), 0);
        d.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        assert!(d.finish().is_empty(), "reset cleared the write history");
        // Operation ids restart from zero after reset.
        let op = d.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        assert_eq!(op, OpId::new(p(0), 0));
    }

    #[test]
    fn reset_detector_reports_byte_identical_to_fresh_on_a_second_trace() {
        // The regression this pins: reset() must return the detector to
        // its just-constructed state, so analyzing trace B after
        // (trace A, reset) renders exactly what a fresh detector
        // renders on B — operation ids, race order, drop counters, all
        // of it. Trace A deliberately touches every piece of state:
        // sync clocks, read history, a dropped read, pending races.
        let trace_a = |d: &mut OnTheFly| {
            d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
            d.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
            d.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
            d.sync_access(p(1), l(9), AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
            d.data_access(p(1), l(1), AccessKind::Read, Value::ZERO, None);
            d.data_access(p(0), l(1), AccessKind::Read, Value::ZERO, None);
            d.data_access(p(0), l(2), AccessKind::Write, Value::new(2), None);
        };
        let trace_b = |d: &mut OnTheFly| {
            d.data_access(p(1), l(2), AccessKind::Write, Value::new(7), None);
            d.data_access(p(0), l(2), AccessKind::Read, Value::ZERO, None);
            d.sync_access(p(1), l(8), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
            d.data_access(p(0), l(0), AccessKind::Write, Value::new(3), None);
            d.sync_access(p(0), l(8), AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
            d.data_access(p(1), l(0), AccessKind::Write, Value::new(4), None);
        };
        let config = OnTheFlyConfig { read_history_limit: Some(1), ..OnTheFlyConfig::default() };

        let mut fresh = OnTheFly::new(2, config.clone());
        trace_b(&mut fresh);
        let expected = (format!("{:?}", fresh.finish()), fresh.dropped_reads());

        let mut reused = OnTheFly::new(2, config);
        trace_a(&mut reused);
        assert!(!reused.races().is_empty(), "trace A must dirty the race buffer");
        assert!(reused.dropped_reads() > 0, "trace A must dirty the drop counter");
        reused.reset();
        trace_b(&mut reused);
        let actual = (format!("{:?}", reused.finish()), reused.dropped_reads());
        assert_eq!(actual, expected, "reset must be indistinguishable from construction");
    }

    #[test]
    fn ordered_reads_are_pruned_on_write() {
        let mut d = detector();
        // P1 reads; P1 releases; P0 acquires and writes: the read is
        // ordered before the write and gets pruned, not raced with.
        d.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        d.sync_access(p(1), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        d.sync_access(p(0), l(9), AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        assert!(d.races().is_empty());
        let state = d.locations.get(&l(0)).unwrap();
        assert!(state.reads.is_empty(), "ordered read pruned");
    }
}
