//! Operation-granularity analysis (the paper's Definitions 2.2–2.4 and
//! 3.3, stated on individual memory operations).
//!
//! The production pipeline works on events (Section 4.1); this module
//! implements the same theory at the exact granularity the definitions
//! are written at. It exists for three reasons:
//!
//! 1. **Cross-validation** — on small programs, every event-level data
//!    race must correspond to at least one operation-level data race and
//!    vice versa (an integration test enforces this).
//! 2. **Theorem checking** — the model-checking oracle in `wmrd-verify`
//!    compares the races of weak executions against enumerated
//!    sequentially consistent executions at operation granularity.
//! 3. **Cost baseline** — operation-level tracing is what Section 4.1
//!    calls impractical; the trace-size ablation (E8) quantifies that
//!    against event-level bit-vector tracing.

use std::collections::{HashMap, HashSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use wmrd_trace::{AccessKind, Location, MemOp, OpId, OpTrace};

use crate::{AnalysisError, DiGraph, PairingPolicy, RaceKind, Reachability};

/// A race between two individual memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpRace {
    /// First operation (smaller id).
    pub a: OpId,
    /// Second operation.
    pub b: OpId,
    /// The location both access.
    pub loc: Location,
    /// Data/sync classification.
    pub kind: RaceKind,
}

impl OpRace {
    /// `true` iff at least one participant is a data operation.
    pub fn is_data_race(self) -> bool {
        self.kind.is_data_race()
    }
}

impl fmt::Display for OpRace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}> on {} ({})", self.a, self.b, self.loc, self.kind)
    }
}

/// The operation-level hb1 analysis of one execution.
#[derive(Debug)]
pub struct OpAnalysis {
    nodes: Vec<OpId>,
    index: HashMap<OpId, u32>,
    reach: Reachability,
    aug_reach: Reachability,
    races: Vec<OpRace>,
    so1_edge_count: usize,
}

impl OpAnalysis {
    /// Builds hb1 over operations, finds all races, and builds the
    /// operation-level augmented graph.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::DanglingRelease`] if a sync read's
    /// `observed_write` cannot be resolved to a recorded sync write.
    pub fn analyze(trace: &OpTrace, policy: PairingPolicy) -> Result<Self, AnalysisError> {
        let mut nodes = Vec::with_capacity(trace.num_ops());
        let mut index = HashMap::with_capacity(trace.num_ops());
        for op in trace.iter() {
            index.insert(op.id, nodes.len() as u32);
            nodes.push(op.id);
        }
        let mut graph = DiGraph::new(nodes.len());
        // Program order.
        for pi in 0..trace.num_procs() {
            let proc = wmrd_trace::ProcId::new(pi as u16);
            if let Some(ops) = trace.proc_ops(proc) {
                for pair in ops.windows(2) {
                    graph.add_edge(index[&pair[0].id], index[&pair[1].id]);
                }
            }
        }
        // so1: release -> acquire via observed_write.
        let mut so1_edge_count = 0;
        for op in trace.iter() {
            if !op.is_sync() || op.kind != AccessKind::Read {
                continue;
            }
            let Some(writer_id) = op.observed_write else { continue };
            let writer = trace.op(writer_id).ok_or(AnalysisError::DanglingRelease {
                reader: wmrd_trace::EventId::new(op.id.proc, op.id.seq),
                release: writer_id,
            })?;
            if !writer.is_sync() {
                continue; // a data write's value reached a sync read: no pairing
            }
            let pairs = match policy {
                PairingPolicy::ByRole => {
                    writer.class.sync_role().is_some_and(|r| r.is_release())
                        && op.class.sync_role().is_some_and(|r| r.is_acquire())
                }
                PairingPolicy::AllSync => true,
            };
            if pairs {
                graph.add_edge(index[&writer.id], index[&op.id]);
                so1_edge_count += 1;
            }
        }
        let reach = Reachability::compute(&graph);

        // Races: per-location writer × accessor, concurrent pairs.
        let mut writers: HashMap<Location, Vec<&MemOp>> = HashMap::new();
        let mut accessors: HashMap<Location, Vec<&MemOp>> = HashMap::new();
        for op in trace.iter() {
            accessors.entry(op.loc).or_default().push(op);
            if op.kind == AccessKind::Write {
                writers.entry(op.loc).or_default().push(op);
            }
        }
        let mut seen: HashSet<(OpId, OpId)> = HashSet::new();
        let mut races = Vec::new();
        for (loc, ws) in &writers {
            let Some(accs) = accessors.get(loc) else { continue };
            for w in ws {
                for x in accs {
                    if w.id == x.id || w.id.proc == x.id.proc {
                        continue;
                    }
                    if w.kind == AccessKind::Read && x.kind == AccessKind::Read {
                        continue;
                    }
                    let (a, b) = if w.id < x.id { (*w, *x) } else { (*x, *w) };
                    if !seen.insert((a.id, b.id)) {
                        continue;
                    }
                    let (na, nb) = (index[&a.id], index[&b.id]);
                    if reach.query(na, nb) || reach.query(nb, na) {
                        continue;
                    }
                    let kind = match (a.is_sync(), b.is_sync()) {
                        (false, false) => RaceKind::DataData,
                        (true, true) => RaceKind::SyncSync,
                        _ => RaceKind::DataSync,
                    };
                    races.push(OpRace { a: a.id, b: b.id, loc: *loc, kind });
                }
            }
        }
        races.sort_by_key(|r| (r.a, r.b));

        // Augmented graph: hb edges + double edges per data race.
        let mut aug = DiGraph::new(nodes.len());
        for v in 0..nodes.len() as u32 {
            for &w in graph.successors(v) {
                aug.add_edge(v, w);
            }
        }
        for race in races.iter().filter(|r| r.is_data_race()) {
            aug.add_edge(index[&race.a], index[&race.b]);
            aug.add_edge(index[&race.b], index[&race.a]);
        }
        let aug_reach = Reachability::compute(&aug);

        Ok(OpAnalysis { nodes, index, reach, aug_reach, races, so1_edge_count })
    }

    /// Every race of the execution, sorted.
    pub fn races(&self) -> &[OpRace] {
        &self.races
    }

    /// The data races only.
    pub fn data_races(&self) -> impl Iterator<Item = &OpRace> {
        self.races.iter().filter(|r| r.is_data_race())
    }

    /// Number of `so1` edges found.
    pub fn so1_edge_count(&self) -> usize {
        self.so1_edge_count
    }

    /// Number of operations analyzed.
    pub fn num_ops(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff `a` hb1-precedes `b`.
    pub fn ordered(&self, a: OpId, b: OpId) -> bool {
        match (self.index.get(&a), self.index.get(&b)) {
            (Some(&na), Some(&nb)) => self.reach.query(na, nb),
            _ => false,
        }
    }

    /// `true` iff race `i` affects operation `z` (Definition 3.3, via G′
    /// reachability).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn affects_op(&self, i: usize, z: OpId) -> bool {
        let race = self.races[i];
        if race.a == z || race.b == z {
            return true;
        }
        let Some(&nz) = self.index.get(&z) else { return false };
        let (na, nb) = (self.index[&race.a], self.index[&race.b]);
        self.aug_reach.query(na, nz) || self.aug_reach.query(nb, nz)
    }

    /// `true` iff race `i` affects race `j`.
    pub fn affects_race(&self, i: usize, j: usize) -> bool {
        let rj = self.races[j];
        self.affects_op(i, rj.a) || self.affects_op(i, rj.b)
    }

    /// Per-processor boundaries of the execution's **race-free prefix**:
    /// for each processor, the sequence number of its first operation
    /// that participates in a data race or is hb1/G′-after one (the
    /// processor's operation count when no operation qualifies).
    ///
    /// On hardware obeying Condition 3.4, sequential consistency is
    /// preserved "at least until a data race actually occurs", so the
    /// race-free prefix must always be explainable by an SC interleaving
    /// — the checkable core of Definition 3.2 (the full SCP additionally
    /// contains the first races themselves, whose membership is verified
    /// separately through Theorem 4.2's cross-execution check).
    pub fn race_free_boundaries(&self) -> Vec<u32> {
        let num_procs = self.nodes.iter().map(|id| id.proc.index() + 1).max().unwrap_or(0);
        let mut boundaries: Vec<u32> = (0..num_procs)
            .map(|pi| self.nodes.iter().filter(|id| id.proc.index() == pi).count() as u32)
            .collect();
        let data_races: Vec<usize> =
            (0..self.races.len()).filter(|&i| self.races[i].is_data_race()).collect();
        for &ri in &data_races {
            for id in &self.nodes {
                if self.affects_op(ri, *id) {
                    let b = &mut boundaries[id.proc.index()];
                    *b = (*b).min(id.seq);
                }
            }
        }
        boundaries
    }

    /// Indices of data races not affected by any *other* data race — the
    /// "first data races" Condition 3.4(2) guarantees occur in a
    /// sequentially consistent prefix.
    pub fn unaffected_data_races(&self) -> Vec<usize> {
        let data: Vec<usize> =
            (0..self.races.len()).filter(|&i| self.races[i].is_data_race()).collect();
        data.iter()
            .copied()
            .filter(|&j| data.iter().all(|&i| i == j || !self.affects_race(i, j)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmrd_trace::{OpClass, ProcId, SyncRole, TraceSink, Value};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    fn recorder(n: usize) -> wmrd_trace::OpRecorder {
        wmrd_trace::OpRecorder::new(n)
    }

    #[test]
    fn finds_operation_level_races() {
        let mut r = recorder(2);
        // Figure 1a at op granularity: write x / write y vs read y / read x.
        r.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        r.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        r.data_access(p(1), l(1), AccessKind::Read, Value::ZERO, None);
        r.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let a = OpAnalysis::analyze(&r.finish(), PairingPolicy::ByRole).unwrap();
        // Unlike the event level (one race), op level sees both races.
        assert_eq!(a.races().len(), 2);
        assert!(a.races().iter().all(|r| r.kind == RaceKind::DataData));
        assert_eq!(a.num_ops(), 4);
    }

    #[test]
    fn pairing_orders_operations() {
        let mut r = recorder(2);
        r.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        let rel =
            r.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        r.sync_access(p(1), l(9), AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel));
        r.data_access(p(1), l(0), AccessKind::Read, Value::new(1), None);
        let a = OpAnalysis::analyze(&r.finish(), PairingPolicy::ByRole).unwrap();
        assert_eq!(a.so1_edge_count(), 1);
        assert!(a.races().is_empty());
        assert!(a.ordered(OpId::new(p(0), 0), OpId::new(p(1), 1)));
        assert!(!a.ordered(OpId::new(p(1), 1), OpId::new(p(0), 0)));
    }

    #[test]
    fn data_write_value_reaching_sync_read_is_not_pairing() {
        let mut r = recorder(2);
        let w = r.data_access(p(0), l(9), AccessKind::Write, Value::new(1), None);
        r.sync_access(p(1), l(9), AccessKind::Read, SyncRole::Acquire, Value::new(1), Some(w));
        let a = OpAnalysis::analyze(&r.finish(), PairingPolicy::ByRole).unwrap();
        assert_eq!(a.so1_edge_count(), 0);
        // And they race (data-sync conflict, unordered).
        assert_eq!(a.races().len(), 1);
        assert_eq!(a.races()[0].kind, RaceKind::DataSync);
    }

    #[test]
    fn unaffected_races_at_op_level() {
        let mut r = recorder(2);
        // Race 1 on x, then (no pairing) race 2 on y.
        r.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        r.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        r.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        r.data_access(p(1), l(1), AccessKind::Read, Value::ZERO, None);
        let a = OpAnalysis::analyze(&r.finish(), PairingPolicy::ByRole).unwrap();
        assert_eq!(a.races().len(), 2);
        let unaffected = a.unaffected_data_races();
        assert_eq!(unaffected.len(), 1, "the x race is the only first race");
        assert_eq!(a.races()[unaffected[0]].loc, l(0));
        assert!(a.affects_race(unaffected[0], 1 - unaffected[0]));
    }

    #[test]
    fn affects_own_successors() {
        let mut r = recorder(2);
        r.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        r.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        r.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let a = OpAnalysis::analyze(&r.finish(), PairingPolicy::ByRole).unwrap();
        assert_eq!(a.races().len(), 1);
        assert!(a.affects_op(0, OpId::new(p(0), 0)), "involves");
        assert!(a.affects_op(0, OpId::new(p(0), 1)), "po successor");
        assert!(!a.affects_op(0, OpId::new(p(9), 0)), "unknown op unaffected");
    }

    #[test]
    fn dangling_observed_write_is_error() {
        let mut t = OpTrace::new(1);
        t.push(
            p(0),
            MemOp {
                id: OpId::new(p(0), 0),
                loc: l(9),
                kind: AccessKind::Read,
                class: OpClass::Sync(SyncRole::Acquire),
                value: Value::ZERO,
                observed_write: Some(OpId::new(p(0), 77)),
            },
        )
        .unwrap();
        assert!(matches!(
            OpAnalysis::analyze(&t, PairingPolicy::ByRole),
            Err(AnalysisError::DanglingRelease { .. })
        ));
    }

    #[test]
    fn display() {
        let race = OpRace {
            a: OpId::new(p(0), 1),
            b: OpId::new(p(1), 2),
            loc: l(5),
            kind: RaceKind::DataData,
        };
        assert_eq!(race.to_string(), "<P0#1, P1#2> on m[5] (data-data)");
    }
}
