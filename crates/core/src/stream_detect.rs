//! Streaming race detection with epoch-compressed clocks — the engine
//! behind the daemon's `STREAM`/`FEED`/`CLOSE` verbs.
//!
//! The [`OnTheFly`](crate::OnTheFly) detector already runs during
//! execution, but it was built as the paper's Section 5 *comparison
//! point* and deliberately inherits the classic on-the-fly
//! inaccuracies: bounded read history and per-location synchronization
//! clocks that order an acquire after *every* earlier release of the
//! location. A serving daemon needs the opposite trade-off — results
//! that exactly match the post-mortem analysis, delivered while the
//! trace is still arriving. [`StreamDetector`] provides that:
//!
//! * **Exact pairing.** Release clocks are snapshotted per operation
//!   and an acquire joins only the clock of the release it *observed*
//!   (the `observed` field carried by the stream format), which is
//!   precisely the `so1` relation [`HbGraph`](crate::HbGraph) builds
//!   post-mortem.
//! * **Epoch compression.** Per location, while only one processor has
//!   ever touched it, state is a fixed-size *exclusive* record and the
//!   hot path does no vector-clock work at all — the common case for
//!   thread-local data. The first access from a second processor
//!   *promotes* the location to a shared table keyed by processor
//!   (counted by [`promotions`](StreamDetector::promotions)).
//! * **Race-identity granularity.** Per processor and location only the
//!   *latest* access of each (read/write × data/sync) class is kept —
//!   four slots, not an unbounded history. That is lossy at the
//!   operation level but lossless at the [`RaceKey`] level, which is
//!   what the catalog aggregates: see *Why this equals post-mortem*
//!   below.
//!
//! # Why streamed ≡ post-mortem (DESIGN.md §7 has the long form)
//!
//! Feed order is the simulator's sink order, which linearly extends
//! happens-before-1 — in particular a release is always fed before any
//! acquire that observed it. Suppose an older access `X` of some class
//! was overwritten by a same-class `X′` before the conflicting `Y`
//! arrives. If `X` races `Y`, then `X′` races `Y` too: `X′` ordered
//! before `Y` would (by `X →po X′`) order `X` before `Y`, and `Y`
//! cannot be ordered before `X′` because `X′` was fed earlier. Since
//! `X` and `X′` share processor, kind and sync class, `⟨X′,Y⟩` has the
//! same [`RaceKey`] as `⟨X,Y⟩` — keeping only the latest record loses
//! no keys. Conversely every pair reported here is hb1-concurrent and
//! conflicting, so post-mortem [`detect_races`](crate::detect_races)
//! (which reports *every* such event pair) finds it too.
//!
//! # Memory bound per session
//!
//! With `P` processors, `L` locations touched and `S` sync writes, the
//! detector holds `P` vector clocks, at most `4·P` class records per
//! *shared* location (exclusive locations are O(1)), and one snapshot
//! clock per sync write: `O(P² + L·P + S·P)` words. There is no
//! unbounded read history and nothing grows with data-access count —
//! the property that makes long-lived streaming sessions safe.

use std::collections::{BTreeSet, HashMap};

use wmrd_trace::{AccessKind, Location, OpId, ProcId, StreamRecord, SyncRole, TraceSink, Value};

use crate::{OnTheFlyRace, PairingPolicy, RaceKey, RaceKind, SideKey, VectorClock};

/// Classes per (processor, location): read/write × data/sync.
const CLASSES: usize = 4;

/// Index of the (kind, sync) class: writes occupy the upper half, sync
/// accesses the odd slots.
fn class_index(kind: AccessKind, sync: bool) -> usize {
    (matches!(kind, AccessKind::Write) as usize) * 2 + usize::from(sync)
}

/// Kind and sync flag encoded by a class index.
fn class_meta(idx: usize) -> (AccessKind, bool) {
    let kind = if idx >= 2 { AccessKind::Write } else { AccessKind::Read };
    (kind, idx % 2 == 1)
}

/// The latest access of one class: the operation id (the race witness)
/// and the accessor's own clock component at access time (the epoch the
/// ordering test compares against).
#[derive(Debug, Clone, Copy)]
struct ClassRecord {
    op: OpId,
    time: u64,
}

type ClassSlots = [Option<ClassRecord>; CLASSES];

/// Per-location state: exclusive (one processor so far, fixed size) or
/// shared (promoted on the first cross-processor access).
#[derive(Debug)]
enum LocState {
    Exclusive { owner: ProcId, classes: ClassSlots },
    Shared { procs: HashMap<ProcId, ClassSlots> },
}

/// A resumable, epoch-compressed race detector for streaming sessions.
///
/// Feed it chunks of decoded [`StreamRecord`]s (it is also a plain
/// [`TraceSink`], so a simulator can drive it directly); each
/// [`feed`](StreamDetector::feed) call returns the races whose *second*
/// access arrived in that chunk — detection latency is one event, not
/// one trace. Races are deduplicated by [`RaceKey`], the same
/// execution-independent identity the catalog aggregates, so the key
/// set after the final chunk equals the post-mortem key set for the
/// same trace (asserted over the whole catalog by `tests/stream.rs`).
///
/// # Example
///
/// ```
/// use wmrd_core::{PairingPolicy, StreamDetector};
/// use wmrd_trace::{AccessKind, Location, ProcId, TraceSink, Value};
///
/// let mut d = StreamDetector::new(2, PairingPolicy::ByRole);
/// let x = Location::new(0);
/// d.data_access(ProcId::new(0), x, AccessKind::Write, Value::new(1), None);
/// d.data_access(ProcId::new(1), x, AccessKind::Read, Value::new(0), None);
/// assert_eq!(d.take_races().len(), 1); // reported the moment the read lands
/// assert_eq!(d.race_keys().len(), 1);
/// ```
#[derive(Debug)]
pub struct StreamDetector {
    pairing: PairingPolicy,
    /// One clock per processor: what that processor knows happened.
    clocks: Vec<VectorClock>,
    /// Positional operation-id assignment, mirroring every other sink.
    op_counters: Vec<u32>,
    locations: HashMap<Location, LocState>,
    /// Clock snapshot (and role) of every sync write, keyed by its
    /// operation id — the lookup table for exact `so1` pairing.
    release_clocks: HashMap<OpId, (SyncRole, VectorClock)>,
    /// Every race identity seen so far (the dedup set and the result).
    keys: BTreeSet<RaceKey>,
    /// Witnesses for keys found since the last `feed`/`take_races`.
    pending: Vec<OnTheFlyRace>,
    events: u64,
    promotions: u64,
}

impl StreamDetector {
    /// Creates a detector for `num_procs` processors (grows on demand if
    /// the stream mentions more).
    pub fn new(num_procs: usize, pairing: PairingPolicy) -> Self {
        StreamDetector {
            pairing,
            clocks: vec![VectorClock::new(); num_procs],
            op_counters: vec![0; num_procs],
            locations: HashMap::new(),
            release_clocks: HashMap::new(),
            keys: BTreeSet::new(),
            pending: Vec::new(),
            events: 0,
            promotions: 0,
        }
    }

    /// Applies a chunk of records and returns the races detected *by
    /// this chunk* — one witness pair per newly seen [`RaceKey`].
    ///
    /// Operation ids are assigned positionally (`n`-th record of
    /// processor `p` is `Pp#n`), exactly as [`StreamRecord::apply`]
    /// documents, so `observed` references into earlier chunks resolve
    /// correctly. The chunking itself is irrelevant: any split of the
    /// same record sequence yields the same accumulated key set
    /// (property-tested in `tests/props.rs`).
    pub fn feed(&mut self, records: &[StreamRecord]) -> Vec<OnTheFlyRace> {
        for r in records {
            r.apply(self);
        }
        self.take_races()
    }

    /// Drains the witnesses accumulated since the last drain (the
    /// non-chunked twin of [`feed`](StreamDetector::feed)).
    pub fn take_races(&mut self) -> Vec<OnTheFlyRace> {
        std::mem::take(&mut self.pending)
    }

    /// Every race identity detected so far, in key order.
    pub fn race_keys(&self) -> &BTreeSet<RaceKey> {
        &self.keys
    }

    /// Operations processed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Locations promoted from the exclusive fast path to the shared
    /// table — the contention measure `stream.epochs_promoted` reports.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Approximate bytes of detector state (same estimate contract as
    /// [`OnTheFly::approx_memory_bytes`](crate::OnTheFly::approx_memory_bytes):
    /// a growth signal, not an audit). Bounded by `O(P² + L·P + S·P)`
    /// words — see the module docs.
    pub fn approx_memory_bytes(&self) -> usize {
        let clock_bytes: usize = self.clocks.iter().map(VectorClock::approx_bytes).sum();
        let release_bytes: usize =
            self.release_clocks.values().map(|(_, v)| 16 + v.approx_bytes()).sum();
        let loc_bytes: usize = self
            .locations
            .values()
            .map(|s| match s {
                LocState::Exclusive { .. } => 16 + std::mem::size_of::<ClassSlots>(),
                LocState::Shared { procs } => {
                    16 + procs.len() * (8 + std::mem::size_of::<ClassSlots>())
                }
            })
            .sum();
        let key_bytes = self.keys.len() * std::mem::size_of::<RaceKey>();
        clock_bytes + release_bytes + loc_bytes + key_bytes
    }

    /// Clears all state, returning the detector to its just-constructed
    /// state (pairing policy and processor count are kept) — session
    /// slots in the daemon are recycled through this.
    pub fn reset(&mut self) {
        let procs = self.clocks.len();
        self.clocks.clear();
        self.clocks.resize_with(procs, VectorClock::new);
        self.op_counters.clear();
        self.op_counters.resize(procs, 0);
        self.locations.clear();
        self.release_clocks.clear();
        self.keys.clear();
        self.pending.clear();
        self.events = 0;
        self.promotions = 0;
    }

    fn ensure_proc(&mut self, proc: ProcId) {
        if proc.index() >= self.clocks.len() {
            self.clocks.resize_with(proc.index() + 1, VectorClock::new);
            self.op_counters.resize(proc.index() + 1, 0);
        }
    }

    fn assign(&mut self, proc: ProcId) -> OpId {
        let seq = self.op_counters[proc.index()];
        self.op_counters[proc.index()] += 1;
        OpId::new(proc, seq)
    }

    /// Checks the access against the location's class records, reports
    /// new race identities, and installs the access as its class's
    /// latest record.
    fn touch(&mut self, proc: ProcId, loc: Location, kind: AccessKind, sync: bool, op: OpId) {
        self.events += 1;
        let time = self.clocks[proc.index()].get(proc);
        let cls = class_index(kind, sync);
        let rec = ClassRecord { op, time };

        let state = self
            .locations
            .entry(loc)
            .or_insert_with(|| LocState::Exclusive { owner: proc, classes: ClassSlots::default() });
        // Exclusive fast path: the owning processor re-touching its own
        // location cannot race with itself — just refresh the slot.
        if let LocState::Exclusive { owner, classes } = state {
            if *owner == proc {
                classes[cls] = Some(rec);
                return;
            }
            // First cross-processor access: promote to the shared table.
            let mut procs = HashMap::new();
            procs.insert(*owner, std::mem::take(classes));
            *state = LocState::Shared { procs };
            self.promotions += 1;
        }

        // Shared path: test every other processor's class records for
        // conflict + concurrency, then install our own record.
        let LocState::Shared { procs } = state else {
            unreachable!("exclusive same-owner path returned above")
        };
        let clock = &self.clocks[proc.index()];
        let mut hits: Vec<(ClassRecord, AccessKind, bool)> = Vec::new();
        for (&other, slots) in procs.iter() {
            if other == proc {
                continue;
            }
            for (idx, slot) in slots.iter().enumerate() {
                let Some(other_rec) = slot else { continue };
                let (other_kind, other_sync) = class_meta(idx);
                if kind == AccessKind::Read && other_kind == AccessKind::Read {
                    continue; // read-read pairs do not conflict
                }
                if sync && other_sync {
                    continue; // sync-sync is never a *data* race
                }
                if other_rec.time > clock.get(other) {
                    hits.push((*other_rec, other_kind, other_sync));
                }
            }
        }
        for (other_rec, other_kind, other_sync) in hits {
            let key = RaceKey::new(
                loc,
                SideKey { proc: other_rec.op.proc, kind: other_kind, sync: other_sync },
                SideKey { proc, kind, sync },
            );
            if self.keys.insert(key) {
                let race_kind =
                    if other_sync || sync { RaceKind::DataSync } else { RaceKind::DataData };
                self.pending.push(OnTheFlyRace {
                    earlier: other_rec.op,
                    later: op,
                    loc,
                    kind: race_kind,
                });
            }
        }
        procs.entry(proc).or_default()[cls] = Some(rec);
    }
}

impl TraceSink for StreamDetector {
    fn data_access(
        &mut self,
        proc: ProcId,
        loc: Location,
        kind: AccessKind,
        _value: Value,
        _observed: Option<OpId>,
    ) -> OpId {
        self.ensure_proc(proc);
        let op = self.assign(proc);
        self.clocks[proc.index()].tick(proc);
        self.touch(proc, loc, kind, false, op);
        op
    }

    fn sync_access(
        &mut self,
        proc: ProcId,
        loc: Location,
        kind: AccessKind,
        role: SyncRole,
        _value: Value,
        observed_release: Option<OpId>,
    ) -> OpId {
        self.ensure_proc(proc);
        let op = self.assign(proc);
        self.clocks[proc.index()].tick(proc);
        if kind == AccessKind::Read {
            // Exact so1: join only the snapshot of the release this read
            // *observed* — before the race check, so the pair itself is
            // ordered, not racing. An unresolved reference (`None`, or a
            // release the stream never delivered) transfers nothing,
            // matching `so1_edges` post-mortem.
            if let Some(rel) = observed_release {
                if let Some((rel_role, snapshot)) = self.release_clocks.get(&rel) {
                    let transfers = match self.pairing {
                        PairingPolicy::ByRole => rel_role.is_release() && role.is_acquire(),
                        PairingPolicy::AllSync => true,
                    };
                    if transfers {
                        let snapshot = snapshot.clone();
                        self.clocks[proc.index()].join(&snapshot);
                    }
                }
            }
            self.touch(proc, loc, kind, true, op);
        } else {
            self.touch(proc, loc, kind, true, op);
            // Snapshot *after* the tick so the acquire is ordered after
            // this very operation. Every sync write is recorded — the
            // pairing policy decides at join time whether it transfers.
            self.release_clocks.insert(op, (role, self.clocks[proc.index()].clone()));
        }
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{detect_races, event_race_keys, HbGraph, OnTheFly, OnTheFlyConfig, PostMortem};
    use wmrd_trace::{TraceBuilder, TraceSet};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    fn detector() -> StreamDetector {
        StreamDetector::new(2, PairingPolicy::ByRole)
    }

    /// Post-mortem race keys of a trace built by `feed`.
    fn postmortem_keys(trace: &TraceSet) -> BTreeSet<RaceKey> {
        let hb = HbGraph::build(trace, PairingPolicy::ByRole).unwrap();
        event_race_keys(&detect_races(trace, &hb), trace)
    }

    #[test]
    fn detects_race_on_second_access() {
        let mut d = detector();
        d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        assert!(d.take_races().is_empty(), "first access alone cannot race");
        d.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let races = d.take_races();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::DataData);
        assert_eq!(races[0].earlier, OpId::new(p(0), 0));
        assert_eq!(races[0].later, OpId::new(p(1), 0));
    }

    #[test]
    fn same_processor_stays_exclusive_and_race_free() {
        let mut d = detector();
        for i in 0..100 {
            let kind = if i % 2 == 0 { AccessKind::Write } else { AccessKind::Read };
            d.data_access(p(0), l(0), kind, Value::new(1), None);
        }
        assert!(d.take_races().is_empty());
        assert_eq!(d.promotions(), 0, "single-owner location never promotes");
        assert_eq!(d.events(), 100);
        // The second processor's first touch promotes exactly once.
        d.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        assert_eq!(d.promotions(), 1);
        assert_eq!(d.take_races().len(), 1);
    }

    #[test]
    fn exact_pairing_requires_the_observed_release() {
        // With the observed edge: ordered, no race.
        let mut d = detector();
        d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        let rel =
            d.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        d.sync_access(p(1), l(9), AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel));
        d.data_access(p(1), l(0), AccessKind::Read, Value::new(1), None);
        assert!(d.take_races().is_empty(), "observed release-acquire orders the accesses");

        // Without it the detector must NOT assume ordering (this is
        // where the approximate OnTheFly differs: it orders any acquire
        // after any earlier release of the location).
        let mut d = detector();
        d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        d.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        d.sync_access(p(1), l(9), AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        d.data_access(p(1), l(0), AccessKind::Read, Value::new(1), None);
        let races = d.take_races();
        assert_eq!(races.iter().filter(|r| r.loc == l(0)).count(), 1, "{races:?}");
    }

    #[test]
    fn pairing_policy_matches_postmortem_rules() {
        // A sync write with role None transfers nothing under ByRole,
        // everything under AllSync — mirror of so1_edges.
        let run = |pairing| {
            let mut d = StreamDetector::new(2, pairing);
            d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
            let w =
                d.sync_access(p(0), l(9), AccessKind::Write, SyncRole::None, Value::new(1), None);
            d.sync_access(p(1), l(9), AccessKind::Read, SyncRole::Acquire, Value::new(1), Some(w));
            d.data_access(p(1), l(0), AccessKind::Read, Value::new(1), None);
            d.race_keys().iter().filter(|k| k.loc == l(0)).count()
        };
        assert_eq!(run(PairingPolicy::ByRole), 1, "role-less write does not release");
        assert_eq!(run(PairingPolicy::AllSync), 0, "AllSync pairs any observed sync write");
    }

    #[test]
    fn keys_dedup_across_feeds_but_witnesses_are_per_chunk() {
        let mut d = detector();
        let w = StreamRecord {
            sync: false,
            proc: p(0),
            loc: l(0),
            kind: AccessKind::Write,
            role: SyncRole::None,
            value: Value::new(1),
            observed: None,
        };
        let r = StreamRecord { proc: p(1), kind: AccessKind::Read, ..w };
        assert!(d.feed(&[w]).is_empty());
        assert_eq!(d.feed(&[r]).len(), 1, "second access triggers the report");
        // The same source-level pair racing again is the same RaceKey:
        // no duplicate report, the key set stays at one.
        assert!(d.feed(&[w, r]).is_empty());
        assert_eq!(d.race_keys().len(), 1);
        assert_eq!(d.events(), 4);
    }

    #[test]
    fn streamed_keys_equal_postmortem_keys() {
        // Drive identical callbacks into a TraceBuilder (for post-mortem)
        // and the stream detector; the key sets must coincide. Mixes
        // data/sync races, a properly synchronized pair, and a
        // multi-writer location.
        let feed = |s: &mut dyn TraceSink| {
            s.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
            s.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
            let rel =
                s.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
            s.sync_access(p(1), l(9), AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel));
            s.data_access(p(1), l(1), AccessKind::Write, Value::new(2), None);
            s.data_access(p(0), l(1), AccessKind::Write, Value::new(3), None);
            s.data_access(p(0), l(9), AccessKind::Read, Value::ZERO, None); // data-sync
        };
        let mut b = TraceBuilder::new(2);
        feed(&mut b);
        let trace = b.finish();

        let mut d = detector();
        feed(&mut d);

        assert_eq!(*d.race_keys(), postmortem_keys(&trace));
        assert!(!d.race_keys().is_empty());
        // And the one-call driver agrees on the count.
        let report = PostMortem::new(&trace).analyze().unwrap();
        assert_eq!(report.is_race_free(), d.race_keys().is_empty());
    }

    #[test]
    fn latest_record_suffices_for_key_identity() {
        // P0 writes x twice (second overwrites the first's class slot),
        // then P1 reads x: post-mortem sees two racing pairs but ONE
        // key; streaming must report exactly that key.
        let feed = |s: &mut dyn TraceSink| {
            s.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
            s.data_access(p(0), l(0), AccessKind::Write, Value::new(2), None);
            s.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        };
        let mut b = TraceBuilder::new(2);
        feed(&mut b);
        let mut d = detector();
        feed(&mut d);
        let keys = postmortem_keys(&b.finish());
        assert_eq!(keys.len(), 1);
        assert_eq!(*d.race_keys(), keys);
    }

    #[test]
    fn stricter_than_approximate_onthefly() {
        // Two releases on the same sync location; the acquire observed
        // only the FIRST. OnTheFly's per-location sync clock orders the
        // acquire after both (missing the race with the second writer's
        // data); the exact detector does not.
        let feed = |s: &mut dyn TraceSink| {
            let rel0 =
                s.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
            s.data_access(p(1), l(0), AccessKind::Write, Value::new(1), None);
            s.sync_access(p(1), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
            s.sync_access(p(2), l(9), AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel0));
            s.data_access(p(2), l(0), AccessKind::Read, Value::new(1), None);
        };
        let mut approx = OnTheFly::new(3, OnTheFlyConfig::default());
        feed(&mut approx);
        let mut exact = StreamDetector::new(3, PairingPolicy::ByRole);
        feed(&mut exact);
        let mut b = TraceBuilder::new(3);
        feed(&mut b);

        let data_races = |ks: &BTreeSet<RaceKey>| ks.iter().filter(|k| k.loc == l(0)).count();
        assert_eq!(data_races(exact.race_keys()), 1, "exact pairing keeps the race");
        assert_eq!(*exact.race_keys(), postmortem_keys(&b.finish()));
        assert!(
            approx.finish().iter().all(|r| r.loc != l(0)),
            "the approximate detector misses it (the gap this type closes)"
        );
    }

    #[test]
    fn reset_recycles_the_session() {
        let mut d = detector();
        d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        d.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        assert_eq!(d.race_keys().len(), 1);
        let before = d.approx_memory_bytes();
        d.reset();
        assert!(d.race_keys().is_empty());
        assert_eq!((d.events(), d.promotions()), (0, 0));
        assert!(d.approx_memory_bytes() < before);
        // Ids restart and detection works again.
        let op = d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        assert_eq!(op, OpId::new(p(0), 0));
        d.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        assert_eq!(d.take_races().len(), 1);
    }

    #[test]
    fn reset_detector_reports_byte_identical_to_fresh_on_a_second_trace() {
        // The reuse contract: a session recycled with reset() must be
        // indistinguishable from a fresh detector on the next trace —
        // same race keys, same per-chunk witnesses, same event and
        // promotion counts. Trace A dirties every piece of session
        // state: epoch promotions, release clocks, pending pairing,
        // reported keys.
        let trace_a = |d: &mut StreamDetector| {
            d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
            d.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
            let rel =
                d.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
            d.sync_access(p(1), l(9), AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel));
            d.data_access(p(1), l(1), AccessKind::Write, Value::new(2), None);
            d.data_access(p(0), l(1), AccessKind::Write, Value::new(3), None);
        };
        let trace_b = |d: &mut StreamDetector| {
            d.data_access(p(1), l(1), AccessKind::Write, Value::new(5), None);
            d.data_access(p(0), l(1), AccessKind::Read, Value::ZERO, None);
            d.sync_access(p(1), l(8), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
            d.sync_access(p(0), l(8), AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
            d.data_access(p(0), l(0), AccessKind::Write, Value::new(6), None);
            d.data_access(p(1), l(0), AccessKind::Write, Value::new(7), None);
        };
        let render = |d: &mut StreamDetector| {
            let races = d.take_races();
            format!(
                "keys={:?} races={races:?} events={} promotions={}",
                d.race_keys(),
                d.events(),
                d.promotions()
            )
        };

        let mut fresh = detector();
        trace_b(&mut fresh);
        let expected = render(&mut fresh);

        let mut reused = detector();
        trace_a(&mut reused);
        assert!(!reused.race_keys().is_empty(), "trace A must report races");
        assert!(reused.promotions() > 0, "trace A must promote epochs");
        reused.reset();
        trace_b(&mut reused);
        assert_eq!(
            render(&mut reused),
            expected,
            "reset must be indistinguishable from construction"
        );
    }

    #[test]
    fn memory_is_bounded_by_locations_not_accesses() {
        let mut d = detector();
        d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        d.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let after_two = d.approx_memory_bytes();
        // 10k more accesses to the same location: class slots are
        // overwritten in place, so state must not grow.
        for _ in 0..5_000 {
            d.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
            d.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        }
        assert_eq!(d.approx_memory_bytes(), after_two);
        assert_eq!(d.race_keys().len(), 1, "still the one identity");
    }
}
