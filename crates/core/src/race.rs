//! Race detection: conflicting, hb1-unordered event pairs
//! (Definition 2.4 lifted to events, Section 4.1).

use std::collections::{HashMap, HashSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use wmrd_trace::{EventId, LocSet, Location, TraceSet};

use crate::HbGraph;

/// Classification of a race by the kinds of operations involved.
///
/// The paper (Definition 2.4): a race is a **data race** iff at least one
/// participant is a data operation. Races between two synchronization
/// events are detected too (they indicate unordered synchronization) but
/// are not data races and do not enter the augmented graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RaceKind {
    /// Both participants are computation (data) events.
    DataData,
    /// One participant is a computation event, the other a
    /// synchronization event.
    DataSync,
    /// Both participants are synchronization events.
    SyncSync,
}

impl RaceKind {
    /// `true` iff at least one participant is a data operation — the
    /// paper's definition of a *data* race.
    pub fn is_data_race(self) -> bool {
        !matches!(self, RaceKind::SyncSync)
    }
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RaceKind::DataData => "data-data",
            RaceKind::DataSync => "data-sync",
            RaceKind::SyncSync => "sync-sync",
        })
    }
}

/// A detected race `⟨a, b⟩`: two conflicting events not ordered by hb1.
///
/// Pairs are normalized so `a < b` (by processor, then index).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataRace {
    /// First participant (smaller event id).
    pub a: EventId,
    /// Second participant.
    pub b: EventId,
    /// The locations on which the two events conflict.
    pub locations: LocSet,
    /// Data/sync classification.
    pub kind: RaceKind,
}

impl DataRace {
    /// `true` iff `event` is one of the race's participants.
    pub fn involves(&self, event: EventId) -> bool {
        self.a == event || self.b == event
    }

    /// `true` iff this is a data race (at least one data participant).
    pub fn is_data_race(&self) -> bool {
        self.kind.is_data_race()
    }
}

impl fmt::Display for DataRace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}> on {} ({})", self.a, self.b, self.locations, self.kind)
    }
}

/// Counters from one invocation of the race detector: how much
/// candidate-generation work was performed versus how many races
/// survived the happens-before check.
///
/// Deterministic for a fixed trace: candidates are counted after
/// deduplication, so the sequential and the sharded parallel detectors
/// report identical numbers (asserted by tests in
/// [`parallel`](crate::detect_races_parallel)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectStats {
    /// Distinct conflicting cross-processor event pairs examined.
    pub candidate_pairs: u64,
    /// Candidates confirmed hb1-concurrent — the reported races.
    pub races: u64,
}

/// Finds every race of the execution: conflicting event pairs not
/// ordered by hb1.
///
/// Candidate generation is per-location (writer × accessor), so cost
/// scales with actual sharing rather than all event pairs.
pub fn detect_races(trace: &TraceSet, hb: &HbGraph) -> Vec<DataRace> {
    detect_races_with_stats(trace, hb).0
}

/// Like [`detect_races`], additionally returning [`DetectStats`] —
/// the candidate-versus-confirmed counts the observability layer
/// records as `analysis.candidate_pairs` / `analysis.races`.
pub fn detect_races_with_stats(trace: &TraceSet, hb: &HbGraph) -> (Vec<DataRace>, DetectStats) {
    // Per-location access lists.
    let mut writers: HashMap<Location, Vec<EventId>> = HashMap::new();
    let mut accessors: HashMap<Location, Vec<EventId>> = HashMap::new();
    for event in trace.events() {
        let w = event.write_set();
        let r = event.read_set();
        for loc in &w {
            writers.entry(loc).or_default().push(event.id);
            accessors.entry(loc).or_default().push(event.id);
        }
        for loc in &r {
            if !w.contains(loc) {
                accessors.entry(loc).or_default().push(event.id);
            }
        }
    }

    let mut seen: HashSet<(EventId, EventId)> = HashSet::new();
    let mut stats = DetectStats::default();
    let mut races = Vec::new();
    for (loc, ws) in &writers {
        let Some(accs) = accessors.get(loc) else { continue };
        for &w in ws {
            for &x in accs {
                if w == x || w.proc == x.proc {
                    continue; // same event, or po-ordered by definition
                }
                let (a, b) = if w < x { (w, x) } else { (x, w) };
                if !seen.insert((a, b)) {
                    continue;
                }
                stats.candidate_pairs += 1;
                if !hb.concurrent(a, b) {
                    continue;
                }
                let (ea, eb) = match (trace.event(a), trace.event(b)) {
                    (Some(ea), Some(eb)) => (ea, eb),
                    _ => continue,
                };
                let locations = ea.conflict_locations(eb);
                debug_assert!(!locations.is_empty());
                let kind = match (ea.is_sync(), eb.is_sync()) {
                    (false, false) => RaceKind::DataData,
                    (true, true) => RaceKind::SyncSync,
                    _ => RaceKind::DataSync,
                };
                races.push(DataRace { a, b, locations, kind });
            }
        }
    }
    races.sort_by_key(|r| (r.a, r.b));
    stats.races = races.len() as u64;
    (races, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PairingPolicy;
    use wmrd_trace::{AccessKind, ProcId, SyncRole, TraceBuilder, TraceSink, Value};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    fn e(proc: u16, index: u32) -> EventId {
        EventId::new(p(proc), index)
    }

    fn analyze(trace: &TraceSet) -> Vec<DataRace> {
        let hb = HbGraph::build(trace, PairingPolicy::ByRole).unwrap();
        detect_races(trace, &hb)
    }

    /// Figure 1a: P0 writes x then y; P1 reads y then x; no sync at all.
    /// Both conflicting pairs race.
    #[test]
    fn fig1a_has_two_data_races() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(1), AccessKind::Read, Value::ZERO, None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let t = b.finish();
        // Each processor's accesses fold into ONE computation event, so at
        // the event level this is a single race on {x, y}.
        let races = analyze(&t);
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::DataData);
        assert!(races[0].is_data_race());
        assert_eq!(races[0].locations.len(), 2, "conflicts on both x and y");
    }

    /// Figure 1b: same accesses but separated by Unset/Test&Set pairing —
    /// race-free.
    #[test]
    fn fig1b_is_race_free() {
        let mut b = TraceBuilder::new(2);
        let s = l(9);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        let rel = b.sync_access(p(0), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel));
        b.sync_access(p(1), s, AccessKind::Write, SyncRole::None, Value::new(1), None);
        b.data_access(p(1), l(1), AccessKind::Read, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::new(1), None);
        let t = b.finish();
        assert!(analyze(&t).is_empty());
    }

    #[test]
    fn write_write_race() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Write, Value::new(2), None);
        let races = analyze(&b.finish());
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].a, e(0, 0));
        assert_eq!(races[0].b, e(1, 0));
    }

    #[test]
    fn read_read_is_not_a_race() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Read, Value::ZERO, None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        assert!(analyze(&b.finish()).is_empty());
    }

    #[test]
    fn different_locations_do_not_race() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(1), AccessKind::Write, Value::new(1), None);
        assert!(analyze(&b.finish()).is_empty());
    }

    #[test]
    fn sync_data_conflict_is_a_data_race() {
        // A data access racing with a synchronization access to the same
        // location: still a data race per Definition 2.4.
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(9), AccessKind::Write, Value::new(1), None);
        b.sync_access(p(1), l(9), AccessKind::Read, SyncRole::Acquire, Value::ZERO, None);
        let races = analyze(&b.finish());
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::DataSync);
        assert!(races[0].is_data_race());
    }

    #[test]
    fn sync_sync_race_is_not_a_data_race() {
        // Two unpaired sync writes to the same location: a race, but not
        // a data race.
        let mut b = TraceBuilder::new(2);
        b.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), l(9), AccessKind::Write, SyncRole::Release, Value::new(1), None);
        let races = analyze(&b.finish());
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, RaceKind::SyncSync);
        assert!(!races[0].is_data_race());
    }

    #[test]
    fn same_processor_never_races() {
        let mut b = TraceBuilder::new(1);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(2), None);
        assert!(analyze(&b.finish()).is_empty());
    }

    #[test]
    fn ordering_through_intermediate_processor() {
        // P0 releases to P1, P1 releases to P2: P0's write is ordered
        // before P2's read through the chain; no race.
        let mut b = TraceBuilder::new(3);
        let (x, s1, s2) = (l(0), l(8), l(9));
        b.data_access(p(0), x, AccessKind::Write, Value::new(1), None);
        let r1 = b.sync_access(p(0), s1, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), s1, AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(r1));
        let r2 = b.sync_access(p(1), s2, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(2), s2, AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(r2));
        b.data_access(p(2), x, AccessKind::Read, Value::new(1), None);
        assert!(analyze(&b.finish()).is_empty());
    }

    #[test]
    fn races_are_sorted_and_normalized() {
        let mut b = TraceBuilder::new(3);
        b.data_access(p(2), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        let races = analyze(&b.finish());
        assert_eq!(races.len(), 3);
        for r in &races {
            assert!(r.a < r.b, "normalized order");
        }
        let pairs: Vec<_> = races.iter().map(|r| (r.a, r.b)).collect();
        let mut sorted = pairs.clone();
        sorted.sort();
        assert_eq!(pairs, sorted, "deterministic output order");
    }

    #[test]
    fn display_forms() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(3), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(3), AccessKind::Read, Value::ZERO, None);
        let races = analyze(&b.finish());
        assert_eq!(races[0].to_string(), "<P0.e0, P1.e0> on {3} (data-data)");
        assert_eq!(RaceKind::SyncSync.to_string(), "sync-sync");
    }

    #[test]
    fn stats_count_candidates_and_races() {
        // Three writers to one location race pairwise; a second location
        // is written by one processor and read (already-ordered) by the
        // same processor, contributing no candidates.
        let mut b = TraceBuilder::new(3);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(2), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(0), l(7), AccessKind::Write, Value::new(1), None);
        b.data_access(p(0), l(7), AccessKind::Read, Value::new(1), None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let (races, stats) = detect_races_with_stats(&t, &hb);
        assert_eq!(stats.candidate_pairs, 3, "C(3,2) distinct cross-proc pairs");
        assert_eq!(stats.races, 3);
        assert_eq!(stats.races, races.len() as u64);
    }

    #[test]
    fn stats_candidates_can_exceed_races() {
        // Release/acquire orders the conflicting pair: it is examined
        // (one candidate) but confirmed ordered (zero races).
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        let rel =
            b.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), l(9), AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel));
        b.data_access(p(1), l(0), AccessKind::Read, Value::new(1), None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let (races, stats) = detect_races_with_stats(&t, &hb);
        assert!(races.is_empty());
        assert!(stats.candidate_pairs >= 1);
        assert_eq!(stats.races, 0);
    }

    #[test]
    fn involves() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let races = analyze(&b.finish());
        assert!(races[0].involves(e(0, 0)));
        assert!(races[0].involves(e(1, 0)));
        assert!(!races[0].involves(e(1, 5)));
    }
}
