//! The augmented happens-before-1 graph G′ (Section 4.2).
//!
//! G′ is the hb1 graph plus, for each **data** race, a doubly-directed
//! edge between the two events involved. A path in G′ from one race's
//! events to another's exists iff the first race *affects* the second
//! (Definition 3.3) — so the strongly connected components of G′ group
//! mutually-affecting races, and reachability between components orders
//! the groups.

use wmrd_trace::EventId;

use crate::{DataRace, DiGraph, HbGraph, Reachability};

/// The augmented graph G′ of one execution.
#[derive(Debug)]
pub struct AugmentedGraph<'a> {
    hb: &'a HbGraph,
    graph: DiGraph,
    reach: Reachability,
    /// Indices (into the race slice used at construction) of the *data*
    /// races whose edges were added.
    data_race_indices: Vec<usize>,
}

impl<'a> AugmentedGraph<'a> {
    /// Builds G′ from the hb1 graph and the detected races.
    ///
    /// Only data races add edges (`SyncSync` races are not part of the
    /// paper's construction); the indices of the races used are
    /// remembered and exposed via
    /// [`data_race_indices`](Self::data_race_indices).
    pub fn build(hb: &'a HbGraph, races: &[DataRace]) -> Self {
        let mut graph = DiGraph::new(hb.num_events());
        for node in 0..hb.num_events() as u32 {
            for &succ in hb.graph().successors(node) {
                graph.add_edge(node, succ);
            }
        }
        let mut data_race_indices = Vec::new();
        for (i, race) in races.iter().enumerate() {
            if !race.is_data_race() {
                continue;
            }
            let (Some(na), Some(nb)) = (hb.node_of(race.a), hb.node_of(race.b)) else {
                continue;
            };
            graph.add_edge(na, nb);
            graph.add_edge(nb, na);
            data_race_indices.push(i);
        }
        let reach = Reachability::compute(&graph);
        AugmentedGraph { hb, graph, reach, data_race_indices }
    }

    /// The underlying hb1 graph.
    pub fn hb(&self) -> &HbGraph {
        self.hb
    }

    /// The G′ edge structure.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Reachability over G′.
    pub fn reach(&self) -> &Reachability {
        &self.reach
    }

    /// Indices of the data races that contributed edges.
    pub fn data_race_indices(&self) -> &[usize] {
        &self.data_race_indices
    }

    /// The G′ strongly-connected component of an event.
    pub fn component_of(&self, event: EventId) -> Option<u32> {
        Some(self.reach.scc().component_of(self.hb.node_of(event)?))
    }

    /// `true` iff a path of length ≥ 1 exists from `a` to `b` in G′.
    pub fn path(&self, a: EventId, b: EventId) -> bool {
        match (self.hb.node_of(a), self.hb.node_of(b)) {
            (Some(na), Some(nb)) => self.reach.query(na, nb),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{detect_races, PairingPolicy};
    use wmrd_trace::{AccessKind, Location, ProcId, TraceBuilder, TraceSet, TraceSink, Value};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    fn e(proc: u16, index: u32) -> EventId {
        EventId::new(p(proc), index)
    }

    fn racy_trace() -> TraceSet {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        b.finish()
    }

    #[test]
    fn race_edges_create_a_two_cycle() {
        let t = racy_trace();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let races = detect_races(&t, &hb);
        let aug = AugmentedGraph::build(&hb, &races);
        assert_eq!(aug.data_race_indices(), &[0]);
        // The two race endpoints are mutually reachable in G′ ...
        assert!(aug.path(e(0, 0), e(1, 0)));
        assert!(aug.path(e(1, 0), e(0, 0)));
        // ... and share a component.
        assert_eq!(aug.component_of(e(0, 0)), aug.component_of(e(1, 0)));
        // While in plain hb1 they are concurrent.
        assert!(hb.concurrent(e(0, 0), e(1, 0)));
    }

    #[test]
    fn sync_sync_races_add_no_edges() {
        use wmrd_trace::SyncRole;
        let mut b = TraceBuilder::new(2);
        b.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), l(9), AccessKind::Write, SyncRole::Release, Value::new(1), None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let races = detect_races(&t, &hb);
        assert_eq!(races.len(), 1);
        let aug = AugmentedGraph::build(&hb, &races);
        assert!(aug.data_race_indices().is_empty());
        assert!(!aug.path(e(0, 0), e(1, 0)));
        assert_eq!(aug.graph().num_edges(), hb.graph().num_edges());
    }

    #[test]
    fn race_affects_po_successors() {
        // P0: racy write, then more work. The race affects P0's later
        // event through G′.
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.sync_access(
            p(0),
            l(9),
            AccessKind::Write,
            wmrd_trace::SyncRole::Release,
            Value::ZERO,
            None,
        );
        b.data_access(p(0), l(1), AccessKind::Write, Value::new(2), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let races = detect_races(&t, &hb);
        assert_eq!(races.len(), 1);
        let aug = AugmentedGraph::build(&hb, &races);
        // From the race endpoint on P1 there is a G′ path to P0's third
        // event (via the race edge and P0's po).
        assert!(aug.path(e(1, 0), e(0, 2)));
        // But not in plain hb1.
        assert!(!hb.ordered(e(1, 0), e(0, 2)));
    }

    #[test]
    fn hb_accessor() {
        let t = racy_trace();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let races = detect_races(&t, &hb);
        let aug = AugmentedGraph::build(&hb, &races);
        assert_eq!(aug.hb().num_events(), 2);
        assert!(aug.component_of(e(9, 0)).is_none());
        assert!(!aug.path(e(9, 0), e(0, 0)));
    }
}
