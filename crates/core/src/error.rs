//! Error type for the analysis pipeline.

use std::fmt;

use wmrd_trace::{EventId, OpId, TraceError};

/// Errors produced by race analysis.
#[derive(Debug)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The input trace failed validation.
    Trace(TraceError),
    /// A sync read's `observed_release` referenced an operation that is
    /// not a recorded synchronization write.
    DanglingRelease {
        /// The reading sync event.
        reader: EventId,
        /// The unresolvable release operation id.
        release: OpId,
    },
    /// The analysis hit an internal inconsistency (message explains).
    Internal(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Trace(e) => write!(f, "invalid trace: {e}"),
            AnalysisError::DanglingRelease { reader, release } => {
                write!(f, "sync read {reader} observed unknown release {release}")
            }
            AnalysisError::Internal(m) => write!(f, "internal analysis error: {m}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for AnalysisError {
    fn from(e: TraceError) -> Self {
        AnalysisError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;
    use wmrd_trace::ProcId;

    #[test]
    fn display_and_source() {
        let e = AnalysisError::from(TraceError::Malformed("x".into()));
        assert!(e.to_string().contains("invalid trace"));
        assert!(e.source().is_some());
        let d = AnalysisError::DanglingRelease {
            reader: EventId::new(ProcId::new(0), 1),
            release: OpId::new(ProcId::new(1), 2),
        };
        assert!(d.to_string().contains("P0.e1"));
        assert!(d.source().is_none());
        assert!(AnalysisError::Internal("boom".into()).to_string().contains("boom"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalysisError>();
    }
}
