//! Rendering analyses for humans: Graphviz DOT export of the
//! happens-before-1 / augmented graphs (the paper's Figures 1–3 as
//! pictures) and a plain-text per-processor timeline.

use std::fmt::Write as _;

use wmrd_trace::{EventId, EventKind, TraceSet};

use crate::{AnalysisError, HbGraph, RaceReport};

fn node_name(id: EventId) -> String {
    format!("p{}e{}", id.proc.raw(), id.index)
}

fn node_label(trace: &TraceSet, id: EventId) -> String {
    match trace.event(id).map(|e| &e.kind) {
        Some(EventKind::Sync(s)) => {
            format!("{} {}({})={}", id, s.role, s.kind, s.loc)
        }
        Some(EventKind::Computation(c)) => {
            format!("{} R={} W={}", id, c.reads, c.writes)
        }
        None => id.to_string(),
    }
}

/// Renders the analysis as a Graphviz DOT digraph: one cluster per
/// processor, solid `po` edges, dashed `so1` edges, doubly-directed red
/// edges for first-partition races and orange for withheld races, and
/// grey fill for events outside the estimated SCP.
///
/// Pipe the output through `dot -Tsvg` to get the paper's Figure 3 for
/// any execution.
///
/// # Errors
///
/// Returns [`AnalysisError`] if the trace cannot be re-analyzed under
/// the report's pairing policy (e.g. the report belongs to a different
/// trace).
pub fn to_dot(trace: &TraceSet, report: &RaceReport) -> Result<String, AnalysisError> {
    let hb = HbGraph::build(trace, report.pairing)?;
    let mut out = String::new();
    out.push_str("digraph hb1 {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
    for proc_trace in trace.processors() {
        let _ = writeln!(out, "  subgraph cluster_p{} {{", proc_trace.proc.raw());
        let _ = writeln!(out, "    label=\"{}\";", proc_trace.proc);
        for event in proc_trace.events() {
            let outside_scp = !report.scp.contains(event.id);
            let style = if outside_scp { ", style=filled, fillcolor=lightgrey" } else { "" };
            let _ = writeln!(
                out,
                "    {} [label=\"{}\"{}];",
                node_name(event.id),
                node_label(trace, event.id),
                style
            );
        }
        out.push_str("  }\n");
    }
    // po edges.
    for proc_trace in trace.processors() {
        for pair in proc_trace.events().windows(2) {
            let _ = writeln!(out, "  {} -> {};", node_name(pair[0].id), node_name(pair[1].id));
        }
    }
    // so1 edges.
    for edge in hb.so1() {
        let _ = writeln!(
            out,
            "  {} -> {} [style=dashed, label=\"so1\"];",
            node_name(edge.release),
            node_name(edge.acquire)
        );
    }
    // Race edges, colored by partition status.
    for (pi, part) in report.partitions.partitions().iter().enumerate() {
        let color = if report.partitions.is_first(pi) { "red" } else { "orange" };
        for &ri in &part.races {
            let race = &report.races[ri];
            let _ = writeln!(
                out,
                "  {} -> {} [dir=both, color={}, label=\"race {}\"];",
                node_name(race.a),
                node_name(race.b),
                color,
                race.locations
            );
        }
    }
    out.push_str("}\n");
    Ok(out)
}

/// Renders a plain-text per-processor timeline of the execution with
/// race and SCP annotations — a textual Figure 2b/3.
pub fn to_timeline(trace: &TraceSet, report: &RaceReport) -> String {
    let mut out = String::new();
    for proc_trace in trace.processors() {
        let _ = writeln!(out, "{}:", proc_trace.proc);
        let boundary = report.scp.boundary(proc_trace.proc);
        for event in proc_trace.events() {
            if boundary == Some(event.id.index) {
                out.push_str("  ---- end of estimated SCP ----\n");
            }
            let mut markers = String::new();
            for (pi, part) in report.partitions.partitions().iter().enumerate() {
                for &ri in &part.races {
                    if report.races[ri].involves(event.id) {
                        let tag =
                            if report.partitions.is_first(pi) { "FIRST-RACE" } else { "race" };
                        let _ = write!(markers, "  <{tag} #{ri}>");
                    }
                }
            }
            let _ = writeln!(out, "  {}{}", node_label(trace, event.id), markers);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PostMortem;
    use wmrd_trace::{AccessKind, Location, ProcId, SyncRole, TraceBuilder, TraceSink, Value};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    fn racy_trace_with_phases() -> TraceSet {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        b.sync_access(p(0), l(8), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(1), AccessKind::Read, Value::ZERO, None);
        b.finish()
    }

    #[test]
    fn dot_contains_expected_structure() {
        let t = racy_trace_with_phases();
        let report = PostMortem::new(&t).analyze().unwrap();
        let dot = to_dot(&t, &report).unwrap();
        assert!(dot.starts_with("digraph hb1 {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("subgraph cluster_p0"));
        assert!(dot.contains("subgraph cluster_p1"));
        // po edge within P0.
        assert!(dot.contains("p0e0 -> p0e1;"));
        // Race edges in both colors.
        assert!(dot.contains("color=red"), "first-partition race edge:\n{dot}");
        assert!(dot.contains("color=orange"), "withheld race edge:\n{dot}");
        // SCP-excluded events are greyed.
        assert!(dot.contains("fillcolor=lightgrey"));
    }

    #[test]
    fn dot_renders_so1_edges() {
        let mut b = TraceBuilder::new(2);
        let rel =
            b.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), l(9), AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel));
        let t = b.finish();
        let report = PostMortem::new(&t).analyze().unwrap();
        let dot = to_dot(&t, &report).unwrap();
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("so1"));
        assert!(!dot.contains("color=red"), "race-free graph has no race edges");
    }

    #[test]
    fn timeline_marks_races_and_scp() {
        let t = racy_trace_with_phases();
        let report = PostMortem::new(&t).analyze().unwrap();
        let text = to_timeline(&t, &report);
        assert!(text.contains("P0:"));
        assert!(text.contains("P1:"));
        assert!(text.contains("FIRST-RACE"));
        assert!(text.contains("<race"), "withheld race marker:\n{text}");
        assert!(text.contains("end of estimated SCP"));
    }

    #[test]
    fn timeline_of_race_free_trace_has_no_markers() {
        let mut b = TraceBuilder::new(1);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        let t = b.finish();
        let report = PostMortem::new(&t).analyze().unwrap();
        let text = to_timeline(&t, &report);
        assert!(!text.contains("RACE"));
        assert!(!text.contains("end of estimated SCP"));
    }
}
