//! Estimating the sequentially consistent prefix (Definitions 3.1–3.2,
//! Condition 3.4).
//!
//! On hardware obeying Condition 3.4, every execution has an SCP — a
//! prefix-closed set of events that also occurs in some sequentially
//! consistent execution — extending at least through the first data
//! races. The exact SCP is existential (it names an SC execution), but a
//! sound boundary is computable from the trace alone: an event can lie
//! *outside* every guaranteed SCP only if it is strictly G′-after some
//! data race (only race-affected suffixes may deviate from sequential
//! consistency). [`estimate_scp`] marks those events *tainted* and
//! reports the per-processor frontier — the "End of SCP" annotation of
//! the paper's Figures 2b and 3.

use std::fmt;

use serde::{Deserialize, Serialize};

use wmrd_trace::{EventId, ProcId, TraceSet};

use crate::{AugmentedGraph, DataRace};

/// The estimated sequentially consistent prefix of one execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScpEstimate {
    /// Per processor: the index of the first event *outside* the SCP
    /// (== the processor's event count when every event is inside).
    boundaries: Vec<u32>,
    /// Per processor: total event count (for display and ratio math).
    event_counts: Vec<u32>,
}

impl ScpEstimate {
    /// `true` iff `event` lies within the estimated SCP.
    ///
    /// Events of unknown processors are reported as outside.
    pub fn contains(&self, event: EventId) -> bool {
        self.boundaries.get(event.proc.index()).is_some_and(|&b| event.index < b)
    }

    /// The per-processor boundary: index of the first event outside the
    /// SCP for `proc`.
    pub fn boundary(&self, proc: ProcId) -> Option<u32> {
        self.boundaries.get(proc.index()).copied()
    }

    /// `true` iff the whole execution is inside the SCP — which, under
    /// Condition 3.4(1), certifies it was sequentially consistent.
    pub fn covers_everything(&self) -> bool {
        self.boundaries.iter().zip(&self.event_counts).all(|(b, n)| b == n)
    }

    /// Number of events inside the SCP, across all processors.
    pub fn events_inside(&self) -> u64 {
        self.boundaries.iter().map(|&b| u64::from(b)).sum()
    }

    /// Total number of events in the execution.
    pub fn events_total(&self) -> u64 {
        self.event_counts.iter().map(|&n| u64::from(n)).sum()
    }
}

impl fmt::Display for ScpEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.covers_everything() {
            return write!(f, "SCP covers the entire execution (sequentially consistent)");
        }
        write!(f, "SCP boundaries:")?;
        for (i, (b, n)) in self.boundaries.iter().zip(&self.event_counts).enumerate() {
            write!(f, " P{i}:{b}/{n}")?;
        }
        Ok(())
    }
}

/// Computes the SCP estimate of an execution.
///
/// An event is *tainted* (outside the estimate) iff some data-race
/// endpoint strictly G′-reaches it from outside its own partition —
/// i.e. it lies in a component strictly after a race-containing
/// component. Race endpoints themselves are kept inside (Theorem 4.2
/// guarantees each first partition intersects the SCP; endpoints of
/// non-first partitions are tainted because another race's component
/// precedes theirs). Taint is suffix-closed per processor (po edges are
/// in G′), so the estimate is prefix-closed as Definition 3.1 requires.
pub fn estimate_scp(trace: &TraceSet, aug: &AugmentedGraph<'_>, races: &[DataRace]) -> ScpEstimate {
    let scc = aug.reach().scc();
    // Components containing at least one data-race endpoint.
    let mut race_comps: Vec<u32> =
        aug.data_race_indices().iter().filter_map(|&i| aug.component_of(races[i].a)).collect();
    race_comps.sort_unstable();
    race_comps.dedup();

    let mut boundaries = Vec::with_capacity(trace.num_procs());
    let mut event_counts = Vec::with_capacity(trace.num_procs());
    for proc_trace in trace.processors() {
        let events = proc_trace.events();
        let mut boundary = events.len() as u32;
        for (idx, event) in events.iter().enumerate() {
            let node = aug.hb().node_of(event.id).expect("trace events are graph nodes");
            let comp = scc.component_of(node);
            let tainted =
                race_comps.iter().any(|&rc| rc != comp && aug.reach().comp_query(rc, comp));
            if tainted {
                boundary = idx as u32;
                break;
            }
        }
        boundaries.push(boundary);
        event_counts.push(events.len() as u32);
    }
    ScpEstimate { boundaries, event_counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{detect_races, HbGraph, PairingPolicy};
    use wmrd_trace::{
        AccessKind, Location, ProcId, SyncRole, TraceBuilder, TraceSet, TraceSink, Value,
    };

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    fn e(proc: u16, index: u32) -> EventId {
        EventId::new(p(proc), index)
    }

    fn scp_of(trace: &TraceSet) -> ScpEstimate {
        let hb = HbGraph::build(trace, PairingPolicy::ByRole).unwrap();
        let races = detect_races(trace, &hb);
        let aug = AugmentedGraph::build(&hb, &races);
        estimate_scp(trace, &aug, &races)
    }

    #[test]
    fn race_free_execution_is_fully_covered() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(1), AccessKind::Write, Value::new(1), None);
        let scp = scp_of(&b.finish());
        assert!(scp.covers_everything());
        assert!(scp.contains(e(0, 0)));
        assert!(scp.contains(e(1, 0)));
        assert_eq!(scp.events_inside(), scp.events_total());
        assert!(scp.to_string().contains("sequentially consistent"));
    }

    #[test]
    fn first_race_endpoints_stay_inside() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let scp = scp_of(&b.finish());
        assert!(scp.covers_everything(), "a lone race's endpoints are in the SCP");
    }

    #[test]
    fn events_after_a_race_are_outside() {
        let mut b = TraceBuilder::new(2);
        // Race on x; then (split by unpaired sync events) more work.
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        b.sync_access(p(0), l(8), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(2), AccessKind::Write, Value::new(1), None);
        let t = b.finish();
        let scp = scp_of(&t);
        assert!(!scp.covers_everything());
        // The race endpoints (event 0 of each processor) are inside.
        assert!(scp.contains(e(0, 0)));
        assert!(scp.contains(e(1, 0)));
        // Everything po-after them is outside the guaranteed prefix.
        assert_eq!(scp.boundary(p(0)), Some(1));
        assert_eq!(scp.boundary(p(1)), Some(1));
        assert!(!scp.contains(e(0, 1)));
        assert!(!scp.contains(e(1, 2)));
        let s = scp.to_string();
        assert!(s.contains("P0:1/3"), "{s}");
    }

    #[test]
    fn unrelated_processor_is_fully_covered() {
        let mut b = TraceBuilder::new(3);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        // P2 never interacts with the race.
        b.data_access(p(2), l(5), AccessKind::Write, Value::new(1), None);
        let scp = scp_of(&b.finish());
        assert_eq!(scp.boundary(p(2)), Some(1));
        assert!(scp.contains(e(2, 0)));
    }

    #[test]
    fn non_first_partition_events_are_outside() {
        // Two-phase trace: phase-2 race events must be outside the SCP.
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        b.sync_access(p(0), l(8), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(1), AccessKind::Read, Value::ZERO, None);
        let scp = scp_of(&b.finish());
        assert!(scp.contains(e(0, 0)) && scp.contains(e(1, 0)));
        assert!(!scp.contains(e(0, 2)) && !scp.contains(e(1, 2)));
    }

    #[test]
    fn unknown_processor_is_outside() {
        let mut b = TraceBuilder::new(1);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        let scp = scp_of(&b.finish());
        assert!(!scp.contains(e(9, 0)));
        assert_eq!(scp.boundary(p(9)), None);
    }
}
