//! Parallel analysis helpers.
//!
//! The post-mortem phase is offline, so wall-clock time is bounded by
//! how much work one developer machine can throw at it. Two helpers use
//! scoped threads (crossbeam):
//!
//! * [`detect_races_parallel`] — shards the per-location candidate
//!   generation of [`detect_races`](crate::detect_races) across threads.
//!   Output is identical to the sequential detector (asserted by tests).
//! * [`analyze_batch`] — analyzes many traces concurrently (the shape of
//!   a fuzzing campaign: hundreds of seeded executions, one report
//!   each).

use std::collections::{HashMap, HashSet};

use wmrd_trace::{EventId, Location, TraceSet};

use crate::{
    AnalysisError, AnalysisOptions, DataRace, HbGraph, PostMortem, RaceKind, RaceReport,
};

/// Parallel variant of [`detect_races`](crate::detect_races): candidate
/// generation is split into `threads` location shards; results are
/// merged, deduplicated and sorted identically to the sequential
/// detector.
///
/// `threads == 0` is treated as 1.
pub fn detect_races_parallel(
    trace: &TraceSet,
    hb: &HbGraph,
    threads: usize,
) -> Vec<DataRace> {
    let threads = threads.max(1);
    // Per-location access lists (sequential; cheap relative to the pair
    // work).
    let mut writers: HashMap<Location, Vec<EventId>> = HashMap::new();
    let mut accessors: HashMap<Location, Vec<EventId>> = HashMap::new();
    for event in trace.events() {
        let w = event.write_set();
        let r = event.read_set();
        for loc in &w {
            writers.entry(loc).or_default().push(event.id);
            accessors.entry(loc).or_default().push(event.id);
        }
        for loc in &r {
            if !w.contains(loc) {
                accessors.entry(loc).or_default().push(event.id);
            }
        }
    }
    let locations: Vec<Location> = writers.keys().copied().collect();
    let shards: Vec<&[Location]> = if locations.is_empty() {
        Vec::new()
    } else {
        locations.chunks(locations.len().div_ceil(threads)).collect()
    };

    // Each shard emits candidate unordered conflicting *pairs*; the
    // merge step dedups pairs that conflict on locations in different
    // shards.
    let mut pairs: HashSet<(EventId, EventId)> = HashSet::new();
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for shard in shards {
            let writers = &writers;
            let accessors = &accessors;
            handles.push(scope.spawn(move |_| {
                let mut local: HashSet<(EventId, EventId)> = HashSet::new();
                for loc in shard {
                    let (Some(ws), Some(accs)) = (writers.get(loc), accessors.get(loc))
                    else {
                        continue;
                    };
                    for &w in ws {
                        for &x in accs {
                            if w == x || w.proc == x.proc {
                                continue;
                            }
                            let (a, b) = if w < x { (w, x) } else { (x, w) };
                            if local.contains(&(a, b)) {
                                continue;
                            }
                            if hb.concurrent(a, b) {
                                local.insert((a, b));
                            }
                        }
                    }
                }
                local
            }));
        }
        for handle in handles {
            pairs.extend(handle.join().expect("detector shard panicked"));
        }
    })
    .expect("crossbeam scope");

    let mut races: Vec<DataRace> = pairs
        .into_iter()
        .filter_map(|(a, b)| {
            let (ea, eb) = (trace.event(a)?, trace.event(b)?);
            let locations = ea.conflict_locations(eb);
            let kind = match (ea.is_sync(), eb.is_sync()) {
                (false, false) => RaceKind::DataData,
                (true, true) => RaceKind::SyncSync,
                _ => RaceKind::DataSync,
            };
            Some(DataRace { a, b, locations, kind })
        })
        .collect();
    races.sort_by(|r1, r2| (r1.a, r1.b).cmp(&(r2.a, r2.b)));
    races
}

/// Analyzes a batch of traces concurrently, one report per trace, in
/// input order.
pub fn analyze_batch(
    traces: &[TraceSet],
    options: AnalysisOptions,
    threads: usize,
) -> Vec<Result<RaceReport, AnalysisError>> {
    let threads = threads.max(1);
    let mut results: Vec<Option<Result<RaceReport, AnalysisError>>> =
        (0..traces.len()).map(|_| None).collect();
    let chunk = traces.len().div_ceil(threads).max(1);
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for (shard_index, shard) in traces.chunks(chunk).enumerate() {
            handles.push(scope.spawn(move |_| {
                let reports: Vec<Result<RaceReport, AnalysisError>> = shard
                    .iter()
                    .map(|t| PostMortem::new(t).options(options).analyze())
                    .collect();
                (shard_index, reports)
            }));
        }
        for handle in handles {
            let (shard_index, reports) = handle.join().expect("analysis shard panicked");
            for (offset, report) in reports.into_iter().enumerate() {
                results[shard_index * chunk + offset] = Some(report);
            }
        }
    })
    .expect("crossbeam scope");
    results.into_iter().map(|r| r.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{detect_races, PairingPolicy};
    use wmrd_trace::{AccessKind, ProcId, SyncRole, TraceBuilder, TraceSink, Value};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    /// A trace with many locations and a mix of race kinds.
    fn busy_trace(procs: u16, locs: u32) -> TraceSet {
        let mut b = TraceBuilder::new(procs as usize);
        for proc in 0..procs {
            for loc in 0..locs {
                if (proc + loc as u16) % 2 == 0 {
                    b.data_access(p(proc), l(loc), AccessKind::Write, Value::new(1), None);
                } else {
                    b.data_access(p(proc), l(loc), AccessKind::Read, Value::ZERO, None);
                }
            }
            b.sync_access(
                p(proc),
                l(locs + u32::from(proc)),
                AccessKind::Write,
                SyncRole::Release,
                Value::ZERO,
                None,
            );
            for loc in 0..locs / 2 {
                b.data_access(p(proc), l(loc), AccessKind::Write, Value::new(2), None);
            }
        }
        b.finish()
    }

    #[test]
    fn parallel_equals_sequential() {
        let trace = busy_trace(4, 12);
        let hb = HbGraph::build(&trace, PairingPolicy::ByRole).unwrap();
        let sequential = detect_races(&trace, &hb);
        assert!(!sequential.is_empty());
        for threads in [1, 2, 3, 8] {
            let parallel = detect_races_parallel(&trace, &hb, threads);
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn parallel_on_race_free_trace() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(1), AccessKind::Write, Value::new(1), None);
        let trace = b.finish();
        let hb = HbGraph::build(&trace, PairingPolicy::ByRole).unwrap();
        assert!(detect_races_parallel(&trace, &hb, 4).is_empty());
    }

    #[test]
    fn parallel_zero_threads_treated_as_one() {
        let trace = busy_trace(2, 4);
        let hb = HbGraph::build(&trace, PairingPolicy::ByRole).unwrap();
        assert_eq!(
            detect_races_parallel(&trace, &hb, 0),
            detect_races(&trace, &hb)
        );
    }

    #[test]
    fn batch_matches_individual_analysis() {
        let traces: Vec<TraceSet> =
            (2..6).map(|n| busy_trace(n, 8)).collect();
        let batch = analyze_batch(&traces, AnalysisOptions::default(), 3);
        assert_eq!(batch.len(), traces.len());
        for (trace, result) in traces.iter().zip(&batch) {
            let individual = PostMortem::new(trace).analyze().unwrap();
            assert_eq!(result.as_ref().unwrap(), &individual);
        }
    }

    #[test]
    fn batch_preserves_order_and_errors() {
        use wmrd_trace::OpId;
        // Second trace is corrupt (dangling release).
        let good = busy_trace(2, 4);
        let bad = {
            let mut b = TraceBuilder::new(1);
            b.sync_access(
                p(0),
                l(0),
                AccessKind::Read,
                SyncRole::Acquire,
                Value::ZERO,
                Some(OpId::new(p(0), 99)),
            );
            b.finish()
        };
        let results =
            analyze_batch(&[good.clone(), bad, good], AnalysisOptions::default(), 2);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    fn batch_of_empty_input() {
        let results = analyze_batch(&[], AnalysisOptions::default(), 4);
        assert!(results.is_empty());
    }
}
