//! Parallel analysis helpers.
//!
//! The post-mortem phase is offline, so wall-clock time is bounded by
//! how much work one developer machine can throw at it. Two helpers use
//! scoped threads (crossbeam):
//!
//! * [`detect_races_parallel`] — shards the per-location candidate
//!   generation of [`detect_races`](crate::detect_races) across threads.
//!   Output is identical to the sequential detector (asserted by tests).
//! * [`analyze_batch`] — analyzes many traces concurrently (the shape of
//!   a fuzzing campaign: hundreds of seeded executions, one report
//!   each).

use std::collections::{HashMap, HashSet};

use wmrd_trace::{EventId, Location, Metrics, TraceSet};

use crate::{AnalysisError, AnalysisOptions, DataRace, HbGraph, PostMortem, RaceKind, RaceReport};

/// Parallel variant of [`detect_races`](crate::detect_races): candidate
/// generation is split into `threads` location shards; results are
/// merged, deduplicated and sorted identically to the sequential
/// detector.
///
/// `threads == 0` is treated as 1.
pub fn detect_races_parallel(trace: &TraceSet, hb: &HbGraph, threads: usize) -> Vec<DataRace> {
    detect_races_parallel_metered(trace, hb, threads, &Metrics::disabled())
}

/// [`detect_races_parallel`] with observability: shard shape and
/// utilization are recorded into `metrics` under `parallel.*` keys.
///
/// Gauges — all deterministic for a fixed trace (locations are sorted
/// before sharding, so shard assignment does not depend on hash order):
///
/// * `parallel.threads`, `parallel.shards`, `parallel.locations` — the
///   shape of the fan-out.
/// * `parallel.shard.N.pairs` — distinct candidate pairs examined by
///   shard `N` (per-shard utilization; shards may re-examine a pair
///   that conflicts on locations in another shard, so the sum can
///   exceed the global count).
/// * `parallel.candidate_pairs`, `parallel.races` — globally deduped
///   counts; equal to the sequential detector's
///   [`DetectStats`](crate::DetectStats) for every thread count
///   (asserted by tests).
///
/// Phase timers `parallel.shard.N` record per-shard wall time (not
/// deterministic).
pub fn detect_races_parallel_metered(
    trace: &TraceSet,
    hb: &HbGraph,
    threads: usize,
    metrics: &Metrics,
) -> Vec<DataRace> {
    let threads = threads.max(1);
    // Per-location access lists (sequential; cheap relative to the pair
    // work).
    let mut writers: HashMap<Location, Vec<EventId>> = HashMap::new();
    let mut accessors: HashMap<Location, Vec<EventId>> = HashMap::new();
    for event in trace.events() {
        let w = event.write_set();
        let r = event.read_set();
        for loc in &w {
            writers.entry(loc).or_default().push(event.id);
            accessors.entry(loc).or_default().push(event.id);
        }
        for loc in &r {
            if !w.contains(loc) {
                accessors.entry(loc).or_default().push(event.id);
            }
        }
    }
    // Sorted so shard assignment (and therefore the per-shard gauges)
    // is deterministic rather than an artifact of HashMap iteration.
    let mut locations: Vec<Location> = writers.keys().copied().collect();
    locations.sort_unstable();
    let shards: Vec<&[Location]> = if locations.is_empty() {
        Vec::new()
    } else {
        locations.chunks(locations.len().div_ceil(threads)).collect()
    };
    metrics.set_gauge("parallel.threads", threads as u64);
    metrics.set_gauge("parallel.shards", shards.len() as u64);
    metrics.set_gauge("parallel.locations", locations.len() as u64);

    // Each shard emits the distinct conflicting pairs it *examined* and
    // the subset it confirmed racy; the merge step dedups pairs that
    // conflict on locations in different shards, so the global counts
    // match the sequential detector exactly.
    let mut examined: HashSet<(EventId, EventId)> = HashSet::new();
    let mut racy: HashSet<(EventId, EventId)> = HashSet::new();
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for (shard_index, shard) in shards.into_iter().enumerate() {
            let writers = &writers;
            let accessors = &accessors;
            handles.push(scope.spawn(move |_| {
                metrics.time(&format!("parallel.shard.{shard_index}"), || {
                    let mut local_examined: HashSet<(EventId, EventId)> = HashSet::new();
                    let mut local_racy: HashSet<(EventId, EventId)> = HashSet::new();
                    for loc in shard {
                        let (Some(ws), Some(accs)) = (writers.get(loc), accessors.get(loc)) else {
                            continue;
                        };
                        for &w in ws {
                            for &x in accs {
                                if w == x || w.proc == x.proc {
                                    continue;
                                }
                                let (a, b) = if w < x { (w, x) } else { (x, w) };
                                if !local_examined.insert((a, b)) {
                                    continue;
                                }
                                if hb.concurrent(a, b) {
                                    local_racy.insert((a, b));
                                }
                            }
                        }
                    }
                    (shard_index, local_examined, local_racy)
                })
            }));
        }
        for handle in handles {
            let (shard_index, local_examined, local_racy) =
                handle.join().expect("detector shard panicked");
            metrics.set_gauge(
                &format!("parallel.shard.{shard_index}.pairs"),
                local_examined.len() as u64,
            );
            examined.extend(local_examined);
            racy.extend(local_racy);
        }
    })
    .expect("crossbeam scope");
    metrics.set_gauge("parallel.candidate_pairs", examined.len() as u64);
    metrics.set_gauge("parallel.races", racy.len() as u64);

    let mut races: Vec<DataRace> = racy
        .into_iter()
        .filter_map(|(a, b)| {
            let (ea, eb) = (trace.event(a)?, trace.event(b)?);
            let locations = ea.conflict_locations(eb);
            let kind = match (ea.is_sync(), eb.is_sync()) {
                (false, false) => RaceKind::DataData,
                (true, true) => RaceKind::SyncSync,
                _ => RaceKind::DataSync,
            };
            Some(DataRace { a, b, locations, kind })
        })
        .collect();
    races.sort_by_key(|r| (r.a, r.b));
    races
}

/// Analyzes a batch of traces concurrently, one report per trace, in
/// input order.
pub fn analyze_batch(
    traces: &[TraceSet],
    options: AnalysisOptions,
    threads: usize,
) -> Vec<Result<RaceReport, AnalysisError>> {
    analyze_batch_metered(traces, options, threads, &Metrics::disabled())
}

/// [`analyze_batch`] with observability, recorded under `batch.*` keys:
///
/// * gauges `batch.traces`, `batch.threads`, `batch.shards` — fan-out
///   shape; `batch.shard.N.traces` — per-shard utilization. All
///   deterministic (traces are sharded by input order).
/// * counters `batch.reports_ok` / `batch.reports_err` — how many
///   analyses succeeded / failed. Deterministic.
/// * phase timers `batch.shard.N` — per-shard wall time (not
///   deterministic).
///
/// The per-analysis `analysis.*` keys are intentionally **not**
/// recorded here: shards run concurrently and last-write-wins gauges
/// from racing traces would not be deterministic. Meter a single
/// [`PostMortem`] for per-trace detail.
pub fn analyze_batch_metered(
    traces: &[TraceSet],
    options: AnalysisOptions,
    threads: usize,
    metrics: &Metrics,
) -> Vec<Result<RaceReport, AnalysisError>> {
    let threads = threads.max(1);
    let mut results: Vec<Option<Result<RaceReport, AnalysisError>>> =
        (0..traces.len()).map(|_| None).collect();
    let chunk = traces.len().div_ceil(threads).max(1);
    metrics.set_gauge("batch.traces", traces.len() as u64);
    metrics.set_gauge("batch.threads", threads as u64);
    metrics.set_gauge("batch.shards", traces.chunks(chunk).len() as u64);
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for (shard_index, shard) in traces.chunks(chunk).enumerate() {
            handles.push(scope.spawn(move |_| {
                metrics.time(&format!("batch.shard.{shard_index}"), || {
                    let reports: Vec<Result<RaceReport, AnalysisError>> = shard
                        .iter()
                        .map(|t| PostMortem::new(t).options(options).analyze())
                        .collect();
                    (shard_index, reports)
                })
            }));
        }
        for handle in handles {
            let (shard_index, reports) = handle.join().expect("analysis shard panicked");
            metrics.set_gauge(&format!("batch.shard.{shard_index}.traces"), reports.len() as u64);
            for (offset, report) in reports.into_iter().enumerate() {
                results[shard_index * chunk + offset] = Some(report);
            }
        }
    })
    .expect("crossbeam scope");
    let results: Vec<Result<RaceReport, AnalysisError>> =
        results.into_iter().map(|r| r.expect("every slot filled")).collect();
    if metrics.is_enabled() {
        let ok = results.iter().filter(|r| r.is_ok()).count() as u64;
        metrics.add("batch.reports_ok", ok);
        metrics.add("batch.reports_err", results.len() as u64 - ok);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{detect_races, PairingPolicy};
    use wmrd_trace::{AccessKind, ProcId, SyncRole, TraceBuilder, TraceSink, Value};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    /// A trace with many locations and a mix of race kinds.
    fn busy_trace(procs: u16, locs: u32) -> TraceSet {
        let mut b = TraceBuilder::new(procs as usize);
        for proc in 0..procs {
            for loc in 0..locs {
                if (proc + loc as u16).is_multiple_of(2) {
                    b.data_access(p(proc), l(loc), AccessKind::Write, Value::new(1), None);
                } else {
                    b.data_access(p(proc), l(loc), AccessKind::Read, Value::ZERO, None);
                }
            }
            b.sync_access(
                p(proc),
                l(locs + u32::from(proc)),
                AccessKind::Write,
                SyncRole::Release,
                Value::ZERO,
                None,
            );
            for loc in 0..locs / 2 {
                b.data_access(p(proc), l(loc), AccessKind::Write, Value::new(2), None);
            }
        }
        b.finish()
    }

    #[test]
    fn parallel_equals_sequential() {
        let trace = busy_trace(4, 12);
        let hb = HbGraph::build(&trace, PairingPolicy::ByRole).unwrap();
        let sequential = detect_races(&trace, &hb);
        assert!(!sequential.is_empty());
        for threads in [1, 2, 3, 8] {
            let parallel = detect_races_parallel(&trace, &hb, threads);
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn parallel_on_race_free_trace() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(1), AccessKind::Write, Value::new(1), None);
        let trace = b.finish();
        let hb = HbGraph::build(&trace, PairingPolicy::ByRole).unwrap();
        assert!(detect_races_parallel(&trace, &hb, 4).is_empty());
    }

    #[test]
    fn parallel_zero_threads_treated_as_one() {
        let trace = busy_trace(2, 4);
        let hb = HbGraph::build(&trace, PairingPolicy::ByRole).unwrap();
        assert_eq!(detect_races_parallel(&trace, &hb, 0), detect_races(&trace, &hb));
    }

    #[test]
    fn batch_matches_individual_analysis() {
        let traces: Vec<TraceSet> = (2..6).map(|n| busy_trace(n, 8)).collect();
        let batch = analyze_batch(&traces, AnalysisOptions::default(), 3);
        assert_eq!(batch.len(), traces.len());
        for (trace, result) in traces.iter().zip(&batch) {
            let individual = PostMortem::new(trace).analyze().unwrap();
            assert_eq!(result.as_ref().unwrap(), &individual);
        }
    }

    #[test]
    fn batch_preserves_order_and_errors() {
        use wmrd_trace::OpId;
        // Second trace is corrupt (dangling release).
        let good = busy_trace(2, 4);
        let bad = {
            let mut b = TraceBuilder::new(1);
            b.sync_access(
                p(0),
                l(0),
                AccessKind::Read,
                SyncRole::Acquire,
                Value::ZERO,
                Some(OpId::new(p(0), 99)),
            );
            b.finish()
        };
        let results = analyze_batch(&[good.clone(), bad, good], AnalysisOptions::default(), 2);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    fn batch_of_empty_input() {
        let results = analyze_batch(&[], AnalysisOptions::default(), 4);
        assert!(results.is_empty());
    }

    #[test]
    fn metered_parallel_candidate_counts_match_sequential() {
        use crate::detect_races_with_stats;
        use wmrd_trace::Metrics;
        let trace = busy_trace(4, 12);
        let hb = HbGraph::build(&trace, PairingPolicy::ByRole).unwrap();
        let (sequential, stats) = detect_races_with_stats(&trace, &hb);
        for threads in [1, 2, 3, 8] {
            let metrics = Metrics::enabled();
            let parallel = detect_races_parallel_metered(&trace, &hb, threads, &metrics);
            assert_eq!(parallel, sequential, "threads={threads}");
            let snap = metrics.report();
            assert_eq!(
                snap.gauge("parallel.candidate_pairs"),
                Some(stats.candidate_pairs),
                "threads={threads}"
            );
            assert_eq!(snap.gauge("parallel.races"), Some(stats.races));
            assert_eq!(snap.gauge("parallel.threads"), Some(threads as u64));
            let shards = snap.gauge("parallel.shards").unwrap();
            assert!(shards >= 1 && shards <= threads as u64);
            // Per-shard utilization covers all candidates (with possible
            // cross-shard double counting).
            let shard_sum: u64 = (0..shards)
                .map(|i| snap.gauge(&format!("parallel.shard.{i}.pairs")).unwrap())
                .sum();
            assert!(shard_sum >= stats.candidate_pairs);
            assert!(snap.phase_ns("parallel.shard.0").is_some());
        }
    }

    #[test]
    fn metered_parallel_shard_gauges_are_deterministic() {
        use wmrd_trace::Metrics;
        let trace = busy_trace(3, 9);
        let hb = HbGraph::build(&trace, PairingPolicy::ByRole).unwrap();
        let snap = |_: u32| {
            let m = Metrics::enabled();
            detect_races_parallel_metered(&trace, &hb, 3, &m);
            m.report().deterministic_view()
        };
        assert_eq!(snap(0), snap(1), "sorted sharding makes gauges reproducible");
    }

    #[test]
    fn metered_batch_records_shape_and_outcomes() {
        use wmrd_trace::{Metrics, OpId};
        let good = busy_trace(2, 4);
        let bad = {
            let mut b = TraceBuilder::new(1);
            b.sync_access(
                p(0),
                l(0),
                AccessKind::Read,
                SyncRole::Acquire,
                Value::ZERO,
                Some(OpId::new(p(0), 99)),
            );
            b.finish()
        };
        let metrics = Metrics::enabled();
        let results = analyze_batch_metered(
            &[good.clone(), bad, good],
            AnalysisOptions::default(),
            2,
            &metrics,
        );
        assert_eq!(results.len(), 3);
        let snap = metrics.report();
        assert_eq!(snap.gauge("batch.traces"), Some(3));
        assert_eq!(snap.gauge("batch.threads"), Some(2));
        assert_eq!(snap.gauge("batch.shards"), Some(2));
        assert_eq!(snap.gauge("batch.shard.0.traces"), Some(2));
        assert_eq!(snap.gauge("batch.shard.1.traces"), Some(1));
        assert_eq!(snap.counter("batch.reports_ok"), Some(2));
        assert_eq!(snap.counter("batch.reports_err"), Some(1));
        assert!(snap.phase_ns("batch.shard.0").is_some());
        // Batch metering never leaks per-trace analysis gauges (they
        // would race across shards).
        assert_eq!(snap.gauge("analysis.races"), None);
    }

    #[test]
    fn disabled_metrics_leave_parallel_paths_silent() {
        use wmrd_trace::Metrics;
        let trace = busy_trace(2, 4);
        let hb = HbGraph::build(&trace, PairingPolicy::ByRole).unwrap();
        let off = Metrics::disabled();
        let races = detect_races_parallel_metered(&trace, &hb, 2, &off);
        assert_eq!(races, detect_races(&trace, &hb));
        analyze_batch_metered(&[trace], AnalysisOptions::default(), 2, &off);
        assert!(off.report().is_empty());
    }
}
