//! Directed-graph machinery: adjacency lists, Tarjan's strongly connected
//! components, condensation, and bitset reachability.
//!
//! The paper's analysis needs three graph operations: path existence in
//! the (possibly cyclic) happens-before-1 graph of a weak execution, the
//! strongly connected components of the augmented graph G′ (Section 4.2),
//! and the partial order `P` between components. All three reduce to SCC
//! condensation plus reachability over the (acyclic) condensation, which
//! a topological sweep of bitsets computes in `O(V·E/64)`.

use std::fmt;

/// A directed graph over dense node indices `0..n`.
#[derive(Clone, Default)]
pub struct DiGraph {
    adj: Vec<Vec<u32>>,
    num_edges: usize,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph { adj: vec![Vec::new(); n], num_edges: 0 }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges (parallel edges counted).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds the edge `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: u32, to: u32) {
        assert!((to as usize) < self.adj.len(), "edge target out of range");
        self.adj[from as usize].push(to);
        self.num_edges += 1;
    }

    /// The successors of a node.
    pub fn successors(&self, node: u32) -> &[u32] {
        &self.adj[node as usize]
    }

    /// `true` iff a path of length ≥ 1 exists from `from` to `to`
    /// (iterative DFS — the "naive" reachability used as an ablation
    /// baseline; prefer [`Reachability`] for repeated queries).
    pub fn has_path(&self, from: u32, to: u32) -> bool {
        let mut seen = vec![false; self.adj.len()];
        let mut stack: Vec<u32> = self.successors(from).to_vec();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !std::mem::replace(&mut seen[n as usize], true) {
                stack.extend_from_slice(self.successors(n));
            }
        }
        false
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DiGraph({} nodes, {} edges)", self.num_nodes(), self.num_edges())
    }
}

/// Strongly connected components of a [`DiGraph`], from Tarjan's
/// algorithm (implemented iteratively to cope with deep graphs).
///
/// Components are numbered in **reverse topological order**: if an edge
/// leads from component `a` to component `b ≠ a`, then `a > b`.
#[derive(Debug, Clone)]
pub struct SccInfo {
    comp_of: Vec<u32>,
    comp_members: Vec<Vec<u32>>,
}

impl SccInfo {
    /// Computes the SCCs of `g`.
    pub fn compute(g: &DiGraph) -> Self {
        let n = g.num_nodes();
        let mut index = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut comp_of = vec![u32::MAX; n];
        let mut comp_members: Vec<Vec<u32>> = Vec::new();
        let mut next_index = 0u32;

        // Explicit DFS frames: (node, next-successor position).
        let mut frames: Vec<(u32, usize)> = Vec::new();
        for start in 0..n as u32 {
            if index[start as usize] != u32::MAX {
                continue;
            }
            frames.push((start, 0));
            index[start as usize] = next_index;
            low[start as usize] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start as usize] = true;

            while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
                let succs = g.successors(v);
                if *pos < succs.len() {
                    let w = succs[*pos];
                    *pos += 1;
                    if index[w as usize] == u32::MAX {
                        index[w as usize] = next_index;
                        low[w as usize] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w as usize] = true;
                        frames.push((w, 0));
                    } else if on_stack[w as usize] {
                        low[v as usize] = low[v as usize].min(index[w as usize]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent as usize] = low[parent as usize].min(low[v as usize]);
                    }
                    if low[v as usize] == index[v as usize] {
                        let comp_id = comp_members.len() as u32;
                        let mut members = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp_of[w as usize] = comp_id;
                            members.push(w);
                            if w == v {
                                break;
                            }
                        }
                        members.sort_unstable();
                        comp_members.push(members);
                    }
                }
            }
        }
        SccInfo { comp_of, comp_members }
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.comp_members.len()
    }

    /// The component a node belongs to.
    pub fn component_of(&self, node: u32) -> u32 {
        self.comp_of[node as usize]
    }

    /// The members of a component, ascending.
    pub fn members(&self, comp: u32) -> &[u32] {
        &self.comp_members[comp as usize]
    }

    /// `true` iff the component contains more than one node (every pair of
    /// its nodes lies on a cycle). Single nodes with a self-loop are not
    /// produced by the analyses here (hb and race edges never self-loop).
    pub fn is_nontrivial(&self, comp: u32) -> bool {
        self.comp_members[comp as usize].len() > 1
    }
}

/// The condensation of a graph: one node per SCC, deduplicated edges,
/// acyclic by construction.
#[derive(Debug, Clone)]
pub struct Condensation {
    /// The condensed (acyclic) graph; node `c` is SCC `c` of the input.
    pub graph: DiGraph,
    /// Components in topological order (sources first).
    pub topo: Vec<u32>,
}

impl Condensation {
    /// Builds the condensation from a graph and its SCCs.
    pub fn compute(g: &DiGraph, scc: &SccInfo) -> Self {
        let nc = scc.num_components();
        let mut cg = DiGraph::new(nc);
        let mut seen: Vec<u32> = vec![u32::MAX; nc];
        for v in 0..g.num_nodes() as u32 {
            let cv = scc.component_of(v);
            for &w in g.successors(v) {
                let cw = scc.component_of(w);
                if cv != cw && seen[cw as usize] != v {
                    seen[cw as usize] = v;
                    cg.add_edge(cv, cw);
                }
            }
        }
        // Tarjan numbers components in reverse topological order, so the
        // topological order is descending component ids.
        let topo: Vec<u32> = (0..nc as u32).rev().collect();
        Condensation { graph: cg, topo }
    }
}

/// All-pairs reachability over a condensation, as bitsets.
///
/// `query(a, b)` answers "is there a path of length ≥ 1 from node `a` to
/// node `b` in the *original* graph": `true` if both map to the same
/// nontrivial SCC, or if `b`'s SCC is reachable from `a`'s SCC.
#[derive(Clone)]
pub struct Reachability {
    scc: SccInfo,
    /// `bits[c]` = set of components reachable from component `c`
    /// (excluding `c` itself).
    bits: Vec<u64>,
    stride: usize,
    /// Components containing a self-loop edge (a singleton SCC with a
    /// self-loop still "reaches itself").
    self_loops: Vec<bool>,
}

impl Reachability {
    /// Computes reachability for `g`.
    pub fn compute(g: &DiGraph) -> Self {
        let scc = SccInfo::compute(g);
        let cond = Condensation::compute(g, &scc);
        Self::from_parts(g, scc, &cond)
    }

    /// Computes reachability from precomputed SCC + condensation.
    pub fn from_parts(g: &DiGraph, scc: SccInfo, cond: &Condensation) -> Self {
        let mut self_loops = vec![false; scc.num_components()];
        for v in 0..g.num_nodes() as u32 {
            if g.successors(v).contains(&v) {
                self_loops[scc.component_of(v) as usize] = true;
            }
        }
        let nc = scc.num_components();
        let stride = nc.div_ceil(64);
        let mut bits = vec![0u64; nc * stride];
        // Sweep in reverse topological order (sinks first): reach(c) =
        // ∪ over successors s of ({s} ∪ reach(s)).
        for &c in cond.topo.iter().rev() {
            let ci = c as usize;
            // Collect into a scratch row to appease the borrow checker.
            let mut row = vec![0u64; stride];
            for &s in cond.graph.successors(c) {
                let si = s as usize;
                row[si / 64] |= 1 << (si % 64);
                let src = &bits[si * stride..(si + 1) * stride];
                for (r, v) in row.iter_mut().zip(src) {
                    *r |= v;
                }
            }
            bits[ci * stride..(ci + 1) * stride].copy_from_slice(&row);
        }
        Reachability { scc, bits, stride, self_loops }
    }

    /// The SCC structure underlying this reachability index.
    pub fn scc(&self) -> &SccInfo {
        &self.scc
    }

    /// `true` iff a path of length ≥ 1 exists from `a` to `b` in the
    /// original graph.
    pub fn query(&self, a: u32, b: u32) -> bool {
        let ca = self.scc.component_of(a);
        let cb = self.scc.component_of(b);
        if ca == cb {
            return self.scc.is_nontrivial(ca) || self.self_loops[ca as usize];
        }
        self.comp_query(ca, cb)
    }

    /// `true` iff component `cb` is reachable from component `ca`
    /// (`ca != cb`; a component never "reaches itself" here).
    pub fn comp_query(&self, ca: u32, cb: u32) -> bool {
        let (ca, cb) = (ca as usize, cb as usize);
        self.bits[ca * self.stride + cb / 64] & (1 << (cb % 64)) != 0
    }

    /// `true` iff `a` and `b` are mutually unreachable (the "not ordered
    /// by hb1" half of the race definition).
    pub fn concurrent(&self, a: u32, b: u32) -> bool {
        !self.query(a, b) && !self.query(b, a)
    }
}

impl fmt::Debug for Reachability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reachability({} components)", self.scc.num_components())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
    fn diamond() -> DiGraph {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    /// Two 2-cycles joined: 0 <-> 1 -> 2 <-> 3.
    fn two_cycles() -> DiGraph {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 2);
        g
    }

    #[test]
    fn digraph_basics() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.successors(0), &[1, 2]);
        assert!(g.successors(3).is_empty());
        assert!(format!("{g:?}").contains("4 nodes"));
    }

    #[test]
    #[should_panic(expected = "edge target out of range")]
    fn add_edge_checks_range() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn has_path_dfs() {
        let g = diamond();
        assert!(g.has_path(0, 3));
        assert!(g.has_path(1, 3));
        assert!(!g.has_path(3, 0));
        assert!(!g.has_path(1, 2));
        assert!(!g.has_path(0, 0), "no self-path without a cycle");
        let c = two_cycles();
        assert!(c.has_path(0, 0), "cycle gives a self-path");
        assert!(c.has_path(0, 3));
        assert!(!c.has_path(2, 1));
    }

    #[test]
    fn scc_of_dag_is_singletons() {
        let g = diamond();
        let scc = SccInfo::compute(&g);
        assert_eq!(scc.num_components(), 4);
        for v in 0..4 {
            assert!(!scc.is_nontrivial(scc.component_of(v)));
            assert_eq!(scc.members(scc.component_of(v)), &[v]);
        }
    }

    #[test]
    fn scc_finds_cycles() {
        let g = two_cycles();
        let scc = SccInfo::compute(&g);
        assert_eq!(scc.num_components(), 2);
        assert_eq!(scc.component_of(0), scc.component_of(1));
        assert_eq!(scc.component_of(2), scc.component_of(3));
        assert_ne!(scc.component_of(0), scc.component_of(2));
        assert!(scc.is_nontrivial(scc.component_of(0)));
        assert_eq!(scc.members(scc.component_of(0)), &[0, 1]);
    }

    #[test]
    fn scc_component_numbering_is_reverse_topological() {
        let g = two_cycles();
        let scc = SccInfo::compute(&g);
        // Edge {0,1} -> {2,3}: source component id must be greater.
        assert!(scc.component_of(0) > scc.component_of(2));
    }

    #[test]
    fn condensation_is_acyclic_and_deduped() {
        let g = two_cycles();
        let scc = SccInfo::compute(&g);
        let cond = Condensation::compute(&g, &scc);
        assert_eq!(cond.graph.num_nodes(), 2);
        assert_eq!(cond.graph.num_edges(), 1, "parallel condensed edges deduplicated");
        assert_eq!(cond.topo.len(), 2);
        // topo: source before sink
        let src = scc.component_of(0);
        let sink = scc.component_of(2);
        let pos = |c: u32| cond.topo.iter().position(|&x| x == c).unwrap();
        assert!(pos(src) < pos(sink));
    }

    #[test]
    fn reachability_on_dag() {
        let r = Reachability::compute(&diamond());
        assert!(r.query(0, 3));
        assert!(r.query(0, 1));
        assert!(!r.query(3, 0));
        assert!(!r.query(1, 2));
        assert!(!r.query(0, 0));
        assert!(r.concurrent(1, 2));
        assert!(!r.concurrent(0, 3));
    }

    #[test]
    fn reachability_with_cycles() {
        let r = Reachability::compute(&two_cycles());
        assert!(r.query(0, 1) && r.query(1, 0), "same nontrivial SCC is mutually reachable");
        assert!(r.query(0, 0), "on a cycle, a node reaches itself");
        assert!(r.query(0, 3));
        assert!(!r.query(2, 0));
        assert!(!r.concurrent(0, 1));
    }

    #[test]
    fn reachability_matches_dfs_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..30 {
            let n = rng.gen_range(2..30);
            let mut g = DiGraph::new(n);
            let edges = rng.gen_range(0..n * 3);
            for _ in 0..edges {
                g.add_edge(rng.gen_range(0..n as u32), rng.gen_range(0..n as u32));
            }
            let r = Reachability::compute(&g);
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    assert_eq!(
                        r.query(a, b),
                        g.has_path(a, b),
                        "disagree on {a}->{b} in graph with {n} nodes"
                    );
                }
            }
        }
    }

    #[test]
    fn reachability_large_stride() {
        // More than 64 components exercises multi-word bitset rows.
        let n = 200;
        let mut g = DiGraph::new(n);
        for i in 0..(n as u32 - 1) {
            g.add_edge(i, i + 1);
        }
        let r = Reachability::compute(&g);
        assert!(r.query(0, 199));
        assert!(r.query(100, 150));
        assert!(!r.query(150, 100));
        assert!(!r.query(0, 0));
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(0);
        let scc = SccInfo::compute(&g);
        assert_eq!(scc.num_components(), 0);
        let r = Reachability::compute(&g);
        assert_eq!(r.scc().num_components(), 0);
    }

    #[test]
    fn self_loop_node() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        let scc = SccInfo::compute(&g);
        // A self-loop makes a singleton SCC, which `is_nontrivial`
        // reports as trivial — the analyses never create self-loops, but
        // has_path still answers correctly.
        assert_eq!(scc.num_components(), 2);
        assert!(g.has_path(0, 0));
    }
}
