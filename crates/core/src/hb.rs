//! The happens-before-1 graph over events (Definition 2.3, Section 4.1).
//!
//! One node per event; edges for program order (`po`, consecutive events
//! of the same processor) and synchronization order (`so1`, paired
//! release → acquire). `hb1` is the transitive closure, answered through
//! a [`Reachability`] index. For a weak execution the graph may contain
//! cycles (the paper notes `so1` of a weak execution need not be a
//! partial order); everything downstream handles that via strongly
//! connected components.

use std::collections::HashMap;

use wmrd_trace::{Event, EventId, TraceSet};

use crate::{so1_edges, AnalysisError, DiGraph, PairingPolicy, Reachability, So1Edge};

/// The happens-before-1 graph of one traced execution.
#[derive(Debug)]
pub struct HbGraph {
    nodes: Vec<EventId>,
    index: HashMap<EventId, u32>,
    graph: DiGraph,
    so1: Vec<So1Edge>,
    po_edge_count: usize,
    reach: Reachability,
}

impl HbGraph {
    /// Builds the hb1 graph of `trace` under a pairing policy.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Trace`] for invalid traces and
    /// [`AnalysisError::DanglingRelease`] for unresolvable pairings.
    pub fn build(trace: &TraceSet, policy: PairingPolicy) -> Result<Self, AnalysisError> {
        trace.validate()?;
        let mut nodes = Vec::with_capacity(trace.num_events());
        let mut index = HashMap::with_capacity(trace.num_events());
        for proc_trace in trace.processors() {
            for event in proc_trace.events() {
                index.insert(event.id, nodes.len() as u32);
                nodes.push(event.id);
            }
        }
        let mut graph = DiGraph::new(nodes.len());
        let mut po_edge_count = 0;
        for proc_trace in trace.processors() {
            for pair in proc_trace.events().windows(2) {
                graph.add_edge(index[&pair[0].id], index[&pair[1].id]);
                po_edge_count += 1;
            }
        }
        let so1 = so1_edges(trace, policy)?;
        for edge in &so1 {
            graph.add_edge(index[&edge.release], index[&edge.acquire]);
        }
        let reach = Reachability::compute(&graph);
        Ok(HbGraph { nodes, index, graph, so1, po_edge_count, reach })
    }

    /// Number of events (nodes).
    pub fn num_events(&self) -> usize {
        self.nodes.len()
    }

    /// Number of `po` edges.
    pub fn num_po_edges(&self) -> usize {
        self.po_edge_count
    }

    /// The `so1` edges.
    pub fn so1(&self) -> &[So1Edge] {
        &self.so1
    }

    /// The dense node index of an event.
    pub fn node_of(&self, event: EventId) -> Option<u32> {
        self.index.get(&event).copied()
    }

    /// The event at a dense node index.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn event_of(&self, node: u32) -> EventId {
        self.nodes[node as usize]
    }

    /// All events in node order (per-processor program order, processors
    /// concatenated).
    pub fn events(&self) -> &[EventId] {
        &self.nodes
    }

    /// The underlying edge structure (po ∪ so1).
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The reachability index over the graph.
    pub fn reach(&self) -> &Reachability {
        &self.reach
    }

    /// `true` iff `a` hb1-precedes `b` (a path of length ≥ 1 exists).
    ///
    /// Unknown events are unordered.
    pub fn ordered(&self, a: EventId, b: EventId) -> bool {
        match (self.node_of(a), self.node_of(b)) {
            (Some(na), Some(nb)) => self.reach.query(na, nb),
            _ => false,
        }
    }

    /// `true` iff neither `a` hb1 `b` nor `b` hb1 `a` — the "not ordered"
    /// half of the race definition.
    pub fn concurrent(&self, a: EventId, b: EventId) -> bool {
        !self.ordered(a, b) && !self.ordered(b, a)
    }

    /// `true` iff the hb1 relation contains a cycle (possible only for
    /// non-SC executions).
    pub fn has_cycle(&self) -> bool {
        (0..self.nodes.len() as u32).any(|n| {
            let c = self.reach.scc().component_of(n);
            self.reach.scc().is_nontrivial(c)
        })
    }

    /// Convenience lookup of the event payload in the originating trace.
    pub fn payload<'t>(&self, trace: &'t TraceSet, event: EventId) -> Option<&'t Event> {
        trace.event(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmrd_trace::{AccessKind, Location, ProcId, SyncRole, TraceBuilder, TraceSink, Value};

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    fn e(proc: u16, index: u32) -> EventId {
        EventId::new(p(proc), index)
    }

    /// Figure 1b's shape: P0 writes x,y then Unsets s; P1 Test&Sets s,
    /// then reads y,x.
    fn fig1b_trace() -> TraceSet {
        let mut b = TraceBuilder::new(2);
        let (x, y, s) = (l(0), l(1), l(9));
        b.data_access(p(0), x, AccessKind::Write, Value::new(1), None);
        b.data_access(p(0), y, AccessKind::Write, Value::new(1), None);
        let rel = b.sync_access(p(0), s, AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), s, AccessKind::Read, SyncRole::Acquire, Value::ZERO, Some(rel));
        b.sync_access(p(1), s, AccessKind::Write, SyncRole::None, Value::new(1), None);
        b.data_access(p(1), y, AccessKind::Read, Value::new(1), None);
        b.data_access(p(1), x, AccessKind::Read, Value::new(1), None);
        b.finish()
    }

    #[test]
    fn builds_po_and_so1() {
        let t = fig1b_trace();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        // P0: comp(x,y), Unset. P1: T&S-read, T&S-write, comp(y,x).
        assert_eq!(hb.num_events(), 5);
        assert_eq!(hb.num_po_edges(), 3);
        assert_eq!(hb.so1().len(), 1);
        assert_eq!(hb.so1()[0].release, e(0, 1));
        assert_eq!(hb.so1()[0].acquire, e(1, 0));
    }

    #[test]
    fn hb1_orders_across_pairing() {
        let t = fig1b_trace();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        // P0's computation event hb1-precedes P1's computation event via
        // po; Unset; so1; po; — the chain that makes Figure 1b race-free.
        assert!(hb.ordered(e(0, 0), e(1, 2)));
        assert!(!hb.ordered(e(1, 2), e(0, 0)));
        let _ = hb.concurrent(e(0, 0), e(0, 0)); // self comparisons unspecified
        assert!(!hb.has_cycle());
    }

    #[test]
    fn unpaired_events_are_concurrent() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        assert!(hb.concurrent(e(0, 0), e(1, 0)));
        assert_eq!(hb.so1().len(), 0);
    }

    #[test]
    fn program_order_is_transitive() {
        let mut b = TraceBuilder::new(1);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        b.sync_access(p(0), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        let t = b.finish();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        assert_eq!(hb.num_events(), 4);
        assert!(hb.ordered(e(0, 0), e(0, 3)), "po is transitive through hb1");
        assert!(!hb.ordered(e(0, 3), e(0, 0)));
    }

    #[test]
    fn unknown_events_are_unordered() {
        let t = fig1b_trace();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        assert!(!hb.ordered(e(7, 0), e(0, 0)));
        assert!(hb.node_of(e(7, 0)).is_none());
        assert!(hb.node_of(e(0, 0)).is_some());
    }

    #[test]
    fn event_node_roundtrip() {
        let t = fig1b_trace();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        for &ev in hb.events() {
            let n = hb.node_of(ev).unwrap();
            assert_eq!(hb.event_of(n), ev);
        }
    }

    #[test]
    fn payload_lookup() {
        let t = fig1b_trace();
        let hb = HbGraph::build(&t, PairingPolicy::ByRole).unwrap();
        let ev = hb.payload(&t, e(0, 1)).unwrap();
        assert!(ev.is_sync());
        assert!(hb.payload(&t, e(9, 9)).is_none());
    }
}
