//! Race partitions and the first partitions (Section 4.2).
//!
//! Data races are partitioned by the strongly connected components of the
//! augmented graph G′; partitions are partially ordered by path existence
//! between their components (`P`, Definition 4.1). A partition is
//! **first** if no other race-containing partition precedes it. The
//! paper's Theorems 4.1/4.2 guarantee that (a) first partitions exist iff
//! any data race occurred, and (b) each first partition contains at least
//! one race that also occurs in a sequentially consistent execution.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use wmrd_trace::EventId;

use crate::{AugmentedGraph, DataRace};

/// One partition: the data races whose events share a G′ strongly
/// connected component.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RacePartition {
    /// The G′ component id this partition corresponds to.
    pub component: u32,
    /// Indices into the analysis's race list.
    pub races: Vec<usize>,
    /// The distinct events involved in the partition's races, sorted.
    pub events: Vec<EventId>,
}

impl RacePartition {
    /// Number of races in the partition.
    pub fn len(&self) -> usize {
        self.races.len()
    }

    /// `true` if the partition holds no races (never produced by
    /// [`partition_races`]; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.races.is_empty()
    }
}

/// The set of race partitions of one execution, with their partial order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSet {
    partitions: Vec<RacePartition>,
    /// `order[i]` = indices of partitions that partition `i` precedes
    /// (directly or transitively) under `P`.
    order: Vec<Vec<usize>>,
    /// Indices of the first partitions.
    first: Vec<usize>,
}

impl PartitionSet {
    /// All partitions, in ascending component order.
    pub fn partitions(&self) -> &[RacePartition] {
        &self.partitions
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// `true` iff there are no race partitions (⇔ no data races,
    /// Theorem 4.1).
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Indices of the first partitions.
    pub fn first_indices(&self) -> &[usize] {
        &self.first
    }

    /// Iterates over the first partitions.
    pub fn first_partitions(&self) -> impl Iterator<Item = &RacePartition> {
        self.first.iter().map(|&i| &self.partitions[i])
    }

    /// Iterates over the non-first partitions (the races a sound reporter
    /// withholds: they may be artifacts / non-SC races).
    pub fn non_first_partitions(&self) -> impl Iterator<Item = &RacePartition> {
        self.partitions.iter().enumerate().filter(|(i, _)| !self.first.contains(i)).map(|(_, p)| p)
    }

    /// `true` iff partition `i` is a first partition.
    pub fn is_first(&self, i: usize) -> bool {
        self.first.contains(&i)
    }

    /// `true` iff partition `i` precedes partition `j` under `P`
    /// (a G′ path from an event of `i` to an event of `j`).
    pub fn precedes(&self, i: usize, j: usize) -> bool {
        self.order.get(i).is_some_and(|succ| succ.contains(&j))
    }
}

/// Groups the data races of an execution into partitions and identifies
/// the first partitions.
///
/// `races` must be the same slice the [`AugmentedGraph`] was built from.
pub fn partition_races(aug: &AugmentedGraph<'_>, races: &[DataRace]) -> PartitionSet {
    // Group data races by their (shared) component: both endpoints of a
    // data race are in one component because of the doubly-directed edge.
    let mut by_comp: HashMap<u32, Vec<usize>> = HashMap::new();
    for &i in aug.data_race_indices() {
        let race = &races[i];
        let comp = aug.component_of(race.a).expect("race endpoints are events of the graph");
        debug_assert_eq!(Some(comp), aug.component_of(race.b));
        by_comp.entry(comp).or_default().push(i);
    }
    let mut comps: Vec<u32> = by_comp.keys().copied().collect();
    comps.sort_unstable();

    let mut partitions = Vec::with_capacity(comps.len());
    for &comp in &comps {
        let race_indices = by_comp.remove(&comp).expect("key collected above");
        let mut events: Vec<EventId> =
            race_indices.iter().flat_map(|&i| [races[i].a, races[i].b]).collect();
        events.sort_unstable();
        events.dedup();
        partitions.push(RacePartition { component: comp, races: race_indices, events });
    }

    // Order partitions: i precedes j iff a G′ path runs between their
    // components (Definition 4.1). Components are distinct, so component
    // reachability is exactly path existence between some events.
    let n = partitions.len();
    let mut order = vec![Vec::new(); n];
    for i in 0..n {
        for j in 0..n {
            if i != j && aug.reach().comp_query(partitions[i].component, partitions[j].component) {
                order[i].push(j);
            }
        }
    }
    let first = (0..n).filter(|&j| (0..n).all(|i| i == j || !order[i].contains(&j))).collect();
    PartitionSet { partitions, order, first }
}

impl fmt::Display for PartitionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "no race partitions");
        }
        for (i, part) in self.partitions.iter().enumerate() {
            let marker = if self.is_first(i) { "FIRST" } else { "later" };
            writeln!(
                f,
                "partition {i} [{marker}] component {}: {} race(s), {} event(s)",
                part.component,
                part.len(),
                part.events.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{detect_races, HbGraph, PairingPolicy};
    use wmrd_trace::{
        AccessKind, Location, ProcId, SyncRole, TraceBuilder, TraceSet, TraceSink, Value,
    };

    fn p(i: u16) -> ProcId {
        ProcId::new(i)
    }

    fn l(a: u32) -> Location {
        Location::new(a)
    }

    struct Analysis {
        races: Vec<DataRace>,
        parts: PartitionSet,
    }

    fn analyze(trace: &TraceSet) -> Analysis {
        let hb = HbGraph::build(trace, PairingPolicy::ByRole).unwrap();
        let races = detect_races(trace, &hb);
        let aug = AugmentedGraph::build(&hb, &races);
        let parts = partition_races(&aug, &races);
        Analysis { races, parts }
    }

    #[test]
    fn race_free_trace_has_no_partitions() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(1), AccessKind::Write, Value::new(1), None);
        let a = analyze(&b.finish());
        assert!(a.parts.is_empty());
        assert_eq!(a.parts.first_partitions().count(), 0);
        assert_eq!(a.parts.to_string(), "no race partitions");
    }

    #[test]
    fn single_race_is_its_own_first_partition() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let a = analyze(&b.finish());
        assert_eq!(a.parts.len(), 1);
        assert_eq!(a.parts.first_indices(), &[0]);
        assert!(a.parts.is_first(0));
        assert_eq!(a.parts.partitions()[0].len(), 1);
        assert_eq!(a.parts.partitions()[0].events.len(), 2);
        assert!(!a.parts.precedes(0, 0));
    }

    /// Two independent races (disjoint locations, disjoint processors'
    /// phases): both partitions are first.
    #[test]
    fn independent_races_are_both_first() {
        let mut b = TraceBuilder::new(4);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        b.data_access(p(2), l(5), AccessKind::Write, Value::new(1), None);
        b.data_access(p(3), l(5), AccessKind::Read, Value::ZERO, None);
        let a = analyze(&b.finish());
        assert_eq!(a.parts.len(), 2);
        assert_eq!(a.parts.first_partitions().count(), 2);
        assert_eq!(a.parts.non_first_partitions().count(), 0);
    }

    /// A race whose participants are po-before a second race's
    /// participants: the second partition is ordered after the first and
    /// is not reported.
    #[test]
    fn downstream_race_is_not_first() {
        let mut b = TraceBuilder::new(2);
        // Race 1 on x between P0.e0 and P1.e0.
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        // Sync events split the computation events (no pairing: the sync
        // ops access different locations, so no so1 edge).
        b.sync_access(p(0), l(8), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.sync_access(p(1), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        // Race 2 on y between P0.e2 and P1.e2 — po-after race 1's events.
        b.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(1), AccessKind::Read, Value::ZERO, None);
        let a = analyze(&b.finish());
        assert_eq!(a.races.len(), 2);
        assert_eq!(a.parts.len(), 2);
        assert_eq!(a.parts.first_partitions().count(), 1);
        assert_eq!(a.parts.non_first_partitions().count(), 1);
        // The first partition is the one on location 0.
        let first = a.parts.first_partitions().next().unwrap();
        let race = &a.races[first.races[0]];
        assert!(race.locations.contains(l(0)));
        // And it precedes the other.
        let fi = a.parts.first_indices()[0];
        let other = (0..2).find(|&i| i != fi).unwrap();
        assert!(a.parts.precedes(fi, other));
        assert!(!a.parts.precedes(other, fi));
    }

    /// Mutually-affecting races collapse into one partition (a G′ cycle
    /// through two races).
    #[test]
    fn cyclically_related_races_share_a_partition() {
        let mut b = TraceBuilder::new(2);
        // P0: write x ; sync ; write y     P1: write y ; sync ; write x
        // Race on x: (P0.e0, P1.e2); race on y: (P0.e2, P1.e0).
        // G′ has the cycle P0.e0 -> P1.e2 (race) ... wait, race edges are
        // doubly directed: P0.e0 <-> P1.e2 and P0.e2 <-> P1.e0, plus po
        // P0.e0 -> P0.e2 and P1.e0 -> P1.e2. Cycle: P0.e0 -> P0.e2 ->
        // P1.e0 -> P1.e2 -> P0.e0.
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.sync_access(p(0), l(8), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.data_access(p(0), l(1), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(1), AccessKind::Write, Value::new(2), None);
        b.sync_access(p(1), l(9), AccessKind::Write, SyncRole::Release, Value::ZERO, None);
        b.data_access(p(1), l(0), AccessKind::Write, Value::new(2), None);
        let a = analyze(&b.finish());
        assert_eq!(a.races.len(), 2);
        assert_eq!(a.parts.len(), 1, "mutually affecting races form one partition");
        assert!(a.parts.is_first(0));
        assert_eq!(a.parts.partitions()[0].len(), 2);
        assert_eq!(a.parts.partitions()[0].events.len(), 4);
    }

    #[test]
    fn display_marks_first_partitions() {
        let mut b = TraceBuilder::new(2);
        b.data_access(p(0), l(0), AccessKind::Write, Value::new(1), None);
        b.data_access(p(1), l(0), AccessKind::Read, Value::ZERO, None);
        let a = analyze(&b.finish());
        let s = a.parts.to_string();
        assert!(s.contains("FIRST"), "{s}");
    }

    #[test]
    fn partition_len_and_empty() {
        let part = RacePartition { component: 0, races: vec![], events: vec![] };
        assert!(part.is_empty());
        assert_eq!(part.len(), 0);
    }
}
