//! Error type for campaign construction and execution.

use std::fmt;

use wmrd_core::AnalysisError;
use wmrd_sim::SimError;

/// Errors produced while building or running a campaign.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExploreError {
    /// The campaign spec is unusable (empty seed range, empty model
    /// list, out-of-range drain probability, …).
    InvalidSpec(String),
    /// The simulator rejected the program or an execution failed with a
    /// non-budget error (budget exhaustion is *not* an error — it is
    /// counted and the partial trace is still analyzed).
    Sim(SimError),
    /// The post-mortem analysis rejected a trace.
    Analysis(AnalysisError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::InvalidSpec(m) => write!(f, "invalid campaign spec: {m}"),
            ExploreError::Sim(e) => write!(f, "simulation failed: {e}"),
            ExploreError::Analysis(e) => write!(f, "analysis failed: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExploreError::InvalidSpec(_) => None,
            ExploreError::Sim(e) => Some(e),
            ExploreError::Analysis(e) => Some(e),
        }
    }
}

impl From<SimError> for ExploreError {
    fn from(e: SimError) -> Self {
        ExploreError::Sim(e)
    }
}

impl From<AnalysisError> for ExploreError {
    fn from(e: AnalysisError) -> Self {
        ExploreError::Analysis(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ExploreError::InvalidSpec("no seeds".into());
        assert!(e.to_string().contains("no seeds"));
        use std::error::Error;
        assert!(e.source().is_none());
        let e: ExploreError = SimError::StepLimit(5).into();
        assert!(e.to_string().contains("5"));
        assert!(e.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExploreError>();
    }
}
