//! What a campaign explores: the cross product of hardware models,
//! drain policies and scheduler seeds.

use serde::{Deserialize, Serialize};
use wmrd_core::PairingPolicy;
use wmrd_faults::FaultPlan;
use wmrd_sim::{Fidelity, HwImpl, MemoryModel, RunConfig};

use crate::ExploreError;

/// When the engine runs the full post-mortem analysis on a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PostMortemPolicy {
    /// Only when the on-the-fly fast path flagged at least one race
    /// (the default). The fast path is one-sided — it can miss races
    /// but does not invent them — so this trades a small chance of
    /// missed identities per execution for a large speedup on
    /// race-free schedules; across a campaign's many seeds the misses
    /// wash out.
    #[default]
    OnRaceHit,
    /// On every execution, racy-looking or not: the exhaustive (and
    /// expensive) escape hatch for when per-execution completeness
    /// matters more than throughput.
    Always,
}

/// The coordinates of one execution: everything needed to reproduce it
/// exactly with the seeded schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecSpec {
    /// Hardware implementation style.
    pub hw: HwImpl,
    /// Memory model.
    pub model: MemoryModel,
    /// Condition 3.4 fidelity.
    pub fidelity: Fidelity,
    /// Probability the random weak scheduler picks a drain action.
    pub drain_prob: f64,
    /// Scheduler seed.
    pub seed: u64,
}

/// One point of a campaign: an [`ExecSpec`] plus its position in the
/// spec's deterministic enumeration order (what makes campaign reports
/// independent of worker count).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignPoint {
    /// Position in spec order; "first-reaching" means least index.
    pub index: usize,
    /// The execution coordinates.
    pub exec: ExecSpec,
}

/// A campaign specification: which executions to run, and how to
/// analyze them.
///
/// The point set is the cross product hardware × model × drain
/// probability × seed, enumerated in exactly that nesting order.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Hardware implementation styles to explore.
    pub hws: Vec<HwImpl>,
    /// Memory models to explore.
    pub models: Vec<MemoryModel>,
    /// Drain probabilities for the random weak scheduler.
    pub drain_probs: Vec<f64>,
    /// Seed range, half-open (`seed_start..seed_end`).
    pub seed_start: u64,
    /// End of the seed range (exclusive).
    pub seed_end: u64,
    /// Condition 3.4 fidelity for every execution.
    pub fidelity: Fidelity,
    /// Per-execution step/cycle budgets and timing.
    pub config: RunConfig,
    /// Release/acquire pairing for the analysis.
    pub pairing: PairingPolicy,
    /// When to run the full post-mortem.
    pub postmortem: PostMortemPolicy,
    /// Deterministic fault-injection plan (worker panics). The empty
    /// plan — the default — injects nothing; a `panics=N` scatter
    /// request is resolved against this spec's point count when the
    /// campaign starts.
    pub faults: FaultPlan,
}

impl CampaignSpec {
    /// A spec matching the CLI `run` defaults (store buffers, WO,
    /// drain probability 0.3) over the given seed range — the
    /// configuration whose single-seed runs a campaign extends.
    pub fn new(seed_start: u64, seed_end: u64) -> Self {
        CampaignSpec {
            hws: vec![HwImpl::StoreBuffer],
            models: vec![MemoryModel::Wo],
            drain_probs: vec![0.3],
            seed_start,
            seed_end,
            fidelity: Fidelity::Conditioned,
            config: RunConfig::default(),
            pairing: PairingPolicy::ByRole,
            postmortem: PostMortemPolicy::default(),
            faults: FaultPlan::none(),
        }
    }

    /// Replaces the hardware list.
    pub fn with_hws(mut self, hws: Vec<HwImpl>) -> Self {
        self.hws = hws;
        self
    }

    /// Replaces the model list.
    pub fn with_models(mut self, models: Vec<MemoryModel>) -> Self {
        self.models = models;
        self
    }

    /// Replaces the drain-probability list.
    pub fn with_drain_probs(mut self, drain_probs: Vec<f64>) -> Self {
        self.drain_probs = drain_probs;
        self
    }

    /// Replaces the per-execution run configuration.
    pub fn with_config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the post-mortem policy.
    pub fn with_postmortem(mut self, postmortem: PostMortemPolicy) -> Self {
        self.postmortem = postmortem;
        self
    }

    /// Replaces the fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Checks the spec is runnable.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::InvalidSpec`] on an empty cross product
    /// or an out-of-range drain probability.
    pub fn validate(&self) -> Result<(), ExploreError> {
        if self.seed_start >= self.seed_end {
            return Err(ExploreError::InvalidSpec(format!(
                "empty seed range {}..{}",
                self.seed_start, self.seed_end
            )));
        }
        if self.hws.is_empty() {
            return Err(ExploreError::InvalidSpec("no hardware implementations".into()));
        }
        if self.models.is_empty() {
            return Err(ExploreError::InvalidSpec("no memory models".into()));
        }
        if self.drain_probs.is_empty() {
            return Err(ExploreError::InvalidSpec("no drain probabilities".into()));
        }
        for &p in &self.drain_probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(ExploreError::InvalidSpec(format!(
                    "drain probability {p} outside [0, 1]"
                )));
            }
        }
        Ok(())
    }

    /// Number of points in the cross product.
    pub fn num_points(&self) -> usize {
        self.hws.len()
            * self.models.len()
            * self.drain_probs.len()
            * (self.seed_end - self.seed_start) as usize
    }

    /// Every point, in the spec's canonical order (hardware, then
    /// model, then drain probability, then seed).
    pub fn points(&self) -> Vec<CampaignPoint> {
        let mut out = Vec::with_capacity(self.num_points());
        for &hw in &self.hws {
            for &model in &self.models {
                for &drain_prob in &self.drain_probs {
                    for seed in self.seed_start..self.seed_end {
                        out.push(CampaignPoint {
                            index: out.len(),
                            exec: ExecSpec { hw, model, fidelity: self.fidelity, drain_prob, seed },
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_single_run_configuration() {
        let spec = CampaignSpec::new(0, 10);
        spec.validate().unwrap();
        assert_eq!(spec.hws, vec![HwImpl::StoreBuffer]);
        assert_eq!(spec.models, vec![MemoryModel::Wo]);
        assert_eq!(spec.drain_probs, vec![0.3]);
        assert_eq!(spec.num_points(), 10);
    }

    #[test]
    fn points_enumerate_the_cross_product_in_order() {
        let spec = CampaignSpec::new(5, 7)
            .with_hws(vec![HwImpl::StoreBuffer, HwImpl::InvalQueue])
            .with_models(vec![MemoryModel::Wo, MemoryModel::RCsc])
            .with_drain_probs(vec![0.1, 0.5]);
        let points = spec.points();
        assert_eq!(points.len(), spec.num_points());
        assert_eq!(points.len(), 2 * 2 * 2 * 2);
        // Canonical nesting: seed varies fastest, hardware slowest.
        assert_eq!(points[0].exec.seed, 5);
        assert_eq!(points[1].exec.seed, 6);
        assert_eq!(points[1].exec.drain_prob, 0.1);
        assert_eq!(points[2].exec.drain_prob, 0.5);
        assert_eq!(points[0].exec.hw, HwImpl::StoreBuffer);
        assert_eq!(points[8].exec.hw, HwImpl::InvalQueue);
        for (i, pt) in points.iter().enumerate() {
            assert_eq!(pt.index, i);
        }
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        assert!(CampaignSpec::new(3, 3).validate().is_err());
        assert!(CampaignSpec::new(0, 1).with_hws(vec![]).validate().is_err());
        assert!(CampaignSpec::new(0, 1).with_models(vec![]).validate().is_err());
        assert!(CampaignSpec::new(0, 1).with_drain_probs(vec![]).validate().is_err());
        assert!(CampaignSpec::new(0, 1).with_drain_probs(vec![1.5]).validate().is_err());
        assert!(CampaignSpec::new(0, 1).with_drain_probs(vec![0.0, 1.0]).validate().is_ok());
    }
}
