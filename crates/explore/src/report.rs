//! The deduplicated product of a campaign.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};
use wmrd_core::RaceKey;
use wmrd_trace::{metric_keys, Metrics};

use crate::spec::ExecSpec;

/// One deduplicated race identity with its campaign-wide evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RaceFinding {
    /// The execution-independent identity ([`RaceKey`]).
    pub key: RaceKey,
    /// Executions in which the identity appeared.
    pub hits: u64,
    /// Executions in which it appeared inside a *first* partition —
    /// i.e. with Theorem 4.2's report-worthiness guarantee.
    pub first_partition_hits: u64,
    /// The first point (least spec index) that reached the race; its
    /// seed reproduces the finding exactly via the seeded schedulers.
    pub first: ExecSpec,
}

/// One contained per-execution failure: a worker panic (injected or
/// real) or a per-point error that was caught, itemized and folded into
/// the report instead of aborting the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecFailure {
    /// Spec-order index of the failed point.
    pub index: u64,
    /// The execution coordinates that were being run.
    pub exec: ExecSpec,
    /// Deterministic reason: the panic message or the error rendering.
    pub reason: String,
}

/// Per-configuration schedule-coverage counters: how much of a
/// hardware/model/drain-probability combination's schedule space the
/// seeds actually exercised.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoverageRow {
    /// Executions run under this configuration.
    pub executions: u64,
    /// Executions in which the analysis confirmed at least one data
    /// race.
    pub racy: u64,
    /// Executions stopped by a step or cycle budget.
    pub budget_hits: u64,
    /// Distinct final shared-memory states observed — a lower bound on
    /// the number of semantically different schedules covered.
    pub distinct_final_states: u64,
}

/// The deduplicated, deterministic result of a campaign.
///
/// For a fixed program and [`CampaignSpec`](crate::CampaignSpec) the
/// report is byte-identical regardless of how many worker threads
/// produced it: points are folded in spec order, findings are keyed by
/// the totally ordered [`RaceKey`], and coverage rows by configuration
/// label.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Name of the explored program.
    pub program: String,
    /// Points in the spec (executions attempted).
    pub points: u64,
    /// Executions that completed: `points` minus contained failures.
    pub executions: u64,
    /// Executions whose worker panicked or errored; each is itemized in
    /// [`failures`](CampaignReport::failures), never fatal to the sweep.
    pub failed_executions: u64,
    /// Executions stopped by a step or cycle budget.
    pub budget_hits: u64,
    /// Executions with at least one confirmed data race.
    pub racy_executions: u64,
    /// Full post-mortem analyses performed.
    pub postmortems: u64,
    /// Simulator steps summed over executions that ran to quiescence.
    pub total_steps: u64,
    /// Deduplicated findings, in [`RaceKey`] order.
    pub races: Vec<RaceFinding>,
    /// Coverage counters keyed by `"hw/model/p=drain_prob"` labels.
    pub coverage: BTreeMap<String, CoverageRow>,
    /// Distinct first-partition profiles (each a sorted list of the
    /// race keys appearing in first partitions) observed across racy
    /// executions. One profile means the first-partition structure is
    /// stable under schedule perturbation; several mean different
    /// schedules surface different "report first" sets.
    pub first_partition_profiles: Vec<Vec<RaceKey>>,
    /// Contained failures, in spec order. Deterministic for a fixed
    /// program, spec and fault plan, like everything else here.
    pub failures: Vec<ExecFailure>,
    /// `true` iff the campaign was skipped entirely because a static
    /// pre-filter (`wmrd lint` via `explore --prune-static`) proved the
    /// program race-free; `points` then records what *would* have run.
    #[serde(default)]
    pub pruned: bool,
    /// Why the campaign was pruned, when [`pruned`](Self::pruned) is
    /// set (e.g. the lint verdict line).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub prune_reason: Option<String>,
}

impl CampaignReport {
    /// The deduplicated race identities, in order.
    pub fn keys(&self) -> impl Iterator<Item = &RaceKey> {
        self.races.iter().map(|f| &f.key)
    }

    /// Looks up a finding by identity.
    pub fn finding(&self, key: &RaceKey) -> Option<&RaceFinding> {
        self.races.iter().find(|f| &f.key == key)
    }

    /// `true` if no execution exhibited a data race.
    pub fn is_race_free(&self) -> bool {
        self.races.is_empty()
    }

    /// Records the campaign's aggregate counters under the `explore.*`
    /// metric keys (see `OBSERVABILITY.md`).
    pub fn record_into(&self, metrics: &Metrics) {
        metrics.add(metric_keys::EXPLORE_EXECUTIONS, self.executions);
        metrics.add(metric_keys::EXPLORE_FAILURES, self.failed_executions);
        metrics.add(metric_keys::EXPLORE_BUDGET_HITS, self.budget_hits);
        metrics.add(metric_keys::EXPLORE_RACY_EXECUTIONS, self.racy_executions);
        metrics.add(metric_keys::EXPLORE_POSTMORTEMS, self.postmortems);
        metrics.add(metric_keys::EXPLORE_TOTAL_STEPS, self.total_steps);
        metrics.add(metric_keys::EXPLORE_UNIQUE_RACES, self.races.len() as u64);
        metrics.add(metric_keys::EXPLORE_RACE_HITS, self.races.iter().map(|f| f.hits).sum::<u64>());
        metrics.max_gauge(metric_keys::EXPLORE_POINTS, self.points);
        metrics.max_gauge(
            metric_keys::EXPLORE_PARTITION_PROFILES,
            self.first_partition_profiles.len() as u64,
        );
    }

    /// Human-readable rendering for the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "campaign: {} ({} points)", self.program, self.points);
        if self.pruned {
            let _ = writeln!(
                out,
                "pruned statically: {}",
                self.prune_reason.as_deref().unwrap_or("program is statically race-free")
            );
            return out;
        }
        let _ = writeln!(
            out,
            "executions: {} ({} racy, {} budget-stopped, {} post-mortems)",
            self.executions, self.racy_executions, self.budget_hits, self.postmortems
        );
        if !self.failures.is_empty() {
            let _ = writeln!(out, "{} contained failure(s):", self.failures.len());
            for f in &self.failures {
                let _ = writeln!(
                    out,
                    "  point {} (seed {}, {}, {}, p={}): {}",
                    f.index, f.exec.seed, f.exec.hw, f.exec.model, f.exec.drain_prob, f.reason
                );
            }
        }
        for (label, row) in &self.coverage {
            let _ = writeln!(
                out,
                "  {label:<28} {:>6} runs  {:>5} racy  {:>4} final states",
                row.executions, row.racy, row.distinct_final_states
            );
        }
        if self.races.is_empty() {
            let _ = writeln!(out, "no data races found");
        } else {
            let _ = writeln!(out, "{} deduplicated race(s):", self.races.len());
            for f in &self.races {
                let _ = writeln!(
                    out,
                    "  m[{}] {}:{:?}{} × {}:{:?}{}  hits={} first={} (seed {}, {}, {}, p={})",
                    f.key.loc.addr(),
                    f.key.a.proc,
                    f.key.a.kind,
                    if f.key.a.sync { "(sync)" } else { "" },
                    f.key.b.proc,
                    f.key.b.kind,
                    if f.key.b.sync { "(sync)" } else { "" },
                    f.hits,
                    f.first_partition_hits,
                    f.first.seed,
                    f.first.hw,
                    f.first.model,
                    f.first.drain_prob,
                );
            }
            let _ = writeln!(
                out,
                "first-partition stability: {} distinct profile(s) across racy executions",
                self.first_partition_profiles.len()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmrd_core::SideKey;
    use wmrd_sim::{Fidelity, HwImpl, MemoryModel};
    use wmrd_trace::{AccessKind, Location, ProcId};

    fn finding() -> RaceFinding {
        let a = SideKey { proc: ProcId::new(0), kind: AccessKind::Write, sync: false };
        let b = SideKey { proc: ProcId::new(1), kind: AccessKind::Read, sync: false };
        RaceFinding {
            key: RaceKey::new(Location::new(2), a, b),
            hits: 3,
            first_partition_hits: 2,
            first: ExecSpec {
                hw: HwImpl::StoreBuffer,
                model: MemoryModel::Wo,
                fidelity: Fidelity::Conditioned,
                drain_prob: 0.3,
                seed: 17,
            },
        }
    }

    #[test]
    fn render_names_the_race_and_its_seed() {
        let mut report = CampaignReport {
            program: "t".into(),
            points: 10,
            executions: 10,
            racy_executions: 3,
            races: vec![finding()],
            ..CampaignReport::default()
        };
        report.first_partition_profiles.push(vec![finding().key]);
        let text = report.render();
        assert!(text.contains("m[2]"), "{text}");
        assert!(text.contains("seed 17"), "{text}");
        assert!(text.contains("1 deduplicated race"), "{text}");
        assert!(!report.is_race_free());
        assert!(report.finding(&finding().key).is_some());
        assert_eq!(report.keys().count(), 1);
    }

    #[test]
    fn record_into_uses_explore_namespace() {
        let report = CampaignReport {
            program: "t".into(),
            points: 4,
            executions: 4,
            racy_executions: 1,
            total_steps: 99,
            races: vec![finding()],
            ..CampaignReport::default()
        };
        let m = Metrics::enabled();
        report.record_into(&m);
        let r = m.report();
        assert_eq!(r.counter(metric_keys::EXPLORE_EXECUTIONS), Some(4));
        assert_eq!(r.counter(metric_keys::EXPLORE_FAILURES), Some(0));
        assert_eq!(r.counter(metric_keys::EXPLORE_UNIQUE_RACES), Some(1));
        assert_eq!(r.counter(metric_keys::EXPLORE_RACE_HITS), Some(3));
        assert_eq!(r.counter(metric_keys::EXPLORE_TOTAL_STEPS), Some(99));
        assert_eq!(r.gauge(metric_keys::EXPLORE_POINTS), Some(4));
    }

    #[test]
    fn pruned_report_renders_the_reason_and_nothing_else() {
        let report = CampaignReport {
            program: "t".into(),
            points: 64,
            pruned: true,
            prune_reason: Some("statically race-free (0 may-race pairs)".into()),
            ..CampaignReport::default()
        };
        let text = report.render();
        assert!(text.contains("campaign: t (64 points)"), "{text}");
        assert!(text.contains("pruned statically"), "{text}");
        assert!(text.contains("0 may-race pairs"), "{text}");
        assert!(!text.contains("executions:"), "pruned campaigns ran nothing:\n{text}");
        assert!(report.is_race_free());
    }

    #[test]
    fn failures_are_itemized_in_the_rendering() {
        let report = CampaignReport {
            program: "t".into(),
            points: 4,
            executions: 3,
            failed_executions: 1,
            failures: vec![ExecFailure {
                index: 2,
                exec: finding().first,
                reason: "injected fault: worker panic at point 2".into(),
            }],
            ..CampaignReport::default()
        };
        let text = report.render();
        assert!(text.contains("1 contained failure(s):"), "{text}");
        assert!(text.contains("point 2"), "{text}");
        assert!(text.contains("injected fault"), "{text}");
        let m = Metrics::enabled();
        report.record_into(&m);
        assert_eq!(m.report().counter(metric_keys::EXPLORE_FAILURES), Some(1));
    }
}
