//! Side-channel observation of campaign executions.
//!
//! A campaign's deliverable is its deterministic [`CampaignReport`] —
//! but some consumers want the racy *traces* themselves, as they are
//! found: `wmrd explore --sink` streams them to a running `wmrd serve`
//! daemon, which deduplicates across campaigns in its catalog. The
//! observer is strictly a side channel: it sees each racy execution
//! exactly once, in worker (non-deterministic) order, and nothing it
//! does can change the report.
//!
//! [`CampaignReport`]: crate::report::CampaignReport

use wmrd_trace::TraceSet;

use crate::spec::ExecSpec;

/// A hook invoked for every racy execution a campaign confirms.
///
/// Implementations are called concurrently from worker threads, so
/// they must be `Sync`; invocation order is scheduling-dependent.
/// The trace arrives with its `meta` populated (program, model, seed),
/// so its digest is self-describing. A panicking observer is contained
/// exactly like a panicking worker: the point is recorded as a failed
/// execution and the sweep continues.
pub trait CampaignObserver: Sync {
    /// Called once per execution whose post-mortem confirmed at least
    /// one data race.
    fn racy_execution(&self, exec: &ExecSpec, trace: &TraceSet);
}

/// The default observer: ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoObserver;

impl CampaignObserver for NoObserver {
    fn racy_execution(&self, _exec: &ExecSpec, _trace: &TraceSet) {}
}

/// An observer that collects racy traces in memory — the test seam
/// for the side channel, and a building block for batch submitters.
#[derive(Debug, Default)]
pub struct CollectingObserver {
    traces: std::sync::Mutex<Vec<(ExecSpec, TraceSet)>>,
}

impl CollectingObserver {
    /// Takes every collected `(exec, trace)` pair, in arrival order.
    pub fn into_traces(self) -> Vec<(ExecSpec, TraceSet)> {
        self.traces.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl CampaignObserver for CollectingObserver {
    fn racy_execution(&self, exec: &ExecSpec, trace: &TraceSet) {
        self.traces.lock().unwrap_or_else(|e| e.into_inner()).push((*exec, trace.clone()));
    }
}
