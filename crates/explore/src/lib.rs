//! Parallel schedule-space exploration for cross-execution race hunting.
//!
//! The paper's analysis is post-mortem over a *single* observed
//! execution: which races surface depends entirely on the schedule and
//! drain timings the simulator happened to pick, and Theorem 4.2's
//! guarantee (first partitions contain a race from *some* sequentially
//! consistent execution) is per-execution. This crate drives the
//! detector *across* executions: a campaign runs a program under a
//! cross product of hardware models, drain policies and scheduler
//! seeds — in parallel — pipes every trace through the `wmrd-core`
//! pipeline (on-the-fly fast path, full post-mortem on race hits), and
//! deduplicates what it finds by execution-independent identity
//! ([`wmrd_core::RaceKey`], the paper's Section 2.1 "part of the
//! program" notion) into one deterministic [`CampaignReport`]:
//!
//! * per-race hit counts and first-partition hit counts,
//! * the first-reaching seed of every race, for exact reproduction via
//!   the seeded schedulers ([`replay`]),
//! * schedule-coverage counters per hardware configuration, and
//! * first-partition stability across executions.
//!
//! # Example
//!
//! ```
//! use wmrd_explore::{run_campaign, CampaignSpec};
//! use wmrd_sim::{Addr, Instr, Program, Reg};
//! use wmrd_trace::{Location, Metrics};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A racy program: unsynchronized write/read of x.
//! let x = Location::new(0);
//! let mut prog = Program::new("racy", 1);
//! prog.push_proc(vec![Instr::St { src: 1.into(), addr: Addr::Abs(x) }, Instr::Halt]);
//! prog.push_proc(vec![Instr::Ld { dst: Reg::new(0), addr: Addr::Abs(x) }, Instr::Halt]);
//!
//! let spec = CampaignSpec::new(0, 16);
//! let report = run_campaign(&prog, &spec, 4, &Metrics::disabled())?;
//! assert_eq!(report.executions, 16);
//! assert!(!report.is_race_free());
//! let finding = &report.races[0];
//! // The first-reaching seed replays to the same identity.
//! let replay = wmrd_explore::replay(&prog, &finding.first, spec.config, spec.pairing)?;
//! assert!(replay.keys.contains(&finding.key));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod error;
mod observe;
mod report;
mod spec;

pub use engine::{replay, run_campaign, run_campaign_observed, Replay};
pub use error::ExploreError;
pub use observe::{CampaignObserver, CollectingObserver, NoObserver};
pub use report::{CampaignReport, CoverageRow, ExecFailure, RaceFinding};
pub use spec::{CampaignPoint, CampaignSpec, ExecSpec, PostMortemPolicy};

#[cfg(test)]
mod tests {
    use super::*;
    use wmrd_sim::{Addr, HwImpl, Instr, MemoryModel, Program, Reg, RunConfig};
    use wmrd_trace::{Location, Metrics};

    fn racy_program() -> Program {
        let x = Location::new(0);
        let mut prog = Program::new("racy", 1);
        prog.push_proc(vec![Instr::St { src: 1.into(), addr: Addr::Abs(x) }, Instr::Halt]);
        prog.push_proc(vec![Instr::Ld { dst: Reg::new(0), addr: Addr::Abs(x) }, Instr::Halt]);
        prog
    }

    /// Two independent races so dedup has something to keep apart.
    fn two_race_program() -> Program {
        let mut prog = Program::new("two-races", 2);
        prog.push_proc(vec![
            Instr::St { src: 1.into(), addr: Addr::Abs(Location::new(0)) },
            Instr::St { src: 1.into(), addr: Addr::Abs(Location::new(1)) },
            Instr::Halt,
        ]);
        prog.push_proc(vec![
            Instr::Ld { dst: Reg::new(0), addr: Addr::Abs(Location::new(0)) },
            Instr::Ld { dst: Reg::new(1), addr: Addr::Abs(Location::new(1)) },
            Instr::Halt,
        ]);
        prog
    }

    fn drf_program() -> Program {
        // One processor, no sharing: nothing can race.
        let mut prog = Program::new("drf", 1);
        prog.push_proc(vec![
            Instr::St { src: 1.into(), addr: Addr::Abs(Location::new(0)) },
            Instr::Ld { dst: Reg::new(0), addr: Addr::Abs(Location::new(0)) },
            Instr::Halt,
        ]);
        prog
    }

    #[test]
    fn report_is_independent_of_jobs() {
        let prog = two_race_program();
        let spec = CampaignSpec::new(0, 24)
            .with_hws(vec![HwImpl::StoreBuffer, HwImpl::InvalQueue])
            .with_models(vec![MemoryModel::Wo, MemoryModel::RCsc]);
        let r1 = run_campaign(&prog, &spec, 1, &Metrics::disabled()).unwrap();
        let r4 = run_campaign(&prog, &spec, 4, &Metrics::disabled()).unwrap();
        let r9 = run_campaign(&prog, &spec, 9, &Metrics::disabled()).unwrap();
        assert_eq!(r1, r4);
        assert_eq!(r1, r9);
        assert_eq!(r1.executions, spec.num_points() as u64);
    }

    #[test]
    fn campaign_dedups_and_counts_hits() {
        let prog = two_race_program();
        let spec = CampaignSpec::new(0, 32);
        let report = run_campaign(&prog, &spec, 4, &Metrics::disabled()).unwrap();
        assert!(!report.is_race_free());
        // Two distinct identities (one per location), never merged.
        let locs: std::collections::BTreeSet<u32> = report.keys().map(|k| k.loc.addr()).collect();
        assert_eq!(locs.len(), report.races.len(), "one identity per location here");
        // Hit counts sum over many executions but identities stay few.
        let hits: u64 = report.races.iter().map(|f| f.hits).sum();
        assert!(hits >= report.races.len() as u64);
        assert!(report.races.len() <= 4, "dedup keeps the identity count small");
        // Coverage row exists for the default configuration.
        assert!(report.coverage.contains_key("store-buffer/WO/p=0.3"));
    }

    #[test]
    fn race_free_program_yields_empty_report() {
        let report =
            run_campaign(&drf_program(), &CampaignSpec::new(0, 8), 2, &Metrics::disabled())
                .unwrap();
        assert!(report.is_race_free());
        assert_eq!(report.racy_executions, 0);
        assert_eq!(report.postmortems, 0, "fast path skips every post-mortem");
        assert!(report.first_partition_profiles.is_empty());
    }

    #[test]
    fn always_policy_runs_every_postmortem() {
        let spec = CampaignSpec::new(0, 8).with_postmortem(PostMortemPolicy::Always);
        let report = run_campaign(&drf_program(), &spec, 2, &Metrics::disabled()).unwrap();
        assert_eq!(report.postmortems, 8);
        assert!(report.is_race_free());
    }

    #[test]
    fn every_finding_replays_to_its_identity() {
        let prog = two_race_program();
        let spec = CampaignSpec::new(0, 16).with_hws(vec![HwImpl::StoreBuffer, HwImpl::InvalQueue]);
        let report = run_campaign(&prog, &spec, 4, &Metrics::disabled()).unwrap();
        assert!(!report.is_race_free());
        for finding in &report.races {
            let replay = replay(&prog, &finding.first, spec.config, spec.pairing).unwrap();
            assert!(
                replay.keys.contains(&finding.key),
                "seed {} must reproduce {:?}",
                finding.first.seed,
                finding.key
            );
        }
    }

    #[test]
    fn budget_hits_are_counted_not_fatal() {
        let spec = CampaignSpec::new(0, 4).with_config(RunConfig::uniform().with_max_steps(2));
        let report = run_campaign(&racy_program(), &spec, 2, &Metrics::disabled()).unwrap();
        assert_eq!(report.budget_hits, 4, "every run stops at the 2-step budget");
        assert_eq!(report.executions, 4);
    }

    #[test]
    fn metrics_are_recorded_under_explore_keys() {
        let m = Metrics::enabled();
        let report = run_campaign(&racy_program(), &CampaignSpec::new(0, 8), 2, &m).unwrap();
        report.record_into(&m);
        let r = m.report();
        assert_eq!(r.counter("explore.executions"), Some(8));
        assert_eq!(r.gauge("explore.jobs"), Some(2));
        assert!(r.phase_ns("explore.campaign").is_some());
        assert_eq!(r.counter("explore.unique_races"), Some(report.races.len() as u64));
    }

    #[test]
    fn injected_panics_are_contained_and_itemized() {
        use wmrd_faults::FaultPlan;
        let prog = two_race_program();
        let plan = FaultPlan::scattered_panics(11, 24, 3);
        let spec = CampaignSpec::new(0, 24).with_faults(plan.clone());
        let r1 = run_campaign(&prog, &spec, 1, &Metrics::disabled()).unwrap();
        let r4 = run_campaign(&prog, &spec, 4, &Metrics::disabled()).unwrap();
        assert_eq!(r1, r4, "failures fold deterministically, like findings");
        assert_eq!(r1.failed_executions, 3);
        assert_eq!(r1.failures.len(), 3);
        assert_eq!(r1.executions, 21, "non-faulted points all complete");
        for f in &r1.failures {
            assert!(plan.panics_at(f.index as usize), "failure at a planned point");
            assert!(f.reason.contains("injected fault"), "{}", f.reason);
        }
        assert!(r1.render().contains("contained failure"), "{}", r1.render());
        // The healthy points still surface the program's races.
        assert!(!r1.is_race_free());
    }

    #[test]
    fn scatter_requests_resolve_against_the_point_count() {
        use wmrd_faults::FaultPlan;
        let plan = FaultPlan::parse("seed=3;panics=2").unwrap();
        let spec = CampaignSpec::new(0, 8).with_faults(plan);
        let report = run_campaign(&two_race_program(), &spec, 2, &Metrics::disabled()).unwrap();
        assert_eq!(report.failed_executions, 2);
        assert_eq!(report.executions, 6);
    }

    #[test]
    fn fault_metrics_are_recorded() {
        use wmrd_faults::FaultPlan;
        let m = Metrics::enabled();
        let spec = CampaignSpec::new(0, 12).with_faults(FaultPlan::scattered_panics(0, 12, 2));
        run_campaign(&racy_program(), &spec, 3, &m).unwrap();
        let r = m.report();
        assert_eq!(r.counter("faults.worker_panics"), Some(2));
        assert_eq!(r.counter("faults.contained"), Some(2));
        assert_eq!(r.counter("faults.injected"), Some(2));
    }

    #[test]
    fn observer_sees_every_racy_trace_without_changing_the_report() {
        let prog = two_race_program();
        let spec = CampaignSpec::new(0, 24);
        let baseline = run_campaign(&prog, &spec, 4, &Metrics::disabled()).unwrap();

        let observer = CollectingObserver::default();
        let observed =
            run_campaign_observed(&prog, &spec, 4, &Metrics::disabled(), &observer).unwrap();
        assert_eq!(observed, baseline, "the observer is a pure side channel");

        let traces = observer.into_traces();
        assert_eq!(traces.len() as u64, baseline.racy_executions);
        for (exec, trace) in &traces {
            assert_eq!(trace.meta.program.as_deref(), Some("two-races"));
            assert_eq!(trace.meta.model.as_deref(), Some(exec.model.to_string().as_str()));
            assert_eq!(trace.meta.seed, Some(exec.seed));
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let err = run_campaign(&racy_program(), &CampaignSpec::new(5, 5), 1, &Metrics::disabled());
        assert!(matches!(err, Err(ExploreError::InvalidSpec(_))));
        let err = run_campaign(
            &Program::new("empty", 1),
            &CampaignSpec::new(0, 2),
            1,
            &Metrics::disabled(),
        );
        assert!(matches!(err, Err(ExploreError::Sim(_))), "no processors");
    }
}
