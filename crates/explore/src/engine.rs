//! The campaign engine: parallel seeded executions, analyzed and folded
//! into one deterministic report.
//!
//! Work distribution is a shared atomic cursor over the spec's point
//! list: `jobs` worker threads (std threads — the workload is pure CPU
//! and the unit of work is a whole execution, so a work-stealing
//! runtime would buy nothing) claim points in order, run them on a
//! per-configuration [`CampaignRunner`] (machine reuse, no per-seed
//! rebuild), and deposit an outcome into the point's slot. The fold
//! over slots happens sequentially in spec order, which is what makes
//! the report independent of `jobs` and "first-reaching seed" well
//! defined.
//!
//! Workers degrade gracefully: each point runs under
//! [`catch_unwind`], so a panicking worker (injected via
//! [`CampaignSpec::faults`] or real) loses only its current point —
//! recorded as a [`ExecFailure`] in the report — and the sweep
//! continues on a rebuilt machine.
//!
//! Per execution the trace is consumed twice, cheaply: an
//! [`OnTheFly`] vector-clock detector rides the sink pipeline as the
//! fast path, and only executions it flags (or every execution, under
//! [`PostMortemPolicy::Always`]) pay for the full post-mortem — graph
//! construction, partitioning, first partitions.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use wmrd_core::{
    event_race_keys, one_event_race_keys, OnTheFly, OnTheFlyConfig, PostMortem, RaceKey,
};
use wmrd_sim::{
    run_weak_hw, CampaignRunner, HwImpl, MemoryModel, Program, RandomWeakSched, RunConfig, SimError,
};
use wmrd_trace::{metric_keys, Metrics, MultiSink, TraceBuilder, TraceSet};

use crate::observe::{CampaignObserver, NoObserver};
use crate::report::{CampaignReport, ExecFailure, RaceFinding};
use crate::spec::{CampaignPoint, CampaignSpec, ExecSpec, PostMortemPolicy};
use crate::ExploreError;

/// Everything one execution contributes to the fold.
#[derive(Debug, Clone)]
struct PointOutcome {
    exec: ExecSpec,
    budget_hit: bool,
    steps: u64,
    final_state: u64,
    racy: bool,
    postmortem: bool,
    keys: BTreeSet<RaceKey>,
    first_profile: Vec<RaceKey>,
}

/// The result of replaying one campaign point in full detail (the
/// `--repro` path).
#[derive(Debug)]
pub struct Replay {
    /// The execution's coordinates.
    pub exec: ExecSpec,
    /// `true` if the execution was stopped by a step or cycle budget.
    pub budget_hit: bool,
    /// The (possibly partial) event trace.
    pub trace: TraceSet,
    /// The full post-mortem analysis of the trace.
    pub report: wmrd_core::RaceReport,
    /// The execution-independent identities of the trace's data races.
    pub keys: BTreeSet<RaceKey>,
}

/// Runs a campaign over `program`, distributing points over `jobs`
/// worker threads.
///
/// The returned report depends only on `program` and `spec` — never on
/// `jobs` — and every finding's `first` coordinates reproduce the race
/// via [`replay`].
///
/// Failures after the pre-flight checks are *contained*, not fatal: a
/// worker panic (injected via [`CampaignSpec::faults`] or real), a
/// non-budget simulator error or a post-mortem rejection is caught,
/// itemized in [`CampaignReport::failures`] with a deterministic reason
/// string, and the sweep continues. Budget exhaustion
/// ([`SimError::StepLimit`] / [`SimError::CycleLimit`]) is not a
/// failure at all: it is counted and the partial trace analyzed like
/// any other.
///
/// # Errors
///
/// Returns [`ExploreError::InvalidSpec`] for a degenerate spec and
/// [`ExploreError::Sim`] if the program fails validation — the only
/// fatal, pre-flight errors.
pub fn run_campaign(
    program: &Program,
    spec: &CampaignSpec,
    jobs: usize,
    metrics: &Metrics,
) -> Result<CampaignReport, ExploreError> {
    run_campaign_observed(program, spec, jobs, metrics, &NoObserver)
}

/// [`run_campaign`], with a side-channel [`CampaignObserver`] that sees
/// every racy execution's trace as it is confirmed.
///
/// The observer cannot change the report: it is invoked after a point's
/// outcome is fully computed, and the fold never consults it. This is
/// how `wmrd explore --sink` streams findings to a `wmrd serve` daemon
/// without giving up report determinism.
///
/// # Errors
///
/// As [`run_campaign`].
pub fn run_campaign_observed(
    program: &Program,
    spec: &CampaignSpec,
    jobs: usize,
    metrics: &Metrics,
    observer: &dyn CampaignObserver,
) -> Result<CampaignReport, ExploreError> {
    spec.validate()?;
    program.validate()?;
    let points = spec.points();
    let jobs = jobs.clamp(1, points.len());
    metrics.max_gauge(metric_keys::EXPLORE_JOBS, jobs as u64);
    // A `panics=N` scatter request needs the point count to pick its
    // victims; resolution is a pure function of (seed, count).
    let faults = spec.faults.resolve_scatter(points.len());
    if !faults.is_empty() {
        metrics.add(metric_keys::FAULTS_INJECTED, faults.points().len() as u64);
        metrics.add(metric_keys::FAULTS_WORKER_PANICS, faults.panic_count() as u64);
    }

    let program = Arc::new(program.clone());
    let slots: Mutex<Vec<Option<Result<PointOutcome, String>>>> =
        Mutex::new((0..points.len()).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);

    metrics.time(metric_keys::EXPLORE_CAMPAIGN, || {
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| {
                    // One runner per hardware/model pair, built lazily and
                    // reused (reset, not rebuilt) across this worker's
                    // claimed seeds.
                    let mut runners: Vec<((HwImpl, MemoryModel), CampaignRunner)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(point) = points.get(i) else { break };
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            if faults.panics_at(i) {
                                panic!("injected fault: worker panic at point {i}");
                            }
                            run_point(&program, point, spec, &mut runners, observer)
                        }));
                        let outcome = match result {
                            Ok(Ok(outcome)) => Ok(outcome),
                            Ok(Err(e)) => Err(e.to_string()),
                            Err(payload) => {
                                // The unwind may have torn through a
                                // machine mid-step; drop this worker's
                                // cache so later points rebuild clean.
                                runners.clear();
                                Err(panic_reason(payload.as_ref()))
                            }
                        };
                        slots.lock().unwrap()[i] = Some(outcome);
                    }
                });
            }
        });
    });

    let outcomes = slots.into_inner().unwrap();
    let report = fold(program.name(), &points, outcomes);
    if report.failed_executions > 0 {
        metrics.add(metric_keys::FAULTS_CONTAINED, report.failed_executions);
    }
    Ok(report)
}

/// Renders a panic payload as a deterministic reason string, so reports
/// stay byte-identical across worker counts even under injected panics.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Runs one point on a (possibly reused) machine.
fn run_point(
    program: &Arc<Program>,
    point: &CampaignPoint,
    spec: &CampaignSpec,
    runners: &mut Vec<((HwImpl, MemoryModel), CampaignRunner)>,
    observer: &dyn CampaignObserver,
) -> Result<PointOutcome, ExploreError> {
    let exec = point.exec;
    let key = (exec.hw, exec.model);
    let runner = match runners.iter_mut().position(|(k, _)| *k == key) {
        Some(i) => &mut runners[i].1,
        None => {
            let runner = CampaignRunner::new(
                Arc::clone(program),
                exec.hw,
                exec.model,
                exec.fidelity,
                spec.config,
            )?;
            runners.push((key, runner));
            &mut runners.last_mut().expect("just pushed").1
        }
    };

    let mut sched = RandomWeakSched::new(exec.seed, exec.drain_prob);
    let mut sink = MultiSink::new(
        TraceBuilder::new(program.num_procs()),
        OnTheFly::new(
            program.num_procs(),
            OnTheFlyConfig { pairing: spec.pairing, ..OnTheFlyConfig::default() },
        ),
    );
    let run = runner.run(&mut sched, &mut sink);
    let (builder, otf) = sink.into_inner();
    let (budget_hit, steps, mut final_state) = match run {
        Ok(out) => {
            // Settled shared memory is the schedule-coverage
            // fingerprint: schedules that produced different final
            // states certainly covered different behaviors.
            let mut h = DefaultHasher::new();
            out.final_memory.hash(&mut h);
            (false, out.steps, h.finish())
        }
        Err(SimError::StepLimit(_)) | Err(SimError::CycleLimit(_)) => (true, 0, 0),
        Err(e) => return Err(e.into()),
    };
    let mut trace = builder.finish();
    // Stamp provenance so the trace (and its digest) is
    // self-describing when it leaves the campaign via an observer.
    trace.meta.program = Some(program.name().to_string());
    trace.meta.model = Some(exec.model.to_string());
    trace.meta.seed = Some(exec.seed);
    if budget_hit {
        // No settled memory for a budget-stopped run; fingerprint the
        // partial trace's shape instead, tagged so it never collides
        // with a completed run's state.
        let mut h = DefaultHasher::new();
        u8::MAX.hash(&mut h);
        for p in trace.processors() {
            p.events().len().hash(&mut h);
        }
        final_state = h.finish();
    }

    let fast_path_hit = !otf.races().is_empty();
    let wants_postmortem = fast_path_hit || spec.postmortem == PostMortemPolicy::Always;
    let (racy, keys, first_profile, postmortem) = if wants_postmortem {
        let report = PostMortem::new(&trace).pairing(spec.pairing).analyze()?;
        let keys = event_race_keys(&report.races, &trace);
        let mut profile = BTreeSet::new();
        for part in report.partitions.first_partitions() {
            for &ri in &part.races {
                profile.extend(one_event_race_keys(&report.races[ri], &trace));
            }
        }
        (!report.is_race_free(), keys, profile.into_iter().collect(), true)
    } else {
        (false, BTreeSet::new(), Vec::new(), false)
    };
    if racy {
        observer.racy_execution(&exec, &trace);
    }

    Ok(PointOutcome { exec, budget_hit, steps, final_state, racy, postmortem, keys, first_profile })
}

/// Folds outcomes in spec order into the deterministic report.
/// Failed points become [`ExecFailure`] entries, never errors.
fn fold(
    program: &str,
    points: &[CampaignPoint],
    outcomes: Vec<Option<Result<PointOutcome, String>>>,
) -> CampaignReport {
    let mut report = CampaignReport {
        program: program.to_string(),
        points: points.len() as u64,
        ..CampaignReport::default()
    };
    let mut findings: BTreeMap<RaceKey, RaceFinding> = BTreeMap::new();
    let mut profiles: BTreeSet<Vec<RaceKey>> = BTreeSet::new();
    let mut final_states: BTreeMap<String, BTreeSet<u64>> = BTreeMap::new();

    for (slot, point) in outcomes.into_iter().zip(points) {
        let outcome = match slot.expect("every point claimed exactly once") {
            Ok(outcome) => outcome,
            Err(reason) => {
                report.failed_executions += 1;
                report.failures.push(ExecFailure {
                    index: point.index as u64,
                    exec: point.exec,
                    reason,
                });
                continue;
            }
        };
        report.executions += 1;
        report.total_steps += outcome.steps;
        if outcome.budget_hit {
            report.budget_hits += 1;
        }
        if outcome.postmortem {
            report.postmortems += 1;
        }
        if outcome.racy {
            report.racy_executions += 1;
            profiles.insert(outcome.first_profile.clone());
        }

        let label =
            format!("{}/{}/p={}", outcome.exec.hw, outcome.exec.model, outcome.exec.drain_prob);
        let row = report.coverage.entry(label.clone()).or_default();
        row.executions += 1;
        if outcome.budget_hit {
            row.budget_hits += 1;
        }
        if outcome.racy {
            row.racy += 1;
        }
        final_states.entry(label).or_default().insert(outcome.final_state);

        let profile_set: BTreeSet<&RaceKey> = outcome.first_profile.iter().collect();
        for key in outcome.keys {
            let in_first = profile_set.contains(&key);
            let finding = findings.entry(key).or_insert_with(|| RaceFinding {
                key,
                hits: 0,
                first_partition_hits: 0,
                first: outcome.exec,
            });
            finding.hits += 1;
            if in_first {
                finding.first_partition_hits += 1;
            }
        }
    }

    for (label, states) in final_states {
        report.coverage.get_mut(&label).expect("row exists").distinct_final_states =
            states.len() as u64;
    }
    report.races = findings.into_values().collect();
    report.first_partition_profiles = profiles.into_iter().collect();
    report
}

/// Re-executes one campaign point with full detail: the trace, the
/// complete post-mortem report and the race identities — everything
/// needed to debug a finding from its `first` coordinates.
///
/// Replay builds a fresh machine via the public runner entry points, so
/// it also serves as the independent check that the campaign's
/// machine-reuse path changed nothing.
///
/// # Errors
///
/// Same as [`run_campaign`], for a single point.
pub fn replay(
    program: &Program,
    exec: &ExecSpec,
    config: RunConfig,
    pairing: wmrd_core::PairingPolicy,
) -> Result<Replay, ExploreError> {
    let mut sched = RandomWeakSched::new(exec.seed, exec.drain_prob);
    let mut builder = TraceBuilder::new(program.num_procs());
    let run =
        run_weak_hw(exec.hw, program, exec.model, exec.fidelity, &mut sched, &mut builder, config);
    let budget_hit = match run {
        Ok(_) => false,
        Err(SimError::StepLimit(_)) | Err(SimError::CycleLimit(_)) => true,
        Err(e) => return Err(e.into()),
    };
    let mut trace = builder.finish();
    trace.meta.program = Some(program.name().to_string());
    trace.meta.model = Some(exec.model.to_string());
    trace.meta.seed = Some(exec.seed);
    let report = PostMortem::new(&trace).pairing(pairing).analyze()?;
    let keys = event_race_keys(&report.races, &trace);
    Ok(Replay { exec: *exec, budget_hit, trace, report, keys })
}
