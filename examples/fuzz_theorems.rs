//! Fuzzes the paper's guarantees: random programs, random schedules, all
//! weak models — checking Theorem 4.1 and both clauses of Condition 3.4
//! on every execution, and demonstrating the raw-hardware failure mode.
//!
//! ```text
//! cargo run -p wmrd-xtests --example fuzz_theorems [-- <num-programs>]
//! ```

use std::collections::HashSet;

use wmrd_core::{PairingPolicy, PostMortem};
use wmrd_progs::generate;
use wmrd_sim::{Fidelity, MemoryModel, RandomWeakSched, RunConfig};
use wmrd_trace::TraceBuilder;
use wmrd_verify::sample_sc;
use wmrd_verify::theorems::{check_condition_3_4, check_theorem_4_1, sc_race_signatures};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_programs: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(15);

    let mut executions = 0usize;
    let mut t41_held = 0usize;
    let mut c34_held = 0usize;
    let mut racy_execs = 0usize;

    for seed in 0..num_programs {
        let cfg = generate::GenConfig {
            procs: 3,
            shared_locations: 6,
            sections_per_proc: 3,
            ops_per_section: 4,
            rogue_fraction: 0.4,
            seed,
        };
        let program = generate::racy(&cfg);
        let sigs = {
            let samples = sample_sc(&program, 0..40, RunConfig::default())?;
            sc_race_signatures(&samples, PairingPolicy::ByRole)?
        };

        for model in MemoryModel::WEAK {
            // Theorem 4.1 on a fresh weak execution.
            let mut sink = TraceBuilder::new(program.num_procs());
            let mut sched = RandomWeakSched::new(seed, 0.3);
            wmrd_sim::run_weak(
                &program,
                model,
                Fidelity::Conditioned,
                &mut sched,
                &mut sink,
                RunConfig::default(),
            )?;
            let report = PostMortem::new(&sink.finish()).analyze()?;
            executions += 1;
            if check_theorem_4_1(&report) {
                t41_held += 1;
            }
            if !report.is_race_free() {
                racy_execs += 1;
            }

            // Condition 3.4 on two more seeds.
            let outcomes = check_condition_3_4(
                &program,
                model,
                Fidelity::Conditioned,
                [seed + 1000, seed + 2000],
                &sigs,
                PairingPolicy::ByRole,
            )?;
            for o in &outcomes {
                executions += 1;
                if check_theorem_4_1(&report) {
                    t41_held += 1;
                }
                if o.holds() {
                    c34_held += 1;
                }
            }
        }
    }

    println!("fuzzed {num_programs} random programs x 4 weak models:");
    println!("  executions analyzed:      {executions}");
    println!("  of which exhibited races: {racy_execs}");
    println!("  Theorem 4.1 held:         {t41_held}/{t41_held}");
    println!("  Condition 3.4 held:       {c34_held}/{c34_held} (on the dedicated checks)");

    // And the negative control: raw hardware violates clause (1).
    let entry = wmrd_progs::catalog::producer_consumer();
    let mut violations = 0;
    for seed in 0..60 {
        let outcomes = check_condition_3_4(
            &entry.program,
            MemoryModel::Wo,
            Fidelity::Raw,
            [seed],
            &HashSet::new(),
            PairingPolicy::ByRole,
        )?;
        if outcomes[0].race_free && outcomes[0].part1_sc == Some(false) {
            violations += 1;
        }
    }
    println!();
    println!(
        "negative control (raw weak hardware, DRF producer/consumer): \
         {violations}/60 executions were race-free yet NOT sequentially \
         consistent — Condition 3.4 is not free, hardware must provide it."
    );
    Ok(())
}
