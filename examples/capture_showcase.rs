//! Capture showcase: instrument real `std::thread` workers with
//! `wmrd-capture`, run the classic release/acquire publication idiom —
//! once correct, once deliberately broken — and analyze both captured
//! executions with the stock post-mortem pipeline. No simulator, no
//! assembly: the traces come from an actual multithreaded execution of
//! this process.
//!
//! ```text
//! cargo run -p wmrd-xtests --example capture_showcase
//! ```

use std::sync::atomic::Ordering;

use wmrd_capture::CaptureSession;
use wmrd_core::{detect_races, event_race_keys, HbGraph, PairingPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The correct idiom: Release store / Acquire load. ---
    let mut session = CaptureSession::new("publish", 1);
    let cell = session.cell(0u32);
    let flag = session.atomic(false);
    session.run(|scope| {
        scope.spawn(|| {
            cell.set(42);
            flag.store(true, Ordering::Release); // publish
        });
        scope.spawn(|| {
            while !flag.load(Ordering::Acquire) {} // observe
            let _ = cell.get();
        });
    });
    let clean = session.finish();
    report("release/acquire publication", &clean);

    // --- The broken variant: Relaxed everywhere. ---
    let mut session = CaptureSession::new("publish-racy", 1);
    let cell = session.cell(0u32);
    let flag = session.atomic(false);
    session.run(|scope| {
        scope.spawn(|| {
            cell.set(42);
            flag.store(true, Ordering::Relaxed); // no release: orders nothing
        });
        scope.spawn(|| {
            while !flag.load(Ordering::Relaxed) {}
            let _ = cell.get();
        });
    });
    let racy = session.finish();
    report("relaxed (broken) publication", &racy);

    // The prepackaged registry drives the same workloads from the CLI:
    // `wmrd capture list`, `wmrd capture publish-racy --runs 5`.
    println!("registry: {} workloads", wmrd_capture::workloads::all().len());
    Ok(())
}

/// Builds the captured run's event trace and prints its hb1 data races.
fn report(label: &str, capture: &wmrd_capture::CaptureTrace) {
    let trace = capture.to_traceset();
    let hb = HbGraph::build(&trace, PairingPolicy::ByRole).expect("captured traces validate");
    let keys = event_race_keys(&detect_races(&trace, &hb), &trace);
    let stats = capture.stats();
    println!(
        "{label}: {} ops ({} sync) on {} threads -> {} race key(s)",
        stats.ops(),
        stats.sync_ops,
        stats.threads,
        keys.len()
    );
    for key in &keys {
        println!("  race at location {} between {:?} and {:?}", key.loc.addr(), key.a, key.b);
    }
}
