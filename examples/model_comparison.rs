//! Runs the same programs across SC, WO, RCsc, DRF0 and DRF1, comparing
//! simulated cost and detection results — Section 2.2's performance
//! motivation next to Section 4's detection guarantees.
//!
//! ```text
//! cargo run -p wmrd-xtests --example model_comparison
//! ```

use wmrd_core::PostMortem;
use wmrd_progs::{catalog, generate};
use wmrd_sim::{
    run_weak, Fidelity, MemoryModel, Program, RandomWeakSched, RunConfig, WeakRoundRobin,
};
use wmrd_trace::{NullSink, TraceBuilder};

fn cycles(program: &Program, model: MemoryModel) -> u64 {
    let mut sink = NullSink::new();
    run_weak(
        program,
        model,
        Fidelity::Conditioned,
        &mut WeakRoundRobin::new(),
        &mut sink,
        RunConfig::default(),
    )
    .expect("programs complete")
    .total_cycles()
}

fn race_verdict(program: &Program, model: MemoryModel, seed: u64) -> String {
    let mut sink = TraceBuilder::new(program.num_procs());
    let mut sched = RandomWeakSched::new(seed, 0.3);
    run_weak(program, model, Fidelity::Conditioned, &mut sched, &mut sink, RunConfig::default())
        .expect("programs complete");
    let report = PostMortem::new(&sink.finish()).analyze().expect("analyzable");
    if report.is_race_free() {
        "race-free (certified SC)".into()
    } else {
        format!(
            "{} race(s), {} reported",
            report.data_races().count(),
            report.reported_races().len()
        )
    }
}

fn main() {
    let workloads: Vec<(&str, Program, bool)> = vec![
        ("fig1b (DRF)", catalog::fig1b().program, false),
        ("work-queue-buggy", catalog::work_queue_buggy().program, true),
        ("counter-locked(4x6)", catalog::counter_locked(4, 6).program, false),
        (
            "overlap (DRF)",
            generate::overlap(&generate::GenConfig {
                procs: 4,
                sections_per_proc: 6,
                ops_per_section: 12,
                ..Default::default()
            }),
            false,
        ),
    ];

    println!("simulated cycles by memory model (lower is better):");
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "workload", "SC", "WO", "RCsc", "DRF0", "DRF1"
    );
    for (name, program, _) in &workloads {
        let row: Vec<u64> = MemoryModel::ALL.iter().map(|&m| cycles(program, m)).collect();
        println!(
            "{:<22} {:>9} {:>9} {:>9} {:>9} {:>9}",
            name, row[0], row[1], row[2], row[3], row[4]
        );
    }

    println!();
    println!("detection verdicts on weak executions (seed 1):");
    println!("{:<22} {:<6} verdict", "workload", "model");
    for (name, program, _racy) in &workloads {
        for model in [MemoryModel::Wo, MemoryModel::RCsc] {
            println!("{:<22} {:<6} {}", name, model.to_string(), race_verdict(program, model, 1));
        }
    }

    println!();
    println!("takeaway: data-race-free programs get weak-model speedups *and* a");
    println!("sequential-consistency certificate from the detector; racy programs");
    println!("get first-partition reports that are valid under SC reasoning —");
    println!("no slow SC debugging mode required (the paper's conclusion).");
}
