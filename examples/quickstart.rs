//! Quickstart: write a small multiprocessor program, run it, and detect
//! its data races post-mortem.
//!
//! ```text
//! cargo run -p wmrd-xtests --example quickstart
//! ```

use wmrd_core::PostMortem;
use wmrd_progs::ProcBuilder;
use wmrd_sim::{run_sc, Program, RandomSched, Reg, RunConfig};
use wmrd_trace::{Location, TraceBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A shared flag and a data word. The producer writes the data and
    // then sets the flag with an ordinary store — a bug: nothing orders
    // the consumer's reads with the producer's writes.
    let data = Location::new(0);
    let flag = Location::new(1);

    let mut program = Program::new("quickstart", 2);

    let mut producer = ProcBuilder::new();
    producer
        .st(42, data) // write the payload
        .st(1, flag) // ...and the flag, as a *data* store (bug!)
        .halt();
    program.push_proc(producer.assemble()?);

    let mut consumer = ProcBuilder::new();
    consumer
        .label("spin")
        .ld(Reg::new(0), flag) // poll the flag with a data load
        .bz(Reg::new(0), "spin")
        .ld(Reg::new(1), data) // then read the payload
        .halt();
    program.push_proc(consumer.assemble()?);

    // Run on the sequentially consistent reference machine, recording an
    // event-level trace through the instrumentation hook.
    let mut sink = TraceBuilder::new(program.num_procs());
    let outcome = run_sc(&program, &mut RandomSched::new(7), &mut sink, RunConfig::default())?;
    println!("run complete: {} steps, {} cycles", outcome.steps, outcome.total_cycles());

    // Post-mortem analysis: happens-before-1 graph, races, partitions.
    let trace = sink.finish();
    let report = PostMortem::new(&trace).analyze()?;
    println!("{report}");

    if report.is_race_free() {
        println!("no data races: the execution was sequentially consistent.");
    } else {
        println!(
            "reported {} race(s) from {} first partition(s) — fix: use st.rel/ld.acq \
             (or Unset/Test&Set) for the flag.",
            report.reported_races().len(),
            report.first_partitions().count()
        );
    }
    Ok(())
}
