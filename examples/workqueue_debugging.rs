//! The paper's running example, end to end: the Figure 2 work queue with
//! its missing `Test&Set`, executed on weakly ordered hardware, produces
//! the stale dequeue of Figure 2b; the analysis of Section 4 narrows the
//! bug hunt to the first partition (Figure 3).
//!
//! ```text
//! cargo run -p wmrd-xtests --example workqueue_debugging
//! ```

use wmrd_core::PostMortem;
use wmrd_progs::catalog;
use wmrd_sim::{run_weak, Fidelity, MemoryModel, RunConfig, WeakScript};
use wmrd_trace::{MultiSink, OpRecorder, ProcId, TraceBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = catalog::work_queue_buggy();
    let lay = catalog::work_queue_layout();
    println!("program: {} — {}", entry.name, entry.description);
    println!(
        "layout: lock={} QEmpty={} Q={} region at {}..{}",
        lay.lock,
        lay.q_empty,
        lay.q,
        lay.region_base,
        lay.region_base + lay.region_len
    );
    println!();

    // Execute on the WO machine with the schedule that reproduces the
    // paper's Figure 2b: P1's write of QEmpty drains before its write of
    // Q, so P2 sees "queue non-empty" but dequeues the stale address.
    let mut sink = MultiSink::new(
        TraceBuilder::new(entry.program.num_procs()),
        OpRecorder::new(entry.program.num_procs()),
    );
    let mut sched = WeakScript::new(catalog::work_queue_weak_script());
    run_weak(
        &entry.program,
        MemoryModel::Wo,
        Fidelity::Conditioned,
        &mut sched,
        &mut sink,
        RunConfig::default(),
    )?;
    let (builder, recorder) = sink.into_inner();
    let mut trace = builder.finish();
    trace.meta.program = Some(entry.name.into());
    trace.meta.model = Some("WO".into());
    let ops = recorder.finish();

    println!("what P2 observed (operation trace):");
    for op in ops.proc_ops(ProcId::new(1)).into_iter().flatten() {
        println!("  {op}");
    }
    println!();

    // Post-mortem analysis.
    let report = PostMortem::new(&trace).analyze()?;
    println!("{report}");

    println!("how to read this:");
    println!("* the FIRST partition points at the real bug: the unsynchronized");
    println!("  accesses to QEmpty and Q (the missing Test&Set);");
    println!("* the withheld partition is P2 colliding with P3's region — those");
    println!("  races cannot happen in any sequentially consistent execution");
    println!("  (P2 could never have dequeued {}), so reporting them would", lay.stale_addr);
    println!("  mislead the programmer (Section 3.1's second problem);");
    println!("* the SCP boundary marks how far sequential-consistency reasoning");
    println!("  remains valid for other debugging tools.");
    Ok(())
}
