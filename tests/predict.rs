//! Cross-crate contracts of the predictive race engine: golden SHB and
//! WCP reports over committed traces of the whole program catalog, the
//! SHB ≡ hb1 baseline identity, and the soundness gate — every
//! predicted race identity must be reached by a real 64-seed explore
//! campaign of the same program, and the weakening must add detection
//! power (predicted-only yield) on several entries without a single
//! false prediction on the race-free ones.
//!
//! Each catalog entry has a committed single-execution trace in
//! `tests/data/predict/<entry>.bin` (binary `WMRD` format, recorded
//! under WO at a fixed seed) and two golden report files,
//! `<entry>.shb.txt` / `<entry>.wcp.txt`, holding the exact
//! `PredictReport::render()` text. The analysis is pure and
//! deterministic, so the files are stable across platforms.
//! Regenerate the *reports* after an intentional engine change with:
//!
//! ```text
//! WMRD_REGOLD=1 cargo test -p wmrd-xtests --test predict
//! ```
//!
//! The traces themselves are fixtures, not regenerated: the three
//! `lock-courier` entries were recorded at seeds where the lock handoff
//! hides the race from hb1, which is exactly the situation the WCP
//! goldens pin.

use std::collections::BTreeSet;
use std::path::PathBuf;

use wmrd_cli::{run_cli, CliError};
use wmrd_core::{PairingPolicy, RaceKey};
use wmrd_explore::{run_campaign, CampaignSpec};
use wmrd_predict::{predict, PredictOrder};
use wmrd_progs::catalog;
use wmrd_trace::{Metrics, TraceSet};

fn data_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/data/predict"))
}

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_string).collect()
}

/// Loads the committed execution trace of a catalog entry.
fn committed_trace(name: &str) -> TraceSet {
    let path = data_dir().join(format!("{name}.bin"));
    let bytes = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing committed trace {} ({e})", path.display()));
    TraceSet::from_binary(&bytes).expect("committed traces decode")
}

/// Every catalog entry's rendered predictive report — under both
/// orders — matches its checked-in golden file: stats, kept/dropped
/// edge counts, the full key set with provenance marks, and the
/// verdict are all pinned byte-for-byte.
#[test]
fn catalog_reports_match_goldens() {
    let regold = std::env::var("WMRD_REGOLD").is_ok();
    let dir = data_dir();
    let mut mismatches = Vec::new();
    for entry in catalog::all() {
        let trace = committed_trace(entry.name);
        for order in [PredictOrder::Shb, PredictOrder::Wcp] {
            let report = predict(&trace, entry.name, PairingPolicy::ByRole, order).unwrap();
            let rendered = report.render();
            let path = dir.join(format!("{}.{order}.txt", entry.name));
            if regold {
                std::fs::write(&path, &rendered).unwrap();
                continue;
            }
            let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!("missing golden {}.{order} ({e}); run with WMRD_REGOLD=1", entry.name)
            });
            if rendered != expected {
                mismatches.push(format!(
                    "== {}.{order}\n-- expected:\n{expected}\n-- got:\n{rendered}",
                    entry.name
                ));
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "predict goldens diverged (WMRD_REGOLD=1 regenerates):\n{}",
        mismatches.join("\n")
    );
}

/// The SHB order is the hb1 baseline by construction: on every
/// committed trace it predicts exactly the observed identities and
/// nothing more.
#[test]
fn shb_predicts_exactly_the_observed_races() {
    for entry in catalog::all() {
        let trace = committed_trace(entry.name);
        let report = predict(&trace, entry.name, PairingPolicy::ByRole, PredictOrder::Shb).unwrap();
        assert_eq!(
            report.keys, report.observed,
            "{}: SHB must equal hb1 on the same trace",
            entry.name
        );
        assert_eq!(report.predicted_only().count(), 0, "{}", entry.name);
    }
}

/// The soundness gate, enforced against real executions: every identity
/// the WCP order predicts from one committed trace must be observed by
/// some seed of a real 64-seed explore campaign over the same program.
/// A prediction no schedule can reach is a false positive, and a single
/// one fails the build.
#[test]
fn predictions_are_campaign_reachable() {
    let metrics = Metrics::disabled();
    let mut violations = Vec::new();
    for entry in catalog::all() {
        let trace = committed_trace(entry.name);
        let report = predict(&trace, entry.name, PairingPolicy::ByRole, PredictOrder::Wcp).unwrap();
        if report.keys.is_empty() {
            continue;
        }
        let campaign =
            run_campaign(&entry.program, &CampaignSpec::new(0, 64), 2, &metrics).unwrap();
        let reached: BTreeSet<RaceKey> = campaign.keys().copied().collect();
        for key in &report.keys {
            if !reached.contains(key) {
                violations.push(format!(
                    "program {}: predicted {key:?} was not reached by any campaign seed",
                    entry.name
                ));
            }
        }
    }
    assert!(violations.is_empty(), "prediction soundness violations:\n{}", violations.join("\n"));
}

/// The weakening pays for itself and never lies: on the race-free
/// entries WCP predicts nothing (zero false predictions over the full
/// catalog), while at least three racy entries yield a race hb1 misses
/// on the same trace (`predicted-only` — the E15 domination claim).
#[test]
fn weakening_dominates_hb1_without_false_predictions() {
    let mut dominated = Vec::new();
    for entry in catalog::all() {
        let trace = committed_trace(entry.name);
        let report = predict(&trace, entry.name, PairingPolicy::ByRole, PredictOrder::Wcp).unwrap();
        if !entry.racy {
            assert!(
                report.is_race_free(),
                "{} is race-free but WCP predicted {:?}",
                entry.name,
                report.keys
            );
        }
        if report.predicted_only().count() > 0 {
            dominated.push(entry.name);
        }
    }
    assert!(
        dominated.len() >= 3,
        "predicted ∪ observed must strictly dominate single-seed hb1 on ≥ 3 entries, got {dominated:?}"
    );
}

/// The CLI surface over a committed trace file: `wmrd predict` decodes
/// the binary trace, exits with findings, and marks the yield that goes
/// beyond hb1 as `predicted-only`.
#[test]
fn cli_predicts_from_committed_trace_files() {
    let path = data_dir().join("lazy-publish-racy.bin");
    let err = run_cli(&argv(&format!("predict {} --order wcp", path.display()))).unwrap_err();
    let CliError::PredictFindings { output, findings } = err else {
        panic!("the committed lazy-publish-racy trace must predict a race")
    };
    assert_eq!(findings, 1, "{output}");
    assert!(output.contains("[predicted-only]"), "{output}");
    assert!(output.contains("verdict: RACES PREDICTED"), "{output}");

    let clean = run_cli(&argv(&format!(
        "predict {} --order wcp",
        data_dir().join("counter-locked.bin").display()
    )))
    .unwrap();
    assert!(clean.contains("verdict: predictively race-free"), "{clean}");
}
