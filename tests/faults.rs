//! End-to-end fault injection: campaigns under injected worker panics,
//! torn byte streams, and short reads.
//!
//! The contract under test is graceful degradation — an injected fault
//! costs exactly what it touches (one point, one record, one suffix)
//! and nothing else: reports stay deterministic and worker-count
//! independent, failures are itemized rather than fatal, and every
//! finding from a healthy point still reproduces via replay.

use wmrd_explore::{replay, run_campaign, CampaignSpec};
use wmrd_faults::{FaultPlan, FaultPoint, ShortReader};
use wmrd_sim::{Addr, HwImpl, Instr, MemoryModel, Program, Reg};
use wmrd_trace::{salvage_stream, Location, Metrics, TraceSet};

/// Two independent races, so deduplication and replay have substance.
fn two_race_program() -> Program {
    let mut prog = Program::new("two-races", 2);
    prog.push_proc(vec![
        Instr::St { src: 1.into(), addr: Addr::Abs(Location::new(0)) },
        Instr::St { src: 1.into(), addr: Addr::Abs(Location::new(1)) },
        Instr::Halt,
    ]);
    prog.push_proc(vec![
        Instr::Ld { dst: Reg::new(0), addr: Addr::Abs(Location::new(0)) },
        Instr::Ld { dst: Reg::new(1), addr: Addr::Abs(Location::new(1)) },
        Instr::Halt,
    ]);
    prog
}

#[test]
fn campaign_of_96_seeds_with_injected_panics_degrades_gracefully() {
    let prog = two_race_program();
    let plan = FaultPlan::scattered_panics(42, 96, 5);
    let spec = CampaignSpec::new(0, 96).with_faults(plan.clone());

    let r1 = run_campaign(&prog, &spec, 1, &Metrics::disabled()).unwrap();
    let r3 = run_campaign(&prog, &spec, 3, &Metrics::disabled()).unwrap();
    let r8 = run_campaign(&prog, &spec, 8, &Metrics::disabled()).unwrap();

    // The report — failures included — is independent of worker count,
    // structurally and in its exact rendering.
    assert_eq!(r1, r3);
    assert_eq!(r1, r8);
    assert_eq!(r1.render(), r8.render());

    // Every planned panic shows up as exactly one itemized failure, and
    // nothing else failed.
    assert_eq!(r1.failed_executions as usize, plan.panic_count());
    assert_eq!(r1.failures.len(), plan.panic_count());
    assert_eq!(r1.executions, 96 - plan.panic_count() as u64);
    for f in &r1.failures {
        assert!(plan.panics_at(f.index as usize), "failure at an unplanned point: {f:?}");
        assert_eq!(f.reason, format!("injected fault: worker panic at point {}", f.index));
    }

    // The healthy 91 executions still find the program's races, and
    // every finding's first-reaching seed reproduces its identity on a
    // fresh machine.
    assert!(!r1.is_race_free());
    for finding in &r1.races {
        let rep = replay(&prog, &finding.first, spec.config, spec.pairing).unwrap();
        assert!(
            rep.keys.contains(&finding.key),
            "seed {} must reproduce {:?} despite the faulted campaign",
            finding.first.seed,
            finding.key
        );
    }
}

#[test]
fn the_empty_plan_changes_nothing() {
    let prog = two_race_program();
    let plain = run_campaign(&prog, &CampaignSpec::new(0, 16), 2, &Metrics::disabled()).unwrap();
    let spec = CampaignSpec::new(0, 16).with_faults(FaultPlan::none());
    let with_empty_plan = run_campaign(&prog, &spec, 2, &Metrics::disabled()).unwrap();
    assert_eq!(plain, with_empty_plan);
    assert!(plain.failures.is_empty());
}

#[test]
fn faulted_points_cost_exactly_their_own_executions() {
    // Same campaign with and without faults: the faulted report's
    // counters are the plain report's minus the failed points' own
    // contributions — a panic never corrupts a neighbouring execution
    // (worker machine caches are rebuilt after containment).
    let prog = two_race_program();
    let spec = CampaignSpec::new(0, 48)
        .with_hws(vec![HwImpl::StoreBuffer, HwImpl::InvalQueue])
        .with_models(vec![MemoryModel::Wo]);
    let plain = run_campaign(&prog, &spec, 4, &Metrics::disabled()).unwrap();
    let faulted_spec = spec.clone().with_faults(FaultPlan::scattered_panics(7, 96, 4));
    let faulted = run_campaign(&prog, &faulted_spec, 4, &Metrics::disabled()).unwrap();
    assert_eq!(faulted.failed_executions, 4);
    assert_eq!(faulted.executions, plain.executions - 4);
    // Each surviving race identity was seen in the plain run too.
    for finding in &faulted.races {
        let plain_finding = plain.finding(&finding.key).expect("identity exists without faults");
        assert!(finding.hits <= plain_finding.hits);
    }
}

#[test]
fn fault_metrics_count_what_was_injected_and_contained() {
    let m = Metrics::enabled();
    let spec = CampaignSpec::new(0, 24).with_faults(FaultPlan::scattered_panics(3, 24, 2));
    let report = run_campaign(&two_race_program(), &spec, 2, &m).unwrap();
    report.record_into(&m);
    let r = m.report();
    assert_eq!(r.counter("faults.injected"), Some(2));
    assert_eq!(r.counter("faults.worker_panics"), Some(2));
    assert_eq!(r.counter("faults.contained"), Some(2));
    assert_eq!(r.counter("explore.failures"), Some(2));
    assert_eq!(r.counter("explore.executions"), Some(22));
}

#[test]
fn byte_faults_on_trace_files_are_caught_and_salvaged() {
    // Drive the detector end-to-end across a corrupted file: run,
    // encode, inject, salvage, analyze.
    let prog = two_race_program();
    let rep = replay(
        &prog,
        &CampaignSpec::new(0, 1).points()[0].exec,
        wmrd_sim::RunConfig::default(),
        wmrd_core::PairingPolicy::ByRole,
    )
    .unwrap();
    let bin = rep.trace.to_binary();

    // A truncation plan loses the tail; the salvage prefix analyzes.
    let plan = FaultPlan::new(0).with(FaultPoint::Truncate { at: bin.len() - 5 });
    let torn = plan.corrupt(&bin);
    assert!(TraceSet::from_binary(&torn).is_err(), "strict decode rejects the tear");
    let salvage = TraceSet::salvage_binary(&torn).unwrap();
    assert!(!salvage.complete);
    assert!(salvage.events_recovered() <= rep.trace.num_events());

    // A flip plan is detected by the checksums — decode never returns
    // a silently wrong trace.
    let plan = FaultPlan::new(0).with(FaultPoint::BitFlip { offset: 20, bit: 2 });
    let flipped = plan.corrupt(&bin);
    match TraceSet::from_binary(&flipped) {
        Ok(t) => assert_eq!(t, rep.trace, "an accepted decode must be exact"),
        Err(_) => {}
    }
}

#[test]
fn short_reads_surface_as_bounded_stream_salvage() {
    // A ShortReader models a torn mid-file read; the stream salvage
    // path recovers exactly the records that fit under the cutoff.
    use wmrd_trace::{StreamWriter, TraceSink, Value};
    let mut w = StreamWriter::new(Vec::new(), 2);
    for i in 0..10u32 {
        w.data_access(
            wmrd_trace::ProcId::new((i % 2) as u16),
            Location::new(i % 3),
            wmrd_trace::AccessKind::Write,
            Value::new(i64::from(i)),
            None,
        );
    }
    let bytes = w.finish().unwrap();

    let full = salvage_stream(ShortReader::new(&bytes[..], 7)).unwrap();
    assert!(full.complete, "chunked-but-complete reads lose nothing");
    assert_eq!(full.records, 10);

    let cutoff = bytes.len() - 4;
    let torn = salvage_stream(ShortReader::new(&bytes[..], 7).with_cutoff(cutoff)).unwrap();
    assert!(!torn.complete);
    assert_eq!(torn.records, 9, "only the final record is lost to the short read");
    assert!(torn.bytes_used <= cutoff);
}
