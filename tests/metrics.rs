//! End-to-end observability guarantees (see OBSERVABILITY.md):
//!
//! * the deterministic view of a run's metrics (context + counters +
//!   gauges) is **byte-identical** across repeated runs of the same
//!   program, model and seed;
//! * the parallel detector reports the same candidate-pair and race
//!   counts as the sequential one for every thread count;
//! * disabled handles record nothing anywhere in the stack.

use wmrd_core::{
    analyze_batch_metered, detect_races_parallel_metered, detect_races_with_stats, AnalysisOptions,
    HbGraph, PairingPolicy, PostMortem,
};
use wmrd_progs::catalog;
use wmrd_sim::{run_weak, Fidelity, MemoryModel, RandomWeakSched, RunConfig, SimStats};
use wmrd_trace::{Metrics, RunMetrics, TraceBuilder, TraceSet};

/// One fully-metered run: simulate `program` on `model` with `seed`,
/// record the sim counters and the metered analysis, return the report.
fn metered_run(name: &str, model: MemoryModel, seed: u64) -> RunMetrics {
    let entry = catalog::all().into_iter().find(|e| e.name == name).expect("catalog entry");
    let metrics = Metrics::enabled();
    metrics.context("program", name);
    metrics.context("model", model);
    metrics.context("seed", seed);
    let mut sink = TraceBuilder::new(entry.program.num_procs());
    let mut sched = RandomWeakSched::new(seed, 0.3);
    let outcome = run_weak(
        &entry.program,
        model,
        Fidelity::Conditioned,
        &mut sched,
        &mut sink,
        RunConfig::default(),
    )
    .expect("runs");
    outcome.stats.record_into(&metrics);
    metrics.set_gauge("sim.steps", outcome.steps);
    metrics.set_gauge("sim.cycles", outcome.total_cycles());
    let trace = sink.finish();
    PostMortem::new(&trace).metrics(&metrics).analyze().expect("analyzes");
    metrics.report()
}

fn weak_trace(name: &str, model: MemoryModel, seed: u64) -> TraceSet {
    let entry = catalog::all().into_iter().find(|e| e.name == name).expect("catalog entry");
    let mut sink = TraceBuilder::new(entry.program.num_procs());
    let mut sched = RandomWeakSched::new(seed, 0.3);
    run_weak(
        &entry.program,
        model,
        Fidelity::Conditioned,
        &mut sched,
        &mut sink,
        RunConfig::default(),
    )
    .expect("runs");
    sink.finish()
}

/// Same program + model + seed ⇒ byte-identical deterministic view
/// (counters, gauges, context — everything except wall-clock phases).
#[test]
fn deterministic_view_is_byte_identical_across_reruns() {
    for (name, model) in [
        ("work-queue-buggy", MemoryModel::Wo),
        ("fig1a", MemoryModel::RCsc),
        ("producer-consumer", MemoryModel::Wo),
    ] {
        for seed in [0u64, 7, 42] {
            let a = metered_run(name, model, seed);
            let b = metered_run(name, model, seed);
            // Wall-clock phases differ between runs...
            assert!(!a.phases_ns.is_empty());
            // ...but the deterministic views serialize identically.
            let ja = a.deterministic_view().to_json().unwrap();
            let jb = b.deterministic_view().to_json().unwrap();
            assert_eq!(ja, jb, "{name} on {model} seed {seed}");
        }
    }
}

/// Different seeds produce (at least sometimes) different counters —
/// the determinism above is not vacuous.
#[test]
fn counters_actually_depend_on_the_schedule() {
    let views: Vec<String> = (0..8)
        .map(|seed| {
            metered_run("work-queue-buggy", MemoryModel::Wo, seed)
                .deterministic_view()
                .to_json()
                .unwrap()
        })
        .collect();
    assert!(
        views.iter().any(|v| v != &views[0]),
        "8 seeds produced identical metrics; counters look schedule-independent"
    );
}

/// The parallel detector's globally-deduped candidate/race gauges equal
/// the sequential detector's [`DetectStats`] for every thread count.
#[test]
fn parallel_counts_match_sequential_for_all_thread_counts() {
    let trace = weak_trace("work-queue-buggy", MemoryModel::Wo, 3);
    let hb = HbGraph::build(&trace, PairingPolicy::ByRole).unwrap();
    let (sequential, stats) = detect_races_with_stats(&trace, &hb);
    assert!(stats.candidate_pairs >= stats.races);
    for threads in [1usize, 2, 3, 8] {
        let metrics = Metrics::enabled();
        let parallel = detect_races_parallel_metered(&trace, &hb, threads, &metrics);
        assert_eq!(parallel, sequential, "threads={threads}");
        let snap = metrics.report();
        assert_eq!(
            snap.gauge("parallel.candidate_pairs"),
            Some(stats.candidate_pairs),
            "threads={threads}"
        );
        assert_eq!(snap.gauge("parallel.races"), Some(stats.races), "threads={threads}");
    }
}

/// Sim counters are consistent across the two weak machine styles'
/// shared vocabulary: every recorded key is namespaced `layer.metric`.
#[test]
fn all_keys_are_namespaced_and_schema_versioned() {
    let report = metered_run("fig1a", MemoryModel::Wo, 1);
    assert_eq!(report.schema_version, RunMetrics::SCHEMA_VERSION);
    for key in report.counters.keys().chain(report.gauges.keys()).chain(report.phases_ns.keys()) {
        assert!(key.contains('.'), "key `{key}` is not namespaced as layer.metric");
    }
    let parsed = RunMetrics::from_json(&report.to_json().unwrap()).unwrap();
    assert_eq!(parsed, report, "JSON round-trip preserves the report exactly");
}

/// A disabled handle threaded through every instrumented layer records
/// nothing and changes no results.
#[test]
fn disabled_handles_are_inert_across_the_stack() {
    let off = Metrics::disabled();
    let trace = weak_trace("fig1a", MemoryModel::Wo, 5);
    SimStats::default().record_into(&off);
    let metered = PostMortem::new(&trace).metrics(&off).analyze().unwrap();
    let plain = PostMortem::new(&trace).analyze().unwrap();
    assert_eq!(metered, plain);
    let hb = HbGraph::build(&trace, PairingPolicy::ByRole).unwrap();
    detect_races_parallel_metered(&trace, &hb, 4, &off);
    analyze_batch_metered(&[trace], AnalysisOptions::default(), 2, &off);
    assert!(off.report().is_empty());
}

/// Batch analysis is metered deterministically: same inputs, same
/// deterministic view.
#[test]
fn batch_metrics_are_deterministic() {
    let traces: Vec<TraceSet> =
        (0..4).map(|s| weak_trace("work-queue-buggy", MemoryModel::Wo, s)).collect();
    let run = || {
        let m = Metrics::enabled();
        analyze_batch_metered(&traces, AnalysisOptions::default(), 3, &m);
        m.report().deterministic_view().to_json().unwrap()
    };
    assert_eq!(run(), run());
}
