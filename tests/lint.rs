//! Cross-crate contracts of the static may-race analyzer: golden
//! reports over the whole program catalog, the soundness oracle
//! (`dynamic ⊆ static`) against real 64-seed explore campaigns, the
//! critical-cycle classifier and fence synthesizer (goldens plus
//! dynamic verification of every repaired entry), and the CLI surface
//! (`wmrd lint`, assembly files, `explore --prune-static`,
//! `explore --verify-repair`).
//!
//! Golden files live in `tests/data/lint/`: `<entry>.txt` holds the
//! exact `LintReport::render()` text, `<entry>.cycles` the
//! `CycleReport::render()` classification, and `<entry>.repaired.wmrd`
//! the repaired program as assembly. The analyses are pure and
//! deterministic, so the files are stable across platforms.
//! Regenerate after an intentional analyzer change with:
//!
//! ```text
//! WMRD_REGOLD=1 cargo test -p wmrd-xtests --test lint
//! ```

use std::collections::{BTreeSet, HashSet};
use std::path::PathBuf;

use wmrd_cli::{run_cli, CliError};
use wmrd_core::{PairingPolicy, RaceKey};
use wmrd_explore::{run_campaign, CampaignSpec};
use wmrd_lint::RaceClass;
use wmrd_progs::catalog;
use wmrd_sim::{parse_asm, write_asm, Fidelity, HwImpl, MemoryModel, RunConfig};
use wmrd_trace::Metrics;
use wmrd_verify::sample_sc;
use wmrd_verify::theorems::{check_condition_3_4_hw, sc_race_signatures};

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/data/lint"))
}

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_string).collect()
}

fn example(name: &str) -> String {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples"))
        .join(name)
        .to_string_lossy()
        .into_owned()
}

/// Every catalog entry's rendered lint report matches its checked-in
/// golden file — the full may-race set (pairs, keys, qualified locks,
/// verdict), not just a summary bit, is pinned.
#[test]
fn catalog_reports_match_goldens() {
    let regold = std::env::var("WMRD_REGOLD").is_ok();
    let dir = golden_dir();
    if regold {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut mismatches = Vec::new();
    for entry in catalog::all() {
        let rendered = wmrd_lint::analyze(&entry.program).render();
        let path = dir.join(format!("{}.txt", entry.name));
        if regold {
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing golden {} ({e}); run with WMRD_REGOLD=1", entry.name)
        });
        if rendered != expected {
            mismatches
                .push(format!("== {}\n-- expected:\n{expected}\n-- got:\n{rendered}", entry.name));
        }
    }
    assert!(
        mismatches.is_empty(),
        "lint goldens diverged (WMRD_REGOLD=1 regenerates):\n{}",
        mismatches.join("\n")
    );
}

/// Every catalog entry's critical-cycle classification matches its
/// checked-in `.cycles` golden — the per-key `sc-also`/`weak-only`
/// verdicts, witnesses, cycle counts, and the delay set are all pinned.
#[test]
fn catalog_cycle_classifications_match_goldens() {
    let regold = std::env::var("WMRD_REGOLD").is_ok();
    let dir = golden_dir();
    if regold {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut mismatches = Vec::new();
    for entry in catalog::all() {
        let report = wmrd_lint::analyze(&entry.program);
        let rendered = wmrd_lint::analyze_cycles(&entry.program, &report).render();
        let path = dir.join(format!("{}.cycles", entry.name));
        if regold {
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing cycle golden {} ({e}); run with WMRD_REGOLD=1", entry.name)
        });
        if rendered != expected {
            mismatches
                .push(format!("== {}\n-- expected:\n{expected}\n-- got:\n{rendered}", entry.name));
        }
    }
    assert!(
        mismatches.is_empty(),
        "cycle goldens diverged (WMRD_REGOLD=1 regenerates):\n{}",
        mismatches.join("\n")
    );
}

/// Every catalog entry's repaired program matches its checked-in
/// `.repaired.wmrd` golden, round-trips through the assembly layer,
/// and respects the no-op contract: race-free entries gain *zero*
/// fences and zero strengthened locations, racy entries gain at least
/// one of the two.
#[test]
fn catalog_repairs_match_goldens_and_the_noop_contract() {
    let regold = std::env::var("WMRD_REGOLD").is_ok();
    let dir = golden_dir();
    if regold {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut mismatches = Vec::new();
    for entry in catalog::all() {
        let report = wmrd_lint::analyze(&entry.program);
        let rep = wmrd_lint::repair(&entry.program, &report);
        if entry.racy {
            assert!(
                !rep.plan.is_noop(),
                "{} is racy but its repair changes nothing:\n{}",
                entry.name,
                rep.plan.render()
            );
        } else {
            assert!(
                rep.plan.is_noop(),
                "{} is race-free but was 'repaired':\n{}",
                entry.name,
                rep.plan.render()
            );
            assert!(rep.plan.fences.is_empty(), "{}: phantom fences", entry.name);
            assert_eq!(rep.repaired, entry.program, "{}: no-op must be identity", entry.name);
        }
        let asm = write_asm(&rep.repaired);
        let reparsed = parse_asm(&asm).unwrap_or_else(|e| {
            panic!("{}: repaired program does not re-parse ({e}):\n{asm}", entry.name)
        });
        assert_eq!(reparsed, rep.repaired, "{}: asm round-trip", entry.name);
        let path = dir.join(format!("{}.repaired.wmrd", entry.name));
        if regold {
            std::fs::write(&path, &asm).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing repair golden {} ({e}); run with WMRD_REGOLD=1", entry.name)
        });
        if asm != expected {
            mismatches.push(format!("== {}\n-- expected:\n{expected}\n-- got:\n{asm}", entry.name));
        }
    }
    assert!(
        mismatches.is_empty(),
        "repair goldens diverged (WMRD_REGOLD=1 regenerates):\n{}",
        mismatches.join("\n")
    );
}

/// The synthesized repairs *work*: every racy catalog entry, repaired,
/// runs race-free across all three hardware backends on a 64-seed
/// campaign sweep AND satisfies Condition 3.4 (byte-level SC for its
/// race-free executions) on each backend. This is the dynamic proof
/// obligation behind `wmrd explore --verify-repair`.
#[test]
fn repaired_racy_entries_run_race_free_and_sc_on_every_backend() {
    let metrics = Metrics::disabled();
    for entry in catalog::all().into_iter().filter(|e| e.racy) {
        let report = wmrd_lint::analyze(&entry.program);
        let rep = wmrd_lint::repair(&entry.program, &report);
        let spec = CampaignSpec::new(0, 64).with_hws(HwImpl::ALL.to_vec());
        let campaign = run_campaign(&rep.repaired, &spec, 2, &metrics).unwrap();
        let dynamic: Vec<RaceKey> = campaign.keys().copied().collect();
        assert!(
            dynamic.is_empty(),
            "{}: repaired program still races: {dynamic:?}\n{}",
            entry.name,
            rep.plan.render()
        );
        let samples = sample_sc(&rep.repaired, 0..60, RunConfig::default()).unwrap();
        let sigs: HashSet<_> = sc_race_signatures(&samples, PairingPolicy::ByRole).unwrap();
        for hw in HwImpl::ALL {
            let outcomes = check_condition_3_4_hw(
                hw,
                &rep.repaired,
                MemoryModel::Wo,
                Fidelity::Conditioned,
                0..64,
                &sigs,
                PairingPolicy::ByRole,
            )
            .unwrap();
            let bad: Vec<_> = outcomes.iter().filter(|o| !o.holds()).collect();
            assert!(
                bad.is_empty(),
                "{}: repaired program violates Condition 3.4 on {hw}: {bad:?}",
                entry.name
            );
        }
    }
}

/// The ablation behind the classification: at least one catalog entry
/// whose races are classified `weak-only` actually reaches those races
/// under raw out-of-order hardware — the one configuration where the
/// SC-impossible interleavings materialize. (Raw executions can
/// livelock a spin loop, so each run is step-capped like
/// `explore --budget` would.)
#[test]
fn unrepaired_weak_only_races_reach_raw_ooo_hardware() {
    let metrics = Metrics::disabled();
    let mut weak_hits = 0usize;
    for name in ["peterson-sync", "work-queue-fixed", "double-checked-init"] {
        let entry = catalog::all().into_iter().find(|e| e.name == name).unwrap();
        let report = wmrd_lint::analyze(&entry.program);
        let cycles = wmrd_lint::analyze_cycles(&entry.program, &report);
        let mut spec = CampaignSpec::new(0, 64)
            .with_hws(vec![HwImpl::Ooo])
            .with_config(RunConfig::default().with_max_steps(4_000));
        spec.fidelity = Fidelity::Raw;
        let campaign = run_campaign(&entry.program, &spec, 2, &metrics).unwrap();
        weak_hits +=
            campaign.keys().filter(|k| cycles.class_of(k) == Some(RaceClass::WeakOnly)).count();
    }
    assert!(
        weak_hits > 0,
        "no weak-only-classified race materialized under raw ooo — the classification \
         distinguishes nothing"
    );
}

/// The ground-truth direction of the over-approximation: every catalog
/// entry marked racy must have a non-empty static may-race set.
#[test]
fn racy_entries_are_never_statically_race_free() {
    for entry in catalog::all() {
        let report = wmrd_lint::analyze(&entry.program);
        if entry.racy {
            assert!(
                !report.is_race_free(),
                "{} is racy but lint found nothing:\n{}",
                entry.name,
                report.render()
            );
        }
    }
}

/// The soundness oracle, enforced against real executions: a 64-seed
/// explore campaign per catalog entry, and every dynamic race identity
/// it finds must be inside the entry's static may-race set. A violation
/// prints the program and the escaped key.
#[test]
fn dynamic_races_are_covered_by_the_static_set() {
    let metrics = Metrics::disabled();
    let mut violations = Vec::new();
    for entry in catalog::all() {
        let lint = wmrd_lint::analyze(&entry.program);
        let spec = CampaignSpec::new(0, 64);
        let campaign = run_campaign(&entry.program, &spec, 2, &metrics).unwrap();
        let dynamic: BTreeSet<RaceKey> = campaign.keys().copied().collect();
        for key in &dynamic {
            if !lint.covers(key) {
                violations.push(format!(
                    "program {}: dynamic {key:?} escaped the static set\n{}",
                    entry.name,
                    lint.render()
                ));
            }
        }
        if !dynamic.is_empty() {
            assert!(
                !lint.is_race_free(),
                "{}: dynamic races exist but lint said race-free",
                entry.name
            );
        }
    }
    assert!(violations.is_empty(), "soundness violations:\n{}", violations.join("\n"));
}

/// The shipped `.wmrd` examples behave as their comments promise:
/// `spinlock.wmrd` lints race-free, `fig1b.wmrd` exits with findings
/// (the documented sound false positive on the bare-release handoff).
#[test]
fn example_asm_files_lint_as_documented() {
    let clean = run_cli(&argv(&format!("lint {}", example("spinlock.wmrd")))).unwrap();
    assert!(clean.contains("verdict: statically race-free"), "{clean}");
    assert!(clean.contains("qualified locks: m[0]"), "{clean}");

    let err = run_cli(&argv(&format!("lint {}", example("fig1b.wmrd")))).unwrap_err();
    let CliError::LintFindings { output, findings } = err else {
        panic!("fig1b.wmrd must produce findings")
    };
    assert!(findings >= 2, "both published locations pair: {output}");
    assert!(output.contains("verdict: MAY RACE"), "{output}");
}

/// Figure 1b is the paper's motivating example of a race the weak
/// hardware can never exhibit: the delay-set analysis must classify
/// both of its may-race keys `weak-only` (the release/spin-acquire
/// sync chain through `m[2]` breaks every critical cycle), and the
/// repair must not touch the program — no phantom fences on correct
/// code.
#[test]
fn fig1b_example_classifies_weak_only_and_gains_no_fences() {
    let err = run_cli(&argv(&format!("lint {} --cycles", example("fig1b.wmrd")))).unwrap_err();
    let CliError::LintFindings { output, .. } = err else {
        panic!("fig1b.wmrd still has may-race findings under --cycles")
    };
    assert!(output.contains("0 sc-also, 2 weak-only"), "{output}");
    assert!(output.contains("weak-only (sync chain via m[2])"), "{output}");
    assert!(output.contains("no-op (nothing to fix)"), "{output}");
    assert!(!output.contains("fence P"), "phantom fence:\n{output}");

    // Same verdict through the library, pinned structurally.
    let text = std::fs::read_to_string(example("fig1b.wmrd")).unwrap();
    let program = parse_asm(&text).unwrap();
    let report = wmrd_lint::analyze(&program);
    let cycles = wmrd_lint::analyze_cycles(&program, &report);
    assert!(!cycles.classes.is_empty());
    for class in &cycles.classes {
        assert_eq!(class.class, RaceClass::WeakOnly, "{:?}", class.key);
    }
    let rep = wmrd_lint::repair(&program, &report);
    assert!(rep.plan.is_noop(), "{}", rep.plan.render());
    assert_eq!(rep.repaired, program);
}

/// `explore --verify-repair` end to end: fig1a's synthesized repair
/// verifies (race-free + Condition 3.4 on every backend) and the
/// command reports the raw-hardware ablation on the unrepaired
/// program; peterson-sync's ablation connects the dynamic raw races to
/// their `weak-only` static classification.
#[test]
fn verify_repair_end_to_end() {
    let out = run_cli(&argv("explore fig1a --verify-repair --seeds 0..8 --jobs 2")).unwrap();
    assert!(out.contains("repair verification for fig1a"), "{out}");
    assert!(out.contains("2 sc-also, 0 weak-only"), "{out}");
    assert!(out.contains("0 race identities"), "{out}");
    assert!(out.contains("condition 3.4 on ooo: 8/8 seed(s) clean"), "{out}");
    assert!(out.contains("ablation (unrepaired, ooo raw):"), "{out}");
    assert!(out.contains("repair verified"), "{out}");

    let out =
        run_cli(&argv("explore peterson-sync --verify-repair --seeds 0..24 --jobs 2")).unwrap();
    assert!(out.contains("no-op (nothing to fix)"), "{out}");
    assert!(out.contains("repair verified"), "{out}");
    assert!(out.contains("classified weak-only"), "raw ablation must hit:\n{out}");
}

/// Assembly parse errors surface through the CLI with the file name,
/// line and column — the diagnostics a hand-written file needs.
#[test]
fn asm_errors_are_located() {
    let dir = std::env::temp_dir().join(format!("wmrd-lint-xtest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.wmrd");
    std::fs::write(&path, "program broken\nproc\n    ld r99, m[0]\n    halt\n").unwrap();
    let err = run_cli(&argv(&format!("lint {}", path.display()))).unwrap_err();
    let text = err.to_string();
    assert!(matches!(err, CliError::Asm { .. }), "{text}");
    assert!(text.contains("broken.wmrd"), "{text}");
    assert!(text.contains("line 3"), "{text}");
    std::fs::remove_file(&path).ok();
}

/// `explore --prune-static` end to end: a statically race-free program
/// is pruned without simulating, a racy one still runs its campaign and
/// the cross-check confirms `dynamic ⊆ static`.
#[test]
fn prune_static_end_to_end() {
    let pruned = run_cli(&argv(&format!(
        "explore {} --seeds 0..32 --prune-static",
        example("spinlock.wmrd")
    )))
    .unwrap();
    assert!(pruned.contains("campaign: spinlock (32 points)"), "{pruned}");
    assert!(pruned.contains("pruned statically"), "{pruned}");
    assert!(!pruned.contains("executions:"), "nothing must run:\n{pruned}");

    let checked = run_cli(&argv("explore fig1a --seeds 0..32 --jobs 2 --prune-static")).unwrap();
    assert!(checked.contains("deduplicated race"), "fig1a still explores:\n{checked}");
    assert!(checked.contains("static cross-check"), "{checked}");
    assert!(!checked.contains("escaped the static"), "cross-check violation:\n{checked}");
}

/// The static set is *useful*, not just sound: on entries where the
/// 64-seed campaign finds races, lint's key count stays within a small
/// factor of the dynamic count (no "everything races" blowup), and the
/// fully-locked counter is proven race-free outright.
#[test]
fn static_sets_are_tight_enough_to_prune() {
    let counter_locked = catalog::all()
        .into_iter()
        .find(|e| e.name == "counter-locked")
        .expect("counter-locked is in the catalog");
    let report = wmrd_lint::analyze(&counter_locked.program);
    assert!(report.is_race_free(), "the locked counter prunes:\n{}", report.render());

    let metrics = Metrics::disabled();
    for name in ["fig1a", "peterson-racy", "counter-racy"] {
        let entry = catalog::all().into_iter().find(|e| e.name == name).unwrap();
        let lint = wmrd_lint::analyze(&entry.program);
        let campaign =
            run_campaign(&entry.program, &CampaignSpec::new(0, 64), 2, &metrics).unwrap();
        let dynamic = campaign.keys().count();
        assert!(dynamic > 0, "{name} should race dynamically");
        assert!(
            lint.keys.len() <= dynamic.max(1) * 4,
            "{name}: static set ballooned to {} keys for {} dynamic",
            lint.keys.len(),
            dynamic
        );
    }
}
