//! Cross-crate contracts of the static may-race analyzer: golden
//! reports over the whole program catalog, the soundness oracle
//! (`dynamic ⊆ static`) against real 64-seed explore campaigns, and the
//! CLI surface (`wmrd lint`, assembly files, `explore --prune-static`).
//!
//! Golden files live in `tests/data/lint/<entry>.txt`, one per catalog
//! entry, holding the exact `LintReport::render()` text. The analysis
//! is pure and deterministic, so the files are stable across platforms.
//! Regenerate after an intentional analyzer change with:
//!
//! ```text
//! WMRD_REGOLD=1 cargo test -p wmrd-xtests --test lint
//! ```

use std::collections::BTreeSet;
use std::path::PathBuf;

use wmrd_cli::{run_cli, CliError};
use wmrd_core::RaceKey;
use wmrd_explore::{run_campaign, CampaignSpec};
use wmrd_progs::catalog;
use wmrd_trace::Metrics;

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/data/lint"))
}

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_string).collect()
}

fn example(name: &str) -> String {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples"))
        .join(name)
        .to_string_lossy()
        .into_owned()
}

/// Every catalog entry's rendered lint report matches its checked-in
/// golden file — the full may-race set (pairs, keys, qualified locks,
/// verdict), not just a summary bit, is pinned.
#[test]
fn catalog_reports_match_goldens() {
    let regold = std::env::var("WMRD_REGOLD").is_ok();
    let dir = golden_dir();
    if regold {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut mismatches = Vec::new();
    for entry in catalog::all() {
        let rendered = wmrd_lint::analyze(&entry.program).render();
        let path = dir.join(format!("{}.txt", entry.name));
        if regold {
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing golden {} ({e}); run with WMRD_REGOLD=1", entry.name)
        });
        if rendered != expected {
            mismatches
                .push(format!("== {}\n-- expected:\n{expected}\n-- got:\n{rendered}", entry.name));
        }
    }
    assert!(
        mismatches.is_empty(),
        "lint goldens diverged (WMRD_REGOLD=1 regenerates):\n{}",
        mismatches.join("\n")
    );
}

/// The ground-truth direction of the over-approximation: every catalog
/// entry marked racy must have a non-empty static may-race set.
#[test]
fn racy_entries_are_never_statically_race_free() {
    for entry in catalog::all() {
        let report = wmrd_lint::analyze(&entry.program);
        if entry.racy {
            assert!(
                !report.is_race_free(),
                "{} is racy but lint found nothing:\n{}",
                entry.name,
                report.render()
            );
        }
    }
}

/// The soundness oracle, enforced against real executions: a 64-seed
/// explore campaign per catalog entry, and every dynamic race identity
/// it finds must be inside the entry's static may-race set. A violation
/// prints the program and the escaped key.
#[test]
fn dynamic_races_are_covered_by_the_static_set() {
    let metrics = Metrics::disabled();
    let mut violations = Vec::new();
    for entry in catalog::all() {
        let lint = wmrd_lint::analyze(&entry.program);
        let spec = CampaignSpec::new(0, 64);
        let campaign = run_campaign(&entry.program, &spec, 2, &metrics).unwrap();
        let dynamic: BTreeSet<RaceKey> = campaign.keys().copied().collect();
        for key in &dynamic {
            if !lint.covers(key) {
                violations.push(format!(
                    "program {}: dynamic {key:?} escaped the static set\n{}",
                    entry.name,
                    lint.render()
                ));
            }
        }
        if !dynamic.is_empty() {
            assert!(
                !lint.is_race_free(),
                "{}: dynamic races exist but lint said race-free",
                entry.name
            );
        }
    }
    assert!(violations.is_empty(), "soundness violations:\n{}", violations.join("\n"));
}

/// The shipped `.wmrd` examples behave as their comments promise:
/// `spinlock.wmrd` lints race-free, `fig1b.wmrd` exits with findings
/// (the documented sound false positive on the bare-release handoff).
#[test]
fn example_asm_files_lint_as_documented() {
    let clean = run_cli(&argv(&format!("lint {}", example("spinlock.wmrd")))).unwrap();
    assert!(clean.contains("verdict: statically race-free"), "{clean}");
    assert!(clean.contains("qualified locks: m[0]"), "{clean}");

    let err = run_cli(&argv(&format!("lint {}", example("fig1b.wmrd")))).unwrap_err();
    let CliError::LintFindings { output, findings } = err else {
        panic!("fig1b.wmrd must produce findings")
    };
    assert!(findings >= 2, "both published locations pair: {output}");
    assert!(output.contains("verdict: MAY RACE"), "{output}");
}

/// Assembly parse errors surface through the CLI with the file name,
/// line and column — the diagnostics a hand-written file needs.
#[test]
fn asm_errors_are_located() {
    let dir = std::env::temp_dir().join(format!("wmrd-lint-xtest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.wmrd");
    std::fs::write(&path, "program broken\nproc\n    ld r99, m[0]\n    halt\n").unwrap();
    let err = run_cli(&argv(&format!("lint {}", path.display()))).unwrap_err();
    let text = err.to_string();
    assert!(matches!(err, CliError::Asm { .. }), "{text}");
    assert!(text.contains("broken.wmrd"), "{text}");
    assert!(text.contains("line 3"), "{text}");
    std::fs::remove_file(&path).ok();
}

/// `explore --prune-static` end to end: a statically race-free program
/// is pruned without simulating, a racy one still runs its campaign and
/// the cross-check confirms `dynamic ⊆ static`.
#[test]
fn prune_static_end_to_end() {
    let pruned = run_cli(&argv(&format!(
        "explore {} --seeds 0..32 --prune-static",
        example("spinlock.wmrd")
    )))
    .unwrap();
    assert!(pruned.contains("campaign: spinlock (32 points)"), "{pruned}");
    assert!(pruned.contains("pruned statically"), "{pruned}");
    assert!(!pruned.contains("executions:"), "nothing must run:\n{pruned}");

    let checked = run_cli(&argv("explore fig1a --seeds 0..32 --jobs 2 --prune-static")).unwrap();
    assert!(checked.contains("deduplicated race"), "fig1a still explores:\n{checked}");
    assert!(checked.contains("static cross-check"), "{checked}");
    assert!(!checked.contains("escaped the static"), "cross-check violation:\n{checked}");
}

/// The static set is *useful*, not just sound: on entries where the
/// 64-seed campaign finds races, lint's key count stays within a small
/// factor of the dynamic count (no "everything races" blowup), and the
/// fully-locked counter is proven race-free outright.
#[test]
fn static_sets_are_tight_enough_to_prune() {
    let counter_locked = catalog::all()
        .into_iter()
        .find(|e| e.name == "counter-locked")
        .expect("counter-locked is in the catalog");
    let report = wmrd_lint::analyze(&counter_locked.program);
    assert!(report.is_race_free(), "the locked counter prunes:\n{}", report.render());

    let metrics = Metrics::disabled();
    for name in ["fig1a", "peterson-racy", "counter-racy"] {
        let entry = catalog::all().into_iter().find(|e| e.name == name).unwrap();
        let lint = wmrd_lint::analyze(&entry.program);
        let campaign =
            run_campaign(&entry.program, &CampaignSpec::new(0, 64), 2, &metrics).unwrap();
        let dynamic = campaign.keys().count();
        assert!(dynamic > 0, "{name} should race dynamically");
        assert!(
            lint.keys.len() <= dynamic.max(1) * 4,
            "{name}: static set ballooned to {} keys for {} dynamic",
            lint.keys.len(),
            dynamic
        );
    }
}
