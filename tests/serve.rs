//! End-to-end daemon contracts: concurrent ingestion over a unix
//! socket is deterministic (byte-identical query output regardless of
//! client arrival order and worker count), backpressure is a typed
//! `BUSY` at the explicit queue cap, corrupt submissions are rejected
//! with a typed error without taking the daemon down, and a journal
//! with a torn tail — the kill-9 signature — reopens to exactly the
//! committed record prefix. Streaming sessions (`STREAM`/`FEED`/
//! `CLOSE`) interleave with submissions, dedup into the same catalog
//! aggregates, respect the session-slot bound, and release their slot
//! when a client vanishes mid-stream.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use wmrd_catalog::Catalog;
use wmrd_progs::catalog;
use wmrd_serve::{Client, Endpoint, Reply, ServeConfig, ServeSummary, Server, StreamMeta};
use wmrd_sim::{run_weak_hw, Fidelity, HwImpl, MemoryModel, Program, RandomWeakSched, RunConfig};
use wmrd_trace::{StreamWriter, TraceBuilder, TraceSet};

/// A scratch directory unique to one test invocation.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wmrd-serve-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn weak_trace(program: &Program, name: &str, seed: u64) -> TraceSet {
    let mut sched = RandomWeakSched::new(seed, 0.3);
    let mut sink = TraceBuilder::new(program.num_procs());
    run_weak_hw(
        HwImpl::StoreBuffer,
        program,
        MemoryModel::Wo,
        Fidelity::Conditioned,
        &mut sched,
        &mut sink,
        RunConfig::default(),
    )
    .unwrap();
    let mut trace = sink.finish();
    trace.meta.program = Some(name.to_string());
    trace.meta.model = Some(MemoryModel::Wo.to_string());
    trace.meta.seed = Some(seed);
    trace
}

/// The same execution as [`weak_trace`], captured as operation-granular
/// `WMRS` stream bytes (what a live simulator would feed the daemon).
fn weak_stream_bytes(program: &Program, seed: u64) -> Vec<u8> {
    let mut sched = RandomWeakSched::new(seed, 0.3);
    let mut writer = StreamWriter::new(Vec::new(), program.num_procs());
    run_weak_hw(
        HwImpl::StoreBuffer,
        program,
        MemoryModel::Wo,
        Fidelity::Conditioned,
        &mut sched,
        &mut writer,
        RunConfig::default(),
    )
    .unwrap();
    writer.finish().unwrap()
}

/// The explore-style corpus: weak executions of racy catalog programs
/// across a seed sweep, encoded as submission bodies.
fn corpus() -> Vec<Vec<u8>> {
    let mut bodies = Vec::new();
    for entry in [catalog::fig1a(), catalog::work_queue_buggy(), catalog::peterson_racy()] {
        for seed in 0..8 {
            bodies.push(weak_trace(&entry.program, entry.name, seed).to_binary());
        }
    }
    bodies
}

/// Binds a daemon on a fresh unix socket (TCP loopback off unix) and
/// runs it on a background thread.
fn start(
    dir: &std::path::Path,
    config: ServeConfig,
) -> (Endpoint, std::thread::JoinHandle<ServeSummary>) {
    let spec = if cfg!(unix) {
        format!("unix:{}", dir.join("daemon.sock").display())
    } else {
        "127.0.0.1:0".to_string()
    };
    let server = Server::bind(&Endpoint::parse(&spec).unwrap(), config).unwrap();
    let endpoint = server.endpoint().clone();
    let join = std::thread::spawn(move || server.run().unwrap());
    (endpoint, join)
}

/// Submits until the daemon accepts, treating `BUSY` as retry-later —
/// exactly the client discipline the typed reply exists for.
fn submit_until_accepted(client: &mut Client, body: &[u8]) -> String {
    loop {
        match client.submit(body).unwrap() {
            Reply::Ok(payload) => return String::from_utf8(payload).unwrap(),
            Reply::Busy(_) => std::thread::sleep(Duration::from_millis(5)),
            Reply::Err { code, message } => panic!("submission rejected ({code:?}): {message}"),
        }
    }
}

fn query_text(endpoint: &Endpoint, spec: &str) -> String {
    Client::connect(endpoint).unwrap().query(spec).unwrap().into_text().unwrap()
}

/// Drives one complete streaming session with the client discipline
/// the typed replies ask for — retry `BUSY` on open (no session slot)
/// and on close (analysis queue full) — and returns the `CLOSE`
/// verdict line.
fn stream_until_closed(
    endpoint: &Endpoint,
    name: &str,
    seed: u64,
    bytes: &[u8],
    chunk: usize,
) -> String {
    let meta = StreamMeta {
        program: Some(name.to_string()),
        model: Some(MemoryModel::Wo.to_string()),
        seed: Some(seed),
    };
    loop {
        let mut client = Client::connect(endpoint).unwrap();
        match client.stream_open(&format!("{name}-{seed}"), &meta).unwrap() {
            Reply::Ok(_) => {}
            Reply::Busy(_) => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Reply::Err { code, message } => panic!("stream open rejected ({code:?}): {message}"),
        }
        for part in bytes.chunks(chunk) {
            match client.stream_feed(part).unwrap() {
                Reply::Ok(_) => {}
                other => panic!("feed failed: {other:?}"),
            }
        }
        loop {
            match client.stream_close().unwrap() {
                Reply::Ok(payload) => return String::from_utf8(payload).unwrap(),
                Reply::Busy(_) => std::thread::sleep(Duration::from_millis(5)),
                Reply::Err { code, message } => panic!("close rejected ({code:?}): {message}"),
            }
        }
    }
}

fn drain(endpoint: &Endpoint, join: std::thread::JoinHandle<ServeSummary>) -> ServeSummary {
    let reply = Client::connect(endpoint).unwrap().shutdown().unwrap();
    assert_eq!(reply.into_text().unwrap(), "draining\n");
    join.join().unwrap()
}

/// The tentpole determinism claim: N concurrent submitters feeding the
/// corpus in different arrival orders, against different worker
/// counts, always converge to byte-identical `races` and `traces`
/// query output — because every catalog aggregate is commutative and
/// every listing sorted.
#[test]
fn concurrent_ingestion_is_deterministic_across_arrival_order_and_workers() {
    let bodies = corpus();
    let mut outputs = Vec::new();
    for (workers, rotation) in [(1usize, 0usize), (2, 5), (4, 11), (8, 17)] {
        let dir = scratch(&format!("det-{workers}-{rotation}"));
        let config = ServeConfig { workers, queue_cap: 8, ..ServeConfig::default() };
        let (endpoint, join) = start(&dir, config);

        // 8 concurrent submitters, each with a disjoint interleaved
        // slice of a rotated corpus: every config sees every trace,
        // in a different arrival order.
        let mut rotated = bodies.clone();
        rotated.rotate_left(rotation);
        std::thread::scope(|scope| {
            for lane in 0..8 {
                let endpoint = &endpoint;
                let rotated = &rotated;
                scope.spawn(move || {
                    let mut client = Client::connect(endpoint).unwrap();
                    for body in rotated.iter().skip(lane).step_by(8) {
                        let verdict = submit_until_accepted(&mut client, body);
                        assert!(
                            verdict.starts_with("ingested") || verdict.starts_with("duplicate"),
                            "{verdict}"
                        );
                    }
                });
            }
        });

        let races = query_text(&endpoint, "races");
        let traces = query_text(&endpoint, "traces");
        assert!(races.contains("hits="), "corpus must exhibit races:\n{races}");
        let summary = drain(&endpoint, join);
        assert_eq!(summary.submitted, bodies.len() as u64);
        assert_eq!(summary.ingested + summary.deduped, summary.submitted);
        assert_eq!(summary.rejected, 0);
        outputs.push((workers, rotation, races, traces));
        let _ = std::fs::remove_dir_all(&dir);
    }
    let (_, _, races0, traces0) = &outputs[0];
    for (workers, rotation, races, traces) in &outputs[1..] {
        assert_eq!(races, races0, "races diverged at workers={workers} rotation={rotation}");
        assert_eq!(traces, traces0, "traces diverged at workers={workers} rotation={rotation}");
    }
}

/// Backpressure is typed and bounded: a zero-capacity queue refuses
/// every submission with `BUSY` (never an unbounded backlog, never a
/// dropped connection), and the daemon keeps answering.
#[test]
fn queue_at_capacity_answers_busy_and_stays_responsive() {
    let dir = scratch("busy");
    let config = ServeConfig { workers: 1, queue_cap: 0, ..ServeConfig::default() };
    let (endpoint, join) = start(&dir, config);

    let body = corpus().remove(0);
    let mut client = Client::connect(&endpoint).unwrap();
    for _ in 0..3 {
        match client.submit(&body).unwrap() {
            Reply::Busy(m) => assert!(m.contains("capacity"), "{m}"),
            other => panic!("expected BUSY from a zero-capacity queue, got {other:?}"),
        }
    }
    assert_eq!(client.ping().unwrap().into_text().unwrap(), "pong\n");

    let summary = drain(&endpoint, join);
    assert_eq!(summary.busy, 3);
    assert_eq!(summary.ingested, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every file in the checked-in corrupt-trace corpus is rejected with
/// a typed decode error — and the daemon survives all of them to
/// ingest a good trace afterwards.
#[test]
fn corrupt_submissions_are_rejected_typed_not_fatal() {
    let dir = scratch("corrupt");
    let (endpoint, join) = start(&dir, ServeConfig::default());

    let corpus_dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/data/corrupt");
    let mut client = Client::connect(&endpoint).unwrap();
    let mut rejected = 0u64;
    let mut names: Vec<_> = std::fs::read_dir(&corpus_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "bin"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "corrupt corpus missing at {}", corpus_dir.display());
    for path in &names {
        let bytes = std::fs::read(path).unwrap();
        match client.submit(&bytes).unwrap() {
            Reply::Err { code, .. } => {
                assert_eq!(code, wmrd_serve::ErrorCode::Decode, "{}", path.display());
                rejected += 1;
            }
            other => panic!("{}: expected a decode error, got {other:?}", path.display()),
        }
        assert_eq!(client.ping().unwrap().into_text().unwrap(), "pong\n");
    }

    let verdict = submit_until_accepted(
        &mut client,
        &weak_trace(&catalog::fig1a().program, "fig1a", 0).to_binary(),
    );
    assert!(verdict.starts_with("ingested"), "{verdict}");

    let summary = drain(&endpoint, join);
    assert_eq!(summary.rejected, rejected);
    assert_eq!(summary.ingested, 1);
    // Rejections are verdicts, so they count as submissions; only BUSY
    // refusals fall outside the tally.
    assert_eq!(summary.submitted, rejected + 1);
    assert_eq!(summary.ingested + summary.deduped + summary.rejected, summary.submitted);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The kill-9 contract: a daemon that died mid-append leaves a torn
/// journal tail; reopening salvages every committed record, truncates
/// the damage, and a restarted daemon answers queries identically.
#[test]
fn torn_journal_tail_reopens_to_the_committed_prefix() {
    let dir = scratch("torn");
    let journal = dir.join("races.journal");
    let bodies: Vec<_> = corpus().into_iter().take(6).collect();

    let config = ServeConfig { catalog: Some(journal.clone()), ..ServeConfig::default() };
    let (endpoint, join) = start(&dir, config);
    let mut client = Client::connect(&endpoint).unwrap();
    for body in &bodies {
        submit_until_accepted(&mut client, body);
    }
    let races_before = query_text(&endpoint, "races");
    let traces_before = query_text(&endpoint, "traces");
    let summary = drain(&endpoint, join);
    let committed = summary.catalog.traces;
    assert!(committed >= 1);

    // Simulate a kill -9 mid-append: a partial frame on the tail.
    let clean = std::fs::read(&journal).unwrap();
    {
        let mut f = std::fs::OpenOptions::new().append(true).open(&journal).unwrap();
        f.write_all(&[0xCA, 0x00, 0x00, 0x01]).unwrap(); // torn frame prefix
    }
    let reopened = Catalog::open(&journal).unwrap();
    let salvage = reopened.salvage().unwrap();
    assert!(!salvage.complete);
    assert_eq!(salvage.records as u64, committed, "every committed record survives");
    assert_eq!(reopened.stats().dropped_bytes, 4);
    drop(reopened);
    // Reopen truncated the tail back to the committed prefix on disk.
    assert_eq!(std::fs::read(&journal).unwrap(), clean);

    // A restarted daemon on the salvaged journal answers identically.
    let config = ServeConfig { catalog: Some(journal.clone()), ..ServeConfig::default() };
    let (endpoint, join) = start(&dir, config);
    assert_eq!(query_text(&endpoint, "races"), races_before);
    assert_eq!(query_text(&endpoint, "traces"), traces_before);
    // And resubmitting the same corpus is pure dedup.
    let mut client = Client::connect(&endpoint).unwrap();
    for body in &bodies {
        let verdict = submit_until_accepted(&mut client, body);
        assert!(verdict.starts_with("duplicate"), "{verdict}");
    }
    let summary = drain(&endpoint, join);
    assert_eq!(summary.deduped, bodies.len() as u64);
    assert_eq!(summary.ingested, 0);
    assert_eq!(summary.catalog.traces, committed);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncating the tail mid-record loses exactly the final record and
/// nothing before it — salvage keeps the longest valid prefix.
#[test]
fn mid_record_truncation_loses_only_the_final_record() {
    let dir = scratch("midcut");
    let journal = dir.join("races.journal");
    let bodies: Vec<_> = corpus().into_iter().take(4).collect();

    let config = ServeConfig { catalog: Some(journal.clone()), ..ServeConfig::default() };
    let (endpoint, join) = start(&dir, config);
    let mut client = Client::connect(&endpoint).unwrap();
    for body in &bodies {
        submit_until_accepted(&mut client, body);
    }
    let summary = drain(&endpoint, join);
    let committed = summary.catalog.traces;
    assert!(committed >= 2, "corpus head must be distinct traces");

    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() - 7]).unwrap();
    let reopened = Catalog::open(&journal).unwrap();
    assert_eq!(reopened.trace_count() as u64, committed - 1);
    assert!(!reopened.salvage().unwrap().complete);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `STATS` carries the `serve.*`, `stream.*`, and `catalog.*`
/// vocabulary as a RunMetrics JSON report.
#[test]
fn stats_report_carries_the_serve_vocabulary() {
    let dir = scratch("stats");
    let (endpoint, join) = start(&dir, ServeConfig::default());
    let mut client = Client::connect(&endpoint).unwrap();
    submit_until_accepted(
        &mut client,
        &weak_trace(&catalog::fig1a().program, "fig1a", 1).to_binary(),
    );
    let bytes = weak_stream_bytes(&catalog::fig1a().program, 2);
    stream_until_closed(&endpoint, "fig1a", 2, &bytes, 96);
    let json = client.stats().unwrap().into_text().unwrap();
    for key in [
        "serve.submitted",
        "serve.ingested",
        "serve.queue_cap",
        "serve.workers",
        "stream.sessions",
        "stream.events",
        "stream.races",
        "stream.open",
        "stream.cap",
        "stream.feed_p50_ns",
        "catalog.traces",
        "catalog.races",
    ] {
        assert!(json.contains(key), "STATS report missing `{key}`:\n{json}");
    }
    drain(&endpoint, join);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Streaming sessions and whole-trace submissions interleave freely
/// across concurrent connections, land in the same content-addressed
/// catalog, and every `CLOSE` cross-check agrees with the post-mortem.
#[test]
fn streams_and_submissions_interleave_into_one_catalog() {
    let dir = scratch("stream-mix");
    let (endpoint, join) = start(&dir, ServeConfig::default());

    // Concurrent lanes: work-queue executions arrive as SUBMITs while
    // fig1a executions stream in live, all at once.
    let wq = catalog::work_queue_buggy();
    let fig = catalog::fig1a();
    std::thread::scope(|scope| {
        for seed in 0..4u64 {
            let endpoint = &endpoint;
            let wq = &wq;
            let fig = &fig;
            scope.spawn(move || {
                let body = weak_trace(&wq.program, wq.name, seed).to_binary();
                let mut client = Client::connect(endpoint).unwrap();
                submit_until_accepted(&mut client, &body);
            });
            scope.spawn(move || {
                let bytes = weak_stream_bytes(&fig.program, seed);
                let verdict = stream_until_closed(endpoint, fig.name, seed, &bytes, 48);
                assert!(verdict.contains("match=yes"), "{verdict}");
            });
        }
    });

    // Digest parity: the post-hoc recording of every streamed
    // execution (same meta) is already in the catalog.
    let mut client = Client::connect(&endpoint).unwrap();
    for seed in 0..4u64 {
        let body = weak_trace(&fig.program, fig.name, seed).to_binary();
        let verdict = submit_until_accepted(&mut client, &body);
        assert!(verdict.starts_with("duplicate"), "stream/submit parity at seed {seed}: {verdict}");
    }

    let races = query_text(&endpoint, "races");
    assert!(races.contains("hits="), "{races}");
    let summary = drain(&endpoint, join);
    assert_eq!(summary.stream_sessions, 4);
    assert_eq!(summary.stream_crosscheck_failures, 0);
    assert!(summary.stream_events > 0);
    // 4 SUBMITs + 4 CLOSEs + 4 parity SUBMITs, every one a verdict.
    assert_eq!(summary.submitted, 12);
    assert_eq!(summary.ingested + summary.deduped, 12);
    assert_eq!(summary.rejected, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `PREDICT` re-analyzes a retained submission predictively and amends
/// the cataloged entry with the predicted identities: provenance shows
/// up in both text and JSON query renderings, re-prediction is an
/// idempotent no-op, and bad orders or forgotten digests come back as
/// typed query errors.
#[test]
fn predict_amends_retained_traces_with_typed_errors() {
    let dir = scratch("predict");
    let (endpoint, join) = start(&dir, ServeConfig::default());

    let mut client = Client::connect(&endpoint).unwrap();
    let body = weak_trace(&catalog::fig1a().program, "fig1a", 1).to_binary();
    let verdict = submit_until_accepted(&mut client, &body);
    assert!(verdict.starts_with("ingested"), "{verdict}");
    let digest = verdict.split_whitespace().nth(1).unwrap().to_string();

    // A bad order token is a typed query error, not a dropped line.
    match client.predict(&digest, Some("hb9")).unwrap() {
        Reply::Err { code, message } => {
            assert_eq!(code, wmrd_serve::ErrorCode::Query);
            assert!(message.contains("shb|wcp"), "{message}");
        }
        other => panic!("expected a typed error for a bad order, got {other:?}"),
    }

    // Default order is wcp; the reply names the digest and tallies.
    let payload = match client.predict(&digest, None).unwrap() {
        Reply::Ok(payload) => String::from_utf8(payload).unwrap(),
        other => panic!("PREDICT failed: {other:?}"),
    };
    assert!(payload.starts_with(&format!("predicted {digest} order=wcp keys=")), "{payload}");

    // Predicting again adds no knowledge: the amendment dedups.
    let repeat = match client.predict(&digest, Some("wcp")).unwrap() {
        Reply::Ok(payload) => String::from_utf8(payload).unwrap(),
        other => panic!("repeat PREDICT failed: {other:?}"),
    };
    assert!(repeat.contains("new=0"), "{repeat}");

    // Provenance reaches both query renderings.
    let races = query_text(&endpoint, "races");
    assert!(races.contains("provenance=observed"), "{races}");
    let json = query_text(&endpoint, "json:races");
    assert!(json.contains("\"provenance\":"), "{json}");
    assert!(json.starts_with("{\"races\":["), "{json}");

    // An unknown digest is a typed query error.
    match client.predict("deadbeef", None).unwrap() {
        Reply::Err { code, message } => {
            assert_eq!(code, wmrd_serve::ErrorCode::Query);
            assert!(message.contains("not retained"), "{message}");
        }
        other => panic!("expected a typed error for an unknown digest, got {other:?}"),
    }

    let summary = drain(&endpoint, join);
    assert_eq!(summary.predictions, 2, "{summary}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Retention is working-set state, not durable: a restarted daemon
/// answers `PREDICT` for an old digest with a typed "resubmit" error,
/// while the amended provenance replays from the journal — and
/// resubmitting the same bytes re-retains the trace, after which a
/// replayed prediction adds nothing.
#[test]
fn predict_retention_is_not_durable_but_amendments_are() {
    let dir = scratch("predict-restart");
    let journal = dir.join("races.journal");
    let config = ServeConfig { catalog: Some(journal.clone()), ..ServeConfig::default() };
    let (endpoint, join) = start(&dir, config);
    let mut client = Client::connect(&endpoint).unwrap();
    let body = weak_trace(&catalog::fig1a().program, "fig1a", 1).to_binary();
    let verdict = submit_until_accepted(&mut client, &body);
    let digest = verdict.split_whitespace().nth(1).unwrap().to_string();
    match client.predict(&digest, None).unwrap() {
        Reply::Ok(_) => {}
        other => panic!("PREDICT failed: {other:?}"),
    }
    let races = query_text(&endpoint, "races");
    drain(&endpoint, join);

    let config = ServeConfig { catalog: Some(journal.clone()), ..ServeConfig::default() };
    let (endpoint, join) = start(&dir, config);
    let mut client = Client::connect(&endpoint).unwrap();
    match client.predict(&digest, None).unwrap() {
        Reply::Err { code, message } => {
            assert_eq!(code, wmrd_serve::ErrorCode::Query);
            assert!(message.contains("resubmit"), "{message}");
        }
        other => panic!("expected a typed error after restart, got {other:?}"),
    }
    assert_eq!(query_text(&endpoint, "races"), races, "amendments must survive the restart");
    let verdict = submit_until_accepted(&mut client, &body);
    assert!(verdict.starts_with("duplicate"), "{verdict}");
    let payload = match client.predict(&digest, None).unwrap() {
        Reply::Ok(payload) => String::from_utf8(payload).unwrap(),
        other => panic!("PREDICT after resubmission failed: {other:?}"),
    };
    assert!(payload.contains("new=0"), "a replayed prediction adds nothing: {payload}");
    let summary = drain(&endpoint, join);
    assert_eq!(summary.predictions, 1, "{summary}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The session-slot bound is a typed `BUSY`, and a client that
/// vanishes mid-stream (half a record in flight) has its slot
/// reclaimed — no leak, no wedged daemon.
#[test]
fn stream_slots_are_bounded_and_reclaimed_on_disconnect() {
    let dir = scratch("stream-cap");
    let config = ServeConfig { max_streams: 2, ..ServeConfig::default() };
    let (endpoint, join) = start(&dir, config);
    let meta = StreamMeta::default();

    let mut a = Client::connect(&endpoint).unwrap();
    let mut b = Client::connect(&endpoint).unwrap();
    assert!(matches!(a.stream_open("a", &meta).unwrap(), Reply::Ok(_)));
    assert!(matches!(b.stream_open("b", &meta).unwrap(), Reply::Ok(_)));

    // Both slots held: a third session is refused, typed, and the
    // daemon keeps answering on that same connection.
    let mut c = Client::connect(&endpoint).unwrap();
    match c.stream_open("c", &meta).unwrap() {
        Reply::Busy(m) => assert!(m.contains("capacity"), "{m}"),
        other => panic!("expected BUSY at the stream cap, got {other:?}"),
    }
    assert_eq!(c.ping().unwrap().into_text().unwrap(), "pong\n");

    // `a` dies mid-stream with a split record on the wire.
    let bytes = weak_stream_bytes(&catalog::fig1a().program, 3);
    assert!(matches!(a.stream_feed(&bytes[..10]).unwrap(), Reply::Ok(_)));
    drop(a);

    // The daemon notices the disconnect asynchronously; the freed slot
    // lets `c` in.
    let mut freed = false;
    for _ in 0..400 {
        match c.stream_open("c", &meta).unwrap() {
            Reply::Ok(_) => {
                freed = true;
                break;
            }
            Reply::Busy(_) => std::thread::sleep(Duration::from_millis(10)),
            Reply::Err { code, message } => panic!("({code:?}): {message}"),
        }
    }
    assert!(freed, "a dead client's stream slot must be reclaimed");

    // `b`'s session was never disturbed: it completes and cross-checks.
    for part in bytes.chunks(64) {
        assert!(matches!(b.stream_feed(part).unwrap(), Reply::Ok(_)));
    }
    let verdict = loop {
        match b.stream_close().unwrap() {
            Reply::Ok(payload) => break String::from_utf8(payload).unwrap(),
            Reply::Busy(_) => std::thread::sleep(Duration::from_millis(5)),
            Reply::Err { code, message } => panic!("close rejected ({code:?}): {message}"),
        }
    };
    assert!(verdict.contains("match=yes"), "{verdict}");

    drop(b);
    drop(c);
    let summary = drain(&endpoint, join);
    assert_eq!(summary.stream_sessions, 3, "{summary}");
    assert_eq!(summary.stream_crosscheck_failures, 0, "{summary}");
    let _ = std::fs::remove_dir_all(&dir);
}
