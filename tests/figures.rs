//! End-to-end reproduction of the paper's Figures 1–3 (experiments
//! E1–E4), asserted rather than printed.

use wmrd_core::{PostMortem, RaceKind};
use wmrd_progs::catalog;
use wmrd_sim::{run_sc, run_weak, Fidelity, MemoryModel, RandomSched, RunConfig, WeakScript};
use wmrd_trace::{EventId, MultiSink, OpRecorder, ProcId, TraceBuilder, Value};

fn p(i: u16) -> ProcId {
    ProcId::new(i)
}

/// Figure 1a: the unsynchronized program exhibits a data race in every
/// sequentially consistent execution.
#[test]
fn fig1a_races_under_every_schedule() {
    let entry = catalog::fig1a();
    for seed in 0..10 {
        let mut sink = TraceBuilder::new(entry.program.num_procs());
        run_sc(&entry.program, &mut RandomSched::new(seed), &mut sink, RunConfig::uniform())
            .unwrap();
        let report = PostMortem::new(&sink.finish()).analyze().unwrap();
        assert!(!report.is_race_free(), "seed {seed}");
        assert_eq!(report.partitions.first_indices().len(), 1, "seed {seed}");
        let race = report.reported_races()[0];
        assert_eq!(race.kind, RaceKind::DataData);
        // The single event-level race covers both x and y.
        let lay = catalog::fig1_layout();
        assert!(race.locations.contains(lay.x) && race.locations.contains(lay.y));
        // With a race present but first, the SCP still covers everything.
        assert!(report.scp.covers_everything(), "seed {seed}");
    }
}

/// Figure 1b: the Unset/Test&Set pairing orders the conflicting accesses
/// in every execution, on SC and on every weak model.
#[test]
fn fig1b_race_free_everywhere() {
    let entry = catalog::fig1b();
    for seed in 0..10 {
        let mut sink = TraceBuilder::new(entry.program.num_procs());
        run_sc(&entry.program, &mut RandomSched::new(seed), &mut sink, RunConfig::uniform())
            .unwrap();
        let report = PostMortem::new(&sink.finish()).analyze().unwrap();
        assert!(report.is_race_free(), "SC seed {seed}:\n{report}");
        assert!(report.num_so1_edges >= 1, "pairing must be found");
    }
    for model in MemoryModel::WEAK {
        for seed in 0..5 {
            let mut sink = TraceBuilder::new(entry.program.num_procs());
            let mut sched = wmrd_sim::RandomWeakSched::new(seed, 0.3);
            run_weak(
                &entry.program,
                model,
                Fidelity::Conditioned,
                &mut sched,
                &mut sink,
                RunConfig::uniform(),
            )
            .unwrap();
            let report = PostMortem::new(&sink.finish()).analyze().unwrap();
            assert!(report.is_race_free(), "{model} seed {seed}:\n{report}");
        }
    }
}

/// Figures 2b and 3: the scripted weak execution of the buggy work queue
/// reproduces the stale dequeue; the analysis reports exactly one first
/// partition (the queue races) and withholds the region races.
#[test]
fn fig2_and_fig3_structure() {
    let entry = catalog::work_queue_buggy();
    let lay = catalog::work_queue_layout();
    let mut sink = MultiSink::new(
        TraceBuilder::new(entry.program.num_procs()),
        OpRecorder::new(entry.program.num_procs()),
    );
    let mut sched = WeakScript::new(catalog::work_queue_weak_script());
    run_weak(
        &entry.program,
        MemoryModel::Wo,
        Fidelity::Conditioned,
        &mut sched,
        &mut sink,
        RunConfig::uniform(),
    )
    .unwrap();
    let (builder, recorder) = sink.into_inner();
    let trace = builder.finish();
    let ops = recorder.finish();

    // Figure 2b's anomaly: QEmpty new, Q stale.
    let p2_ops = ops.proc_ops(p(1)).unwrap();
    assert_eq!(p2_ops.iter().find(|o| o.loc == lay.q_empty).unwrap().value, Value::new(0));
    assert_eq!(p2_ops.iter().find(|o| o.loc == lay.q).unwrap().value, Value::new(lay.stale_addr));

    // Figure 3's structure.
    let report = PostMortem::new(&trace).analyze().unwrap();
    assert_eq!(report.partitions.len(), 2, "{report}");
    assert_eq!(report.partitions.first_indices().len(), 1);
    let first = report.first_partitions().next().unwrap();
    let first_races: Vec<_> = first.races.iter().map(|&i| &report.races[i]).collect();
    assert!(first_races
        .iter()
        .all(|r| r.locations.contains(lay.q) || r.locations.contains(lay.q_empty)));
    // The withheld partition holds the region collisions between P2/P3.
    let withheld = report.withheld_races();
    assert_eq!(withheld.len(), 2);
    for race in &withheld {
        for loc in &race.locations {
            assert!(loc.addr() >= lay.region_base, "withheld races are region races");
        }
    }
    // The partition order: first precedes withheld, not vice versa.
    let fi = report.partitions.first_indices()[0];
    let other = (0..2).find(|&i| i != fi).unwrap();
    assert!(report.partitions.precedes(fi, other));
    assert!(!report.partitions.precedes(other, fi));

    // The SCP ends before P2's region work and P3's phase-two work.
    assert!(!report.scp.covers_everything());
    assert!(report.scp.contains(EventId::new(p(0), 0)), "P1's enqueue is in the SCP");
    assert!(report.scp.contains(EventId::new(p(1), 0)), "P2's dequeue reads are in the SCP");
    let p2_boundary = report.scp.boundary(p(1)).unwrap();
    assert!((1..3).contains(&p2_boundary), "P2's region work is outside");
}

/// The *fixed* work queue is race-free on every model.
#[test]
fn fixed_work_queue_is_race_free() {
    let entry = catalog::work_queue_fixed();
    for model in MemoryModel::WEAK {
        for seed in 0..5 {
            let mut sink = TraceBuilder::new(entry.program.num_procs());
            let mut sched = wmrd_sim::RandomWeakSched::new(seed, 0.3);
            run_weak(
                &entry.program,
                model,
                Fidelity::Conditioned,
                &mut sched,
                &mut sink,
                RunConfig::uniform(),
            )
            .unwrap();
            let report = PostMortem::new(&sink.finish()).analyze().unwrap();
            assert!(report.is_race_free(), "{model} seed {seed}:\n{report}");
        }
    }
}

/// Theorem 4.1 on the figure executions: no first partitions ⟺ no data
/// races.
#[test]
fn theorem_4_1_on_figures() {
    use wmrd_verify::theorems::check_theorem_4_1;
    for entry in catalog::all() {
        for seed in 0..3 {
            let mut sink = TraceBuilder::new(entry.program.num_procs());
            run_sc(&entry.program, &mut RandomSched::new(seed), &mut sink, RunConfig::uniform())
                .unwrap();
            let report = PostMortem::new(&sink.finish()).analyze().unwrap();
            assert!(check_theorem_4_1(&report), "{} seed {seed}", entry.name);
        }
    }
}
