//! The post-mortem workflow through actual trace *files*: record an
//! execution, write the trace to disk, read it back in a separate step,
//! and analyze — the paper's two-phase post-mortem pipeline.

use wmrd_core::PostMortem;
use wmrd_progs::{catalog, generate};
use wmrd_sim::{run_sc, run_weak, Fidelity, MemoryModel, RandomSched, RandomWeakSched, RunConfig};
use wmrd_trace::{TraceBuilder, TraceError, TraceSet};

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wmrd-xtest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn record_write_read_analyze_json() {
    let entry = catalog::work_queue_buggy();
    let mut sink = TraceBuilder::new(entry.program.num_procs());
    run_sc(&entry.program, &mut RandomSched::new(3), &mut sink, RunConfig::uniform()).unwrap();
    let mut trace = sink.finish();
    trace.meta.program = Some(entry.name.into());
    trace.meta.model = Some("SC".into());
    trace.meta.seed = Some(3);

    let path = tmp_dir().join("wq.json");
    trace.write_json_file(&path).unwrap();

    // Post-mortem phase: a fresh process would start here.
    let loaded = TraceSet::read_json_file(&path).unwrap();
    assert_eq!(loaded, trace);
    let report = PostMortem::new(&loaded).analyze().unwrap();
    assert!(!report.is_race_free());
    assert_eq!(report.meta.program.as_deref(), Some("work-queue-buggy"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn binary_files_roundtrip_weak_traces() {
    let cfg = generate::GenConfig { rogue_fraction: 0.5, ..generate::GenConfig::default() };
    let program = generate::racy(&cfg);
    let mut sink = TraceBuilder::new(program.num_procs());
    let mut sched = RandomWeakSched::new(5, 0.3);
    run_weak(
        &program,
        MemoryModel::RCsc,
        Fidelity::Conditioned,
        &mut sched,
        &mut sink,
        RunConfig::uniform(),
    )
    .unwrap();
    let trace = sink.finish();

    let path = tmp_dir().join("weak.bin");
    std::fs::write(&path, trace.to_binary()).unwrap();
    let loaded = TraceSet::from_binary(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(loaded, trace);

    // Reports agree regardless of the serialization path taken.
    let direct = PostMortem::new(&trace).analyze().unwrap();
    let via_file = PostMortem::new(&loaded).analyze().unwrap();
    assert_eq!(direct, via_file);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_files_are_rejected_not_misread() {
    let entry = catalog::fig1a();
    let mut sink = TraceBuilder::new(entry.program.num_procs());
    run_sc(&entry.program, &mut RandomSched::new(0), &mut sink, RunConfig::uniform()).unwrap();
    let trace = sink.finish();

    // Bit-flip every byte position of a small binary trace; decoding must
    // either fail cleanly or produce a trace that still validates — never
    // panic.
    let bin = trace.to_binary();
    for i in 0..bin.len() {
        let mut corrupt = bin.clone();
        corrupt[i] ^= 0xFF;
        match TraceSet::from_binary(&corrupt) {
            Ok(t) => assert!(t.validate().is_ok(), "decoded trace must be valid"),
            Err(e) => {
                assert!(matches!(
                    e,
                    TraceError::Binary(_)
                        | TraceError::Malformed(_)
                        | TraceError::UnknownEvent(_)
                        | TraceError::Decode(_)
                ));
            }
        }
    }

    // Truncations likewise.
    for len in 0..bin.len() {
        assert!(TraceSet::from_binary(&bin[..len]).is_err(), "truncated at {len} must not decode");
    }

    // Garbage JSON.
    assert!(TraceSet::from_json("{\"not\": \"a trace\"}").is_err());
    assert!(TraceSet::read_json_file("/nonexistent/path.json").is_err());
}

/// The checked-in corrupt-trace corpus, each file a distinct damage
/// class against the same deterministic base encoding.
fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/data/corrupt")
}

/// The corpus base: fig1a under the SC scheduler at seed 0 — fully
/// deterministic, so the corpus can be regenerated bit-for-bit.
fn corpus_base() -> TraceSet {
    let entry = catalog::fig1a();
    let mut sink = TraceBuilder::new(entry.program.num_procs());
    run_sc(&entry.program, &mut RandomSched::new(0), &mut sink, RunConfig::uniform()).unwrap();
    let mut trace = sink.finish();
    trace.meta.program = Some(entry.name.into());
    trace.meta.model = Some("SC".into());
    trace.meta.seed = Some(0);
    trace
}

/// Offset one past the v2 header section (magic + version + framed
/// header payload + CRC).
fn header_end(bin: &[u8]) -> usize {
    let len = u32::from_be_bytes([bin[6], bin[7], bin[8], bin[9]]) as usize;
    6 + 4 + len + 4
}

/// Start offset of the final event record.
fn last_record_start(bin: &[u8]) -> usize {
    let mut pos = header_end(bin);
    let mut last = pos;
    while bin[pos] == 0xE7 {
        last = pos;
        let len = u32::from_be_bytes([bin[pos + 3], bin[pos + 4], bin[pos + 5], bin[pos + 6]]);
        pos += 11 + len as usize;
    }
    last
}

/// Derives the five corpus variants from the base encoding.
fn corpus_variants(bin: &[u8]) -> Vec<(&'static str, Vec<u8>)> {
    let hdr_end = header_end(bin);
    let flipped_magic = {
        let mut v = bin.to_vec();
        v[0] ^= 0xFF;
        v
    };
    let bad_crc = {
        // The last byte is part of the sync-section CRC; the events
        // themselves stay intact.
        let mut v = bin.to_vec();
        *v.last_mut().unwrap() ^= 0x01;
        v
    };
    let oversized = {
        // The first event record's length field claims 4 GiB.
        let mut v = bin.to_vec();
        v[hdr_end + 3..hdr_end + 7].copy_from_slice(&[0xFF; 4]);
        v
    };
    let mid_cut = bin[..last_record_start(bin) + 5].to_vec();
    vec![
        ("truncated-header.bin", bin[..10].to_vec()),
        ("flipped-magic.bin", flipped_magic),
        ("bad-crc.bin", bad_crc),
        ("oversized-length.bin", oversized),
        ("mid-event-cut.bin", mid_cut),
    ]
}

#[test]
fn corrupt_corpus_matches_its_deterministic_regeneration() {
    // The corpus is derived, not hand-maintained: every checked-in file
    // must equal what `corpus_variants` builds from the deterministic
    // base. Regenerate with WMRD_REGEN_CORPUS=1.
    let dir = corpus_dir();
    let regen = std::env::var_os("WMRD_REGEN_CORPUS").is_some();
    if regen {
        std::fs::create_dir_all(&dir).unwrap();
    }
    for (name, bytes) in corpus_variants(&corpus_base().to_binary()) {
        let path = dir.join(name);
        if regen {
            std::fs::write(&path, &bytes).unwrap();
            continue;
        }
        let on_disk = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("{name}: {e} (regenerate with WMRD_REGEN_CORPUS=1)"));
        assert_eq!(on_disk, bytes, "{name} drifted from its construction");
    }
}

#[test]
fn corrupt_corpus_salvage_boundaries_are_golden() {
    let base = corpus_base();
    let bin = base.to_binary();
    let total = base.num_events();
    let base_report = PostMortem::new(&base).analyze().unwrap();

    // Every corpus file fails strict decode with a typed error…
    for (name, bytes) in corpus_variants(&bin) {
        let err =
            TraceSet::from_binary(&bytes).expect_err(&format!("{name} must not decode strictly"));
        assert!(matches!(err, TraceError::Decode(_)), "{name}: {err}");
    }

    // …and salvages to a known boundary.
    let variants = corpus_variants(&bin);
    let by_name = |n: &str| variants.iter().find(|(name, _)| *name == n).unwrap().1.clone();

    // Header gone: nothing to recover by, but still not a panic or a
    // hard error — an empty trace with the failure pinned.
    let s = TraceSet::salvage_binary(&by_name("truncated-header.bin")).unwrap();
    assert!(!s.complete);
    assert_eq!(s.events_recovered(), 0);
    assert_eq!(s.expected, None, "the event-count map died with the header");
    assert_eq!(s.bytes_used, 6);

    // Wrong magic: not a wmrd trace at all — salvage refuses too.
    let err = TraceSet::salvage_binary(&by_name("flipped-magic.bin")).unwrap_err();
    assert!(err.to_string().contains("bad magic"), "{err}");

    // Sync-section CRC flipped: every event survives; the sync order is
    // rebuilt from the recovered sync events, so analysis is unharmed.
    let s = TraceSet::salvage_binary(&by_name("bad-crc.bin")).unwrap();
    assert!(!s.complete);
    assert_eq!(s.events_recovered(), total);
    assert_eq!(s.events_lost(), 0);
    let report = PostMortem::new(&s.trace).analyze().unwrap();
    assert_eq!(report.races, base_report.races, "full event recovery ⇒ same races");
    assert_eq!(report.scp, base_report.scp, "… and the same SC prefix");

    // A length field claiming 4 GiB: caught by the record cap at the
    // record's own offset, before any allocation that size.
    let s = TraceSet::salvage_binary(&by_name("oversized-length.bin")).unwrap();
    assert!(!s.complete);
    assert_eq!(s.events_recovered(), 0, "damage hits the very first record");
    assert_eq!(s.expected.as_ref().map(|e| e.iter().sum::<u32>()), Some(total as u32));
    assert_eq!(s.failure.as_ref().unwrap().offset, header_end(&bin));

    // Cut mid-way through the final record: exactly one event is lost,
    // the used-byte count stops at that record's start, and the failure
    // is pinned inside its framing (the cut lands in the length field,
    // 3 bytes past the marker).
    let s = TraceSet::salvage_binary(&by_name("mid-event-cut.bin")).unwrap();
    assert!(!s.complete);
    assert_eq!(s.events_recovered(), total - 1);
    assert_eq!(s.events_lost(), 1);
    assert_eq!(s.bytes_used, last_record_start(&bin));
    assert_eq!(s.failure.as_ref().unwrap().offset, last_record_start(&bin) + 3);
    assert!(s.to_string().contains("salvage boundaries:"), "{s}");
    PostMortem::new(&s.trace).analyze().expect("the salvaged prefix analyzes");
}

#[test]
fn analysis_of_empty_and_single_processor_traces() {
    // Degenerate inputs flow through the full pipeline.
    let empty = TraceBuilder::new(0).finish();
    let report = PostMortem::new(&empty).analyze().unwrap();
    assert!(report.is_race_free());
    assert_eq!(report.num_events, 0);

    let single = {
        use wmrd_trace::{AccessKind, Location, ProcId, TraceSink, Value};
        let mut b = TraceBuilder::new(1);
        b.data_access(ProcId::new(0), Location::new(0), AccessKind::Write, Value::new(1), None);
        b.finish()
    };
    let report = PostMortem::new(&single).analyze().unwrap();
    assert!(report.is_race_free(), "one processor cannot race with itself");
    assert!(report.scp.covers_everything());
}
