//! The post-mortem workflow through actual trace *files*: record an
//! execution, write the trace to disk, read it back in a separate step,
//! and analyze — the paper's two-phase post-mortem pipeline.

use wmrd_core::PostMortem;
use wmrd_progs::{catalog, generate};
use wmrd_sim::{run_sc, run_weak, Fidelity, MemoryModel, RandomSched, RandomWeakSched, RunConfig};
use wmrd_trace::{TraceBuilder, TraceError, TraceSet};

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wmrd-xtest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn record_write_read_analyze_json() {
    let entry = catalog::work_queue_buggy();
    let mut sink = TraceBuilder::new(entry.program.num_procs());
    run_sc(&entry.program, &mut RandomSched::new(3), &mut sink, RunConfig::uniform()).unwrap();
    let mut trace = sink.finish();
    trace.meta.program = Some(entry.name.into());
    trace.meta.model = Some("SC".into());
    trace.meta.seed = Some(3);

    let path = tmp_dir().join("wq.json");
    trace.write_json_file(&path).unwrap();

    // Post-mortem phase: a fresh process would start here.
    let loaded = TraceSet::read_json_file(&path).unwrap();
    assert_eq!(loaded, trace);
    let report = PostMortem::new(&loaded).analyze().unwrap();
    assert!(!report.is_race_free());
    assert_eq!(report.meta.program.as_deref(), Some("work-queue-buggy"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn binary_files_roundtrip_weak_traces() {
    let cfg = generate::GenConfig { rogue_fraction: 0.5, ..generate::GenConfig::default() };
    let program = generate::racy(&cfg);
    let mut sink = TraceBuilder::new(program.num_procs());
    let mut sched = RandomWeakSched::new(5, 0.3);
    run_weak(
        &program,
        MemoryModel::RCsc,
        Fidelity::Conditioned,
        &mut sched,
        &mut sink,
        RunConfig::uniform(),
    )
    .unwrap();
    let trace = sink.finish();

    let path = tmp_dir().join("weak.bin");
    std::fs::write(&path, trace.to_binary()).unwrap();
    let loaded = TraceSet::from_binary(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(loaded, trace);

    // Reports agree regardless of the serialization path taken.
    let direct = PostMortem::new(&trace).analyze().unwrap();
    let via_file = PostMortem::new(&loaded).analyze().unwrap();
    assert_eq!(direct, via_file);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_files_are_rejected_not_misread() {
    let entry = catalog::fig1a();
    let mut sink = TraceBuilder::new(entry.program.num_procs());
    run_sc(&entry.program, &mut RandomSched::new(0), &mut sink, RunConfig::uniform()).unwrap();
    let trace = sink.finish();

    // Bit-flip every byte position of a small binary trace; decoding must
    // either fail cleanly or produce a trace that still validates — never
    // panic.
    let bin = trace.to_binary();
    for i in 0..bin.len() {
        let mut corrupt = bin.clone();
        corrupt[i] ^= 0xFF;
        match TraceSet::from_binary(&corrupt) {
            Ok(t) => assert!(t.validate().is_ok(), "decoded trace must be valid"),
            Err(e) => {
                assert!(matches!(
                    e,
                    TraceError::Binary(_) | TraceError::Malformed(_) | TraceError::UnknownEvent(_)
                ));
            }
        }
    }

    // Truncations likewise.
    for len in 0..bin.len() {
        assert!(TraceSet::from_binary(&bin[..len]).is_err(), "truncated at {len} must not decode");
    }

    // Garbage JSON.
    assert!(TraceSet::from_json("{\"not\": \"a trace\"}").is_err());
    assert!(TraceSet::read_json_file("/nonexistent/path.json").is_err());
}

#[test]
fn analysis_of_empty_and_single_processor_traces() {
    // Degenerate inputs flow through the full pipeline.
    let empty = TraceBuilder::new(0).finish();
    let report = PostMortem::new(&empty).analyze().unwrap();
    assert!(report.is_race_free());
    assert_eq!(report.num_events, 0);

    let single = {
        use wmrd_trace::{AccessKind, Location, ProcId, TraceSink, Value};
        let mut b = TraceBuilder::new(1);
        b.data_access(ProcId::new(0), Location::new(0), AccessKind::Write, Value::new(1), None);
        b.finish()
    };
    let report = PostMortem::new(&single).analyze().unwrap();
    assert!(report.is_race_free(), "one processor cannot race with itself");
    assert!(report.scp.covers_everything());
}
