//! End-to-end validation of Condition 3.4 / Theorems 3.5, 4.1, 4.2 over
//! the whole catalog, all four weak models, and random programs
//! (experiments E5–E7 in asserted form).

use std::collections::HashSet;

use wmrd_core::{PairingPolicy, PostMortem};
use wmrd_progs::{catalog, generate};
use wmrd_sim::{Fidelity, HwImpl, MemoryModel, RunConfig};
use wmrd_verify::theorems::{check_condition_3_4_hw, check_theorem_4_1, check_theorem_4_2};
use wmrd_verify::{
    enumerate_sc, is_sequentially_consistent, sample_sc, theorems::sc_race_signatures, EnumConfig,
    RaceSignature,
};

fn sampled_sigs(program: &wmrd_sim::Program) -> HashSet<RaceSignature> {
    let samples = sample_sc(program, 0..60, RunConfig::uniform()).unwrap();
    sc_race_signatures(&samples, PairingPolicy::ByRole).unwrap()
}

/// Condition 3.4 holds for every catalog program on every conditioned
/// weak model and on *both* weak-hardware implementation styles (store
/// buffers and invalidation queues): race-free executions are SC, racy
/// executions' first partitions contain SC races, and the race-free
/// prefix always linearizes.
#[test]
fn condition_3_4_holds_across_catalog_and_models() {
    for entry in catalog::all() {
        let sigs = if entry.racy { sampled_sigs(&entry.program) } else { HashSet::new() };
        for hw in HwImpl::ALL {
            for model in MemoryModel::WEAK {
                let outcomes = check_condition_3_4_hw(
                    hw,
                    &entry.program,
                    model,
                    Fidelity::Conditioned,
                    0..3,
                    &sigs,
                    PairingPolicy::ByRole,
                )
                .unwrap();
                for o in &outcomes {
                    assert!(
                        o.holds(),
                        "{} on {model}/{hw} seed {}: Condition 3.4 violated: {o:?}",
                        entry.name,
                        o.seed
                    );
                    if !entry.racy {
                        assert!(
                            o.race_free,
                            "{} on {model}/{hw} seed {}: DRF program reported racy",
                            entry.name, o.seed
                        );
                    }
                }
            }
        }
    }
}

/// Race-free *programs* (per ground truth) never exhibit races on any
/// conditioned weak model, and their weak executions are always
/// explainable by SC — Theorem 3.5's practical content.
#[test]
fn drf_programs_appear_sequentially_consistent_on_weak_hardware() {
    for entry in catalog::all().into_iter().filter(|e| !e.racy) {
        for model in MemoryModel::WEAK {
            for seed in 0..4 {
                let mut sink = wmrd_trace::MultiSink::new(
                    wmrd_trace::TraceBuilder::new(entry.program.num_procs()),
                    wmrd_trace::OpRecorder::new(entry.program.num_procs()),
                );
                let mut sched = wmrd_sim::RandomWeakSched::new(seed, 0.3);
                wmrd_sim::run_weak(
                    &entry.program,
                    model,
                    Fidelity::Conditioned,
                    &mut sched,
                    &mut sink,
                    RunConfig::uniform(),
                )
                .unwrap();
                let (builder, recorder) = sink.into_inner();
                let report = PostMortem::new(&builder.finish()).analyze().unwrap();
                assert!(report.is_race_free(), "{} {model} seed {seed}", entry.name);
                assert!(
                    is_sequentially_consistent(&recorder.finish(), &entry.program.initial_memory()),
                    "{} {model} seed {seed}: weak execution not SC-explainable",
                    entry.name
                );
            }
        }
    }
}

/// The raw (Condition-3.4-violating) machines produce executions that
/// are race-free yet *not* sequentially consistent — the failure mode
/// the condition exists to exclude — on BOTH implementation styles.
/// (Ablation A2 in asserted form.)
#[test]
fn raw_hardware_breaks_the_guarantee() {
    // Store buffers go wrong on the writer side (the second data write
    // still buffered when its flag is observed); invalidation queues on
    // the reader side (a cached copy from round one never invalidated);
    // the raw pipeline on both, plus speculated synchronization. The
    // ping-pong workload exposes all three.
    for hw in HwImpl::ALL {
        let entry = catalog::ping_pong();
        let mut violation = false;
        for seed in 0..80 {
            let outcomes = check_condition_3_4_hw(
                hw,
                &entry.program,
                MemoryModel::Wo,
                Fidelity::Raw,
                [seed],
                &HashSet::new(),
                PairingPolicy::ByRole,
            )
            .unwrap();
            if outcomes[0].race_free && outcomes[0].part1_sc == Some(false) {
                violation = true;
                break;
            }
        }
        assert!(violation, "{hw}: expected a race-free-but-non-SC execution on raw hardware");
    }
}

/// Theorem 4.1 over random programs, weak models, and pairing policies.
#[test]
fn theorem_4_1_over_random_programs() {
    for seed in 0..12 {
        let cfg = generate::GenConfig::default().with_seed(seed);
        for program in [generate::locked(&cfg), generate::racy(&cfg)] {
            for model in [MemoryModel::Wo, MemoryModel::Drf1] {
                let mut sink = wmrd_trace::TraceBuilder::new(program.num_procs());
                let mut sched = wmrd_sim::RandomWeakSched::new(seed, 0.3);
                wmrd_sim::run_weak(
                    &program,
                    model,
                    Fidelity::Conditioned,
                    &mut sched,
                    &mut sink,
                    RunConfig::uniform(),
                )
                .unwrap();
                let trace = sink.finish();
                for policy in [PairingPolicy::ByRole, PairingPolicy::AllSync] {
                    let report = PostMortem::new(&trace).pairing(policy).analyze().unwrap();
                    assert!(check_theorem_4_1(&report), "seed {seed} {model} {policy}");
                }
            }
        }
    }
}

/// Theorem 4.2 with the exhaustive oracle on small enumerable programs.
#[test]
fn theorem_4_2_with_exhaustive_oracle() {
    for entry in [catalog::fig1a(), catalog::producer_consumer_racy(), catalog::counter_racy(2, 1)]
    {
        let result = enumerate_sc(&entry.program, &EnumConfig::default()).unwrap();
        let sigs = sc_race_signatures(&result.executions, PairingPolicy::ByRole).unwrap();
        assert!(!sigs.is_empty(), "{}: racy program must have SC races", entry.name);
        for model in MemoryModel::WEAK {
            for seed in 0..4 {
                let mut sink = wmrd_trace::TraceBuilder::new(entry.program.num_procs());
                let mut sched = wmrd_sim::RandomWeakSched::new(seed, 0.3);
                wmrd_sim::run_weak(
                    &entry.program,
                    model,
                    Fidelity::Conditioned,
                    &mut sched,
                    &mut sink,
                    RunConfig::uniform(),
                )
                .unwrap();
                let trace = sink.finish();
                let report = PostMortem::new(&trace).analyze().unwrap();
                let outcome = check_theorem_4_2(&trace, &report, &sigs);
                assert!(outcome.holds(), "{} {model} seed {seed}: {outcome:?}", entry.name);
            }
        }
    }
}

/// The DRF0-style pairing policy (AllSync) can only order *more* —
/// switching to it never introduces new data races.
#[test]
fn all_sync_pairing_is_monotone() {
    for seed in 0..10 {
        let cfg = generate::GenConfig {
            rogue_fraction: 0.5,
            ..generate::GenConfig::default().with_seed(seed)
        };
        let program = generate::racy(&cfg);
        let mut sink = wmrd_trace::TraceBuilder::new(program.num_procs());
        wmrd_sim::run_sc(
            &program,
            &mut wmrd_sim::RandomSched::new(seed),
            &mut sink,
            RunConfig::uniform(),
        )
        .unwrap();
        let trace = sink.finish();
        let by_role = PostMortem::new(&trace).pairing(PairingPolicy::ByRole).analyze().unwrap();
        let all_sync = PostMortem::new(&trace).pairing(PairingPolicy::AllSync).analyze().unwrap();
        assert!(
            all_sync.data_races().count() <= by_role.data_races().count(),
            "seed {seed}: AllSync produced more races than ByRole"
        );
    }
}
