//! End-to-end tests for `wmrd-capture`: real multithreaded Rust
//! workloads — `std::thread` workers on real atomics and mutexes —
//! captured into v2 traces and `WMRS` streams that flow unchanged
//! through the whole pipeline: post-mortem analysis, salvage,
//! predictive detection, daemon `SUBMIT`, and a live streaming
//! session. No `.wmrd` assembly or simulator is involved anywhere in
//! this file: every trace originates from an actual execution.

use std::collections::BTreeSet;

use wmrd_capture::workloads;
use wmrd_core::{
    detect_races, event_race_keys, HbGraph, PairingPolicy, PostMortem, RaceKey, SalvageAnalysis,
};
use wmrd_predict::{predict, PredictOrder};
use wmrd_serve::{Client, Endpoint, Reply, ServeConfig, Server, StreamMeta};
use wmrd_trace::{Metrics, ProcId, TraceSet};

/// hb1 data-race identities of one captured trace.
fn detected_keys(trace: &TraceSet) -> BTreeSet<RaceKey> {
    let hb = HbGraph::build(trace, PairingPolicy::ByRole).unwrap();
    event_race_keys(&detect_races(trace, &hb), trace)
}

#[test]
fn every_workload_captures_and_analyzes_across_a_seed_matrix() {
    for w in workloads::all() {
        for seed in [0, 1, 17] {
            let capture = w.capture(seed);
            let trace = capture.to_traceset();
            trace.validate().unwrap_or_else(|e| panic!("{} seed {seed}: {e}", w.name));
            assert_eq!(capture.stats().panics, 0, "{} seed {seed}", w.name);
            assert_eq!(trace.num_procs(), usize::from(w.threads), "{} seed {seed}", w.name);
            // The full post-mortem (not just the race detector) accepts
            // every captured trace.
            PostMortem::new(&trace)
                .pairing(PairingPolicy::ByRole)
                .analyze()
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", w.name));
        }
    }
}

#[test]
fn racy_workloads_reach_their_expected_keys_on_every_seed() {
    for w in workloads::all().iter().filter(|w| w.racy) {
        let expected = w.expected_race_keys();
        assert!(!expected.is_empty(), "{} declares no expected keys", w.name);
        for seed in [0, 3, 9, 42] {
            let trace = w.capture(seed).to_traceset();
            let detected = detected_keys(&trace);
            assert!(
                expected.is_subset(&detected),
                "{} seed {seed}: expected {expected:?} ⊄ detected {detected:?}",
                w.name
            );
        }
    }
}

#[test]
fn clean_workloads_are_race_free_under_hb1_and_wcp_prediction() {
    for w in workloads::all().iter().filter(|w| !w.racy) {
        for seed in [0, 3, 9] {
            let trace = w.capture(seed).to_traceset();
            let detected = detected_keys(&trace);
            assert!(detected.is_empty(), "{} seed {seed}: hb1 races {detected:?}", w.name);
            // The predictive order is a strict weakening of hb1 and
            // still finds nothing: the cleanliness is structural, not a
            // lucky schedule.
            let report = predict(&trace, w.name, PairingPolicy::ByRole, PredictOrder::Wcp).unwrap();
            assert!(
                report.is_race_free(),
                "{} seed {seed}: WCP predicted {:?}",
                w.name,
                report.keys
            );
        }
    }
}

/// Satellite regression: captured traces routinely contain threads with
/// *zero* synchronization events (lock-free spin readers). Analysis,
/// salvage, and prediction must accept them, and the per-processor
/// salvage boundary must stay aligned with processor ids.
#[test]
fn zero_sync_event_threads_analyze_salvage_and_predict() {
    let w = workloads::find("lazy-init-racy").unwrap();
    let capture = w.capture(7);
    let trace = capture.to_traceset();

    // Establish the precondition the regression is about.
    let sync_counts: Vec<usize> = (0..trace.num_procs())
        .map(|p| {
            trace
                .events()
                .filter(|e| e.id.proc == ProcId::new(p as u16) && e.as_sync().is_some())
                .count()
        })
        .collect();
    assert!(
        sync_counts.iter().filter(|&&c| c == 0).count() >= 2,
        "workload should have lock-free reader threads, got {sync_counts:?}"
    );

    PostMortem::new(&trace).pairing(PairingPolicy::ByRole).analyze().unwrap();
    predict(&trace, w.name, PairingPolicy::ByRole, PredictOrder::Wcp).unwrap();

    // A complete file reports a boundary for EVERY processor, including
    // the zero-sync ones.
    let bin = trace.to_binary();
    let a = SalvageAnalysis::run(&bin, PairingPolicy::ByRole, &Metrics::disabled()).unwrap();
    assert!(a.is_complete());
    for p in 0..trace.num_procs() {
        let boundary = a.boundary(ProcId::new(p as u16));
        assert!(boundary.is_some(), "proc {p} missing from the salvage boundary");
    }
    // A torn file still reports per-proc boundaries without panicking,
    // and never reports more events than the complete trace holds.
    for cut in [bin.len() - 9, bin.len() / 2] {
        if let Ok(torn) =
            SalvageAnalysis::run(&bin[..cut], PairingPolicy::ByRole, &Metrics::disabled())
        {
            assert!(!torn.is_complete());
            assert!(torn.salvage.events_recovered() <= trace.num_events());
        }
    }
}

#[test]
fn captured_traces_round_trip_through_a_live_daemon() {
    let server =
        Server::bind(&Endpoint::parse("127.0.0.1:0").unwrap(), ServeConfig::default()).unwrap();
    let endpoint = server.endpoint().clone();
    let daemon = std::thread::spawn(move || server.run().unwrap());

    let mut client = Client::connect(&endpoint).unwrap();

    // SUBMIT: the racy publication capture, as an event-level v2 trace.
    let publish = workloads::find("publish-racy").unwrap().capture(1);
    let reply = client.submit(&publish.to_traceset().to_binary()).unwrap();
    let Reply::Ok(payload) = reply else { panic!("submit refused: {reply:?}") };
    let ack = String::from_utf8_lossy(&payload);
    assert!(ack.contains("ingested"), "{ack}");

    // STREAM/FEED/CLOSE: the racy seqlock capture, operation-granular.
    let seqlock = workloads::find("seqlock-racy").unwrap().capture(2);
    let wmrs = seqlock.to_wmrs().unwrap();
    let meta = StreamMeta {
        program: Some("seqlock-racy".to_string()),
        model: Some("capture".to_string()),
        seed: Some(2),
    };
    client.stream_open("capture-e2e", &meta).unwrap();
    let mut race_acks = 0;
    for chunk in wmrs.chunks(48) {
        match client.stream_feed(chunk).unwrap() {
            Reply::Ok(payload) => {
                if !String::from_utf8_lossy(&payload).trim_end().ends_with("new=0") {
                    race_acks += 1;
                }
            }
            other => panic!("feed refused: {other:?}"),
        }
    }
    assert!(race_acks > 0, "the online detector saw the seqlock races live");
    let closed = client.stream_close().unwrap();
    assert!(matches!(closed, Reply::Ok(_)), "{closed:?}");

    client.shutdown().unwrap();
    let summary = daemon.join().unwrap();
    assert_eq!(summary.ingested, 2, "both deliveries reached the catalog");
}

/// The headline acceptance path: a known race in real multithreaded
/// Rust is detected from capture alone, and prediction over the same
/// single capture covers everything hb1 observed.
#[test]
fn known_racekey_is_detected_from_capture_alone() {
    let w = workloads::find("publish-racy").unwrap();
    let trace = w.capture(0).to_traceset();
    let detected = detected_keys(&trace);
    for key in w.expected_race_keys() {
        assert!(detected.contains(&key), "missing {key:?} in {detected:?}");
    }
    let report = predict(&trace, w.name, PairingPolicy::ByRole, PredictOrder::Wcp).unwrap();
    for key in &detected {
        assert!(report.covers(key), "prediction must cover observed key {key:?}");
    }
}
