//! Property-based tests (proptest) over the core data structures and
//! whole-pipeline invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use wmrd_catalog::journal::{self, JournalRecord, Provenance, RaceObservation};
use wmrd_catalog::{Catalog, Query};
use wmrd_core::{
    event_race_keys, PairingPolicy, PostMortem, RaceKey, SideKey, StreamDetector, VectorClock,
};
use wmrd_progs::generate;
use wmrd_sim::{run_sc, Fidelity, MemoryModel, RandomSched, RunConfig};
use wmrd_trace::AccessKind;
use wmrd_trace::{LocSet, Location, ProcId, StreamDecoder, StreamWriter, TraceBuilder, TraceSet};
use wmrd_verify::is_sequentially_consistent;

fn locs() -> impl Strategy<Value = Vec<u32>> {
    vec(0u32..512, 0..40)
}

/// Deterministically expands one integer into a race observation over
/// a small universe of locations and processors (small on purpose:
/// collisions across records exercise the dedup aggregates).
fn observation_from(x: u64) -> RaceObservation {
    let side = |s: u64| SideKey {
        proc: ProcId::new((s % 4) as u16),
        kind: if s & 4 != 0 { AccessKind::Write } else { AccessKind::Read },
        sync: s & 8 != 0,
    };
    RaceObservation {
        key: RaceKey::new(Location::new((x % 8) as u32), side(x >> 3), side(x >> 7)),
        first_partition: x & 1 != 0,
        // Bits 1-2 of the input pick the provenance so the generators
        // cover observed, predicted, and both (never empty).
        provenance: match (x >> 1) & 3 {
            0 => Provenance::OBSERVED,
            1 => Provenance::PREDICTED,
            _ => Provenance::OBSERVED | Provenance::PREDICTED,
        },
    }
}

/// Deterministically expands seeds into journal records with unique
/// digests — the catalog's content-address invariant; identical
/// digests are dedup, covered separately.
fn records_from(seeds: &[u64]) -> Vec<JournalRecord> {
    seeds
        .iter()
        .enumerate()
        .map(|(i, &s)| JournalRecord {
            digest: format!("{i:016x}"),
            program: (s & 1 != 0).then(|| format!("prog-{}", s % 3)),
            model: Some(["WO", "RCsc", "SC"][(s % 3) as usize].to_string()),
            seed: Some(s),
            events: (s % 100) + 1,
            races: sorted_races(
                (0..s % 5)
                    .map(|j| observation_from(s.wrapping_mul(2_654_435_761).wrapping_add(j * 97)))
                    .collect(),
            ),
            amend: false,
        })
        .collect()
}

/// Restores the documented `JournalRecord.races` invariant (sorted by
/// key, deduplicated) over generator output.
fn sorted_races(mut races: Vec<RaceObservation>) -> Vec<RaceObservation> {
    races.sort_by(|a, b| a.key.cmp(&b.key));
    races.dedup_by(|a, b| a.key == b.key);
    races
}

proptest! {
    /// LocSet agrees with a HashSet model on membership, size, union and
    /// intersection.
    #[test]
    fn locset_models_a_set(a in locs(), b in locs()) {
        use std::collections::HashSet;
        let sa: LocSet = a.iter().map(|&l| Location::new(l)).collect();
        let sb: LocSet = b.iter().map(|&l| Location::new(l)).collect();
        let ha: HashSet<u32> = a.iter().copied().collect();
        let hb: HashSet<u32> = b.iter().copied().collect();

        prop_assert_eq!(sa.len(), ha.len());
        for &l in &a {
            prop_assert!(sa.contains(Location::new(l)));
        }
        prop_assert_eq!(sa.intersects(&sb), !ha.is_disjoint(&hb));
        let union: HashSet<u32> = sa.union(&sb).iter().map(|l| l.addr()).collect();
        prop_assert_eq!(&union, &ha.union(&hb).copied().collect::<HashSet<_>>());
        let inter: HashSet<u32> = sa.intersection(&sb).iter().map(|l| l.addr()).collect();
        prop_assert_eq!(&inter, &ha.intersection(&hb).copied().collect::<HashSet<_>>());
        prop_assert_eq!(sa.is_subset(&sb), ha.is_subset(&hb));
    }

    /// LocSet iteration is strictly ascending and deduplicated.
    #[test]
    fn locset_iterates_sorted(a in locs()) {
        let s: LocSet = a.iter().map(|&l| Location::new(l)).collect();
        let out: Vec<u32> = s.iter().map(|l| l.addr()).collect();
        prop_assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    /// Vector clock join is commutative, associative, idempotent, and
    /// monotone w.r.t. `le`.
    #[test]
    fn vector_clock_join_laws(
        a in vec(0u64..50, 0..6),
        b in vec(0u64..50, 0..6),
        c in vec(0u64..50, 0..6),
    ) {
        let mk = |v: &[u64]| {
            let mut vc = VectorClock::new();
            for (i, &x) in v.iter().enumerate() {
                vc.set(ProcId::new(i as u16), x);
            }
            vc
        };
        let (va, vb, vc_) = (mk(&a), mk(&b), mk(&c));

        let mut ab = va.clone();
        ab.join(&vb);
        let mut ba = vb.clone();
        ba.join(&va);
        prop_assert_eq!(&ab, &ba, "commutative");

        let mut ab_c = ab.clone();
        ab_c.join(&vc_);
        let mut bc = vb.clone();
        bc.join(&vc_);
        let mut a_bc = va.clone();
        a_bc.join(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "associative");

        let mut aa = va.clone();
        aa.join(&va);
        prop_assert_eq!(&aa, &va, "idempotent");

        prop_assert!(va.le(&ab) && vb.le(&ab), "join is an upper bound");
    }

    /// Every SC-machine execution linearizes (the linearizer accepts what
    /// the SC machine produced), for random programs and schedules.
    #[test]
    fn sc_executions_always_linearize(prog_seed in 0u64..500, sched_seed in 0u64..100) {
        let cfg = generate::GenConfig {
            procs: 3,
            shared_locations: 4,
            sections_per_proc: 2,
            ops_per_section: 4,
            rogue_fraction: 0.6,
            seed: prog_seed,
        };
        let program = generate::racy(&cfg);
        let mut sink = wmrd_trace::OpRecorder::new(program.num_procs());
        run_sc(&program, &mut RandomSched::new(sched_seed), &mut sink, RunConfig::uniform())
            .unwrap();
        prop_assert!(is_sequentially_consistent(
            &sink.finish(),
            &program.initial_memory()
        ));
    }

    /// Detected races are normalized (a < b), involve distinct
    /// processors, and race locations are genuinely accessed by both
    /// sides.
    #[test]
    fn race_reports_are_well_formed(prog_seed in 0u64..300, sched_seed in 0u64..50) {
        let cfg = generate::GenConfig {
            rogue_fraction: 0.7,
            ..generate::GenConfig::default().with_seed(prog_seed)
        };
        let program = generate::racy(&cfg);
        let mut sink = TraceBuilder::new(program.num_procs());
        run_sc(&program, &mut RandomSched::new(sched_seed), &mut sink, RunConfig::uniform())
            .unwrap();
        let trace = sink.finish();
        let report = PostMortem::new(&trace).analyze().unwrap();
        for race in &report.races {
            prop_assert!(race.a < race.b);
            prop_assert_ne!(race.a.proc, race.b.proc);
            prop_assert!(!race.locations.is_empty());
            let (ea, eb) = (trace.event(race.a).unwrap(), trace.event(race.b).unwrap());
            for loc in &race.locations {
                let a_touches = ea.read_set().contains(loc) || ea.write_set().contains(loc);
                let b_touches = eb.read_set().contains(loc) || eb.write_set().contains(loc);
                prop_assert!(a_touches && b_touches);
                prop_assert!(ea.write_set().contains(loc) || eb.write_set().contains(loc));
            }
        }
        // Every race index referenced by partitions exists; first indices
        // are valid.
        for part in report.partitions.partitions() {
            for &i in &part.races {
                prop_assert!(i < report.races.len());
            }
        }
        for &i in report.partitions.first_indices() {
            prop_assert!(i < report.partitions.len());
        }
    }

    /// Lock-disciplined random programs are race-free under every
    /// scheduler seed (the generator's guarantee).
    #[test]
    fn locked_generator_is_race_free(prog_seed in 0u64..200, sched_seed in 0u64..30) {
        let cfg = generate::GenConfig::default().with_seed(prog_seed);
        let program = generate::locked(&cfg);
        let mut sink = TraceBuilder::new(program.num_procs());
        run_sc(&program, &mut RandomSched::new(sched_seed), &mut sink, RunConfig::uniform())
            .unwrap();
        let report = PostMortem::new(&sink.finish()).analyze().unwrap();
        prop_assert!(report.is_race_free());
    }

    /// Trace binary encoding roundtrips for traces of arbitrary random
    /// executions.
    #[test]
    fn trace_binary_roundtrip(prog_seed in 0u64..200, sched_seed in 0u64..20) {
        let cfg = generate::GenConfig {
            rogue_fraction: 0.4,
            ..generate::GenConfig::default().with_seed(prog_seed)
        };
        let program = generate::racy(&cfg);
        let mut sink = TraceBuilder::new(program.num_procs());
        run_sc(&program, &mut RandomSched::new(sched_seed), &mut sink, RunConfig::uniform())
            .unwrap();
        let mut trace = sink.finish();
        trace.meta.program = Some(program.name().to_string());
        trace.meta.seed = Some(sched_seed);
        let bin = trace.to_binary();
        prop_assert_eq!(TraceSet::from_binary(&bin).unwrap(), trace.clone());
        let json = trace.to_json().unwrap();
        prop_assert_eq!(TraceSet::from_json(&json).unwrap(), trace);
    }

    /// Analysis results are schedule-deterministic: analyzing the same
    /// trace twice yields identical reports.
    #[test]
    fn analysis_is_deterministic(prog_seed in 0u64..100) {
        let cfg = generate::GenConfig {
            rogue_fraction: 0.5,
            ..generate::GenConfig::default().with_seed(prog_seed)
        };
        let program = generate::racy(&cfg);
        let mut sink = TraceBuilder::new(program.num_procs());
        run_sc(&program, &mut RandomSched::new(1), &mut sink, RunConfig::uniform()).unwrap();
        let trace = sink.finish();
        let r1 = PostMortem::new(&trace).analyze().unwrap();
        let r2 = PostMortem::new(&trace).analyze().unwrap();
        prop_assert_eq!(r1, r2);
    }

    /// Weak executions of lock-disciplined programs stay race-free and
    /// reach the same settled memory as some SC execution of the same
    /// program (Condition 3.4(1) at the outcome level).
    #[test]
    fn weak_locked_runs_match_sc_outcomes(prog_seed in 0u64..60, sched_seed in 0u64..10) {
        let cfg = generate::GenConfig {
            procs: 2,
            sections_per_proc: 2,
            ops_per_section: 3,
            ..generate::GenConfig::default().with_seed(prog_seed)
        };
        let program = generate::locked(&cfg);
        let mut sink = wmrd_trace::OpRecorder::new(program.num_procs());
        let mut sched = wmrd_sim::RandomWeakSched::new(sched_seed, 0.4);
        wmrd_sim::run_weak(
            &program,
            MemoryModel::Wo,
            Fidelity::Conditioned,
            &mut sched,
            &mut sink,
            RunConfig::uniform(),
        )
        .unwrap();
        prop_assert!(is_sequentially_consistent(
            &sink.finish(),
            &program.initial_memory()
        ));
    }

    /// Every prefix of a v2 binary encoding decodes to either the exact
    /// original (the full length) or a typed error whose offset lies
    /// within the input — never a panic, never a silently wrong trace.
    /// The salvage decoder recovers, per processor, an exact event
    /// prefix of the original from every cut.
    #[test]
    fn every_v2_prefix_decodes_or_errors_sanely(prog_seed in 0u64..60, sched_seed in 0u64..8) {
        let cfg = generate::GenConfig {
            procs: 2,
            sections_per_proc: 1,
            ops_per_section: 3,
            rogue_fraction: 0.5,
            ..generate::GenConfig::default().with_seed(prog_seed)
        };
        let program = generate::racy(&cfg);
        let mut sink = TraceBuilder::new(program.num_procs());
        run_sc(&program, &mut RandomSched::new(sched_seed), &mut sink, RunConfig::uniform())
            .unwrap();
        let trace = sink.finish();
        let bin = trace.to_binary();

        for len in 0..=bin.len() {
            match TraceSet::from_binary(&bin[..len]) {
                Ok(t) => {
                    prop_assert_eq!(len, bin.len(), "only the whole file decodes strictly");
                    prop_assert_eq!(&t, &trace);
                }
                Err(wmrd_trace::TraceError::Decode(e)) => {
                    prop_assert!(e.offset <= len, "offset {} beyond the {len}-byte input", e.offset);
                }
                Err(e) => prop_assert!(false, "untyped error at {}: {}", len, e),
            }
            let Ok(s) = TraceSet::salvage_binary(&bin[..len]) else {
                // Only a cut inside the 6-byte magic/version preamble is
                // unsalvageable.
                prop_assert!(len < 6, "salvage refused a {len}-byte prefix");
                continue;
            };
            prop_assert_eq!(s.complete, len == bin.len());
            prop_assert!(s.bytes_used <= len);
            for (i, p) in s.trace.processors().iter().enumerate() {
                let got = p.events();
                let want = trace.processors()[i].events();
                prop_assert!(got.len() <= want.len());
                prop_assert_eq!(got, &want[..got.len()], "P{} salvage is an event prefix", i);
            }
        }
    }

    /// Single-bit corruption of a v2 encoding is always either detected
    /// (typed error) or harmless (exact original back) — the CRC never
    /// lets a flipped trace through silently. Salvage likewise never
    /// panics, and anything it recovers is a valid trace.
    #[test]
    fn v2_bit_flips_are_detected_not_misread(
        prog_seed in 0u64..60,
        byte_pick in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let cfg = generate::GenConfig {
            procs: 2,
            sections_per_proc: 1,
            ops_per_section: 3,
            rogue_fraction: 0.5,
            ..generate::GenConfig::default().with_seed(prog_seed)
        };
        let program = generate::racy(&cfg);
        let mut sink = TraceBuilder::new(program.num_procs());
        run_sc(&program, &mut RandomSched::new(0), &mut sink, RunConfig::uniform()).unwrap();
        let trace = sink.finish();
        let mut bin = trace.to_binary();
        let offset = byte_pick % bin.len();
        bin[offset] ^= 1 << bit;

        match TraceSet::from_binary(&bin) {
            Ok(t) => prop_assert_eq!(&t, &trace, "an accepted decode must be bit-exact"),
            Err(wmrd_trace::TraceError::Decode(e)) => prop_assert!(e.offset <= bin.len()),
            Err(wmrd_trace::TraceError::Malformed(_)) => {}
            Err(e) => prop_assert!(false, "untyped error: {}", e),
        }
        if let Ok(s) = TraceSet::salvage_binary(&bin) {
            prop_assert!(s.trace.validate().is_ok(), "salvage must return a valid trace");
            prop_assert!(s.bytes_used <= s.bytes_total);
        }
    }

    /// `FEED` chunking invariance: however a `WMRS` byte stream is cut
    /// into chunks — including cuts inside the header and mid-record —
    /// the decoded record sequence and the online detector's race-key
    /// set are identical to the unchunked run, and the online keys
    /// equal the post-mortem keys of the reassembled trace. This is
    /// the property that makes the daemon's chunk size a pure
    /// transport knob.
    #[test]
    fn stream_chunking_never_changes_the_race_set(
        prog_seed in 0u64..40,
        sched_seed in 0u64..6,
        cuts in vec(1usize..97, 0..12),
    ) {
        let cfg = generate::GenConfig {
            procs: 3,
            shared_locations: 3,
            sections_per_proc: 2,
            ops_per_section: 3,
            rogue_fraction: 0.6,
            seed: prog_seed,
        };
        let program = generate::racy(&cfg);
        let mut writer = StreamWriter::new(Vec::new(), program.num_procs());
        let mut sched = wmrd_sim::RandomWeakSched::new(sched_seed, 0.4);
        wmrd_sim::run_weak(
            &program,
            MemoryModel::Wo,
            Fidelity::Conditioned,
            &mut sched,
            &mut writer,
            RunConfig::uniform(),
        )
        .unwrap();
        let bytes = writer.finish().unwrap();

        // Unchunked reference: one push of the whole stream.
        let mut reference = StreamDecoder::new();
        let mut all = Vec::new();
        reference.push(&bytes, &mut all).unwrap();
        reference.finish().unwrap();
        let mut oneshot = StreamDetector::new(program.num_procs(), PairingPolicy::ByRole);
        oneshot.feed(&all);

        // Chunked: cut sizes cycle through the generated list.
        let mut decoder = StreamDecoder::new();
        let mut detector = StreamDetector::new(program.num_procs(), PairingPolicy::ByRole);
        let mut builder = TraceBuilder::new(program.num_procs());
        let mut chunked = Vec::new();
        let (mut pos, mut turn) = (0usize, 0usize);
        while pos < bytes.len() {
            let step = if cuts.is_empty() { bytes.len() } else { cuts[turn % cuts.len()] };
            turn += 1;
            let end = (pos + step).min(bytes.len());
            let mut records = Vec::new();
            decoder.push(&bytes[pos..end], &mut records).unwrap();
            for r in &records {
                r.apply(&mut builder);
            }
            detector.feed(&records);
            chunked.extend(records);
            pos = end;
        }
        decoder.finish().unwrap();

        prop_assert_eq!(&chunked, &all, "chunk boundaries changed the decoded records");
        prop_assert_eq!(
            detector.race_keys(),
            oneshot.race_keys(),
            "chunk boundaries changed the online race set"
        );
        let trace = builder.finish();
        let report =
            PostMortem::new(&trace).pairing(PairingPolicy::ByRole).analyze().unwrap();
        prop_assert_eq!(
            detector.race_keys(),
            &event_race_keys(&report.races, &trace),
            "online and post-mortem race keys diverged"
        );
    }

    /// The pairing policy only ever shrinks the race set monotonically:
    /// AllSync ⊆ ByRole for data races.
    #[test]
    fn pairing_monotonicity(prog_seed in 0u64..100) {
        let cfg = generate::GenConfig {
            rogue_fraction: 0.5,
            ..generate::GenConfig::default().with_seed(prog_seed)
        };
        let program = generate::racy(&cfg);
        let mut sink = TraceBuilder::new(program.num_procs());
        run_sc(&program, &mut RandomSched::new(2), &mut sink, RunConfig::uniform()).unwrap();
        let trace = sink.finish();
        let by_role = PostMortem::new(&trace).pairing(PairingPolicy::ByRole).analyze().unwrap();
        let all_sync = PostMortem::new(&trace).pairing(PairingPolicy::AllSync).analyze().unwrap();
        prop_assert!(all_sync.data_races().count() <= by_role.data_races().count());
    }

    /// Catalog journal encoding round-trips exactly, and a clean file
    /// decodes as complete with every byte accounted for.
    #[test]
    fn catalog_journal_roundtrip(seeds in vec(0u64..1_000_000, 0..8)) {
        let records = records_from(&seeds);
        let bytes = journal::encode(&records).unwrap();
        let (back, salvage) = journal::decode(&bytes).unwrap();
        prop_assert_eq!(&back, &records);
        prop_assert!(salvage.complete);
        prop_assert_eq!(salvage.records, records.len());
        prop_assert_eq!(salvage.bytes_used, bytes.len());
        prop_assert!(salvage.failure.is_none());
    }

    /// Truncating a journal at *any* byte either fails with a typed
    /// header error (cut inside the 10-byte header) or salvages an
    /// exact record prefix — never a panic, never a reordered or
    /// invented record. This is the kill-9 contract: every record
    /// whose append completed survives reopen.
    #[test]
    fn catalog_journal_truncation_salvages_a_prefix(
        seeds in vec(0u64..1_000_000, 0..8),
        cut_pick in 0usize..100_000,
    ) {
        let records = records_from(&seeds);
        let bytes = journal::encode(&records).unwrap();
        let cut = cut_pick % (bytes.len() + 1);
        match journal::decode(&bytes[..cut]) {
            Err(wmrd_catalog::CatalogError::Corrupt { offset, .. }) => {
                prop_assert!(cut < wmrd_catalog::journal::HEADER_BYTES);
                prop_assert!(offset <= cut);
            }
            Err(e) => prop_assert!(false, "untyped journal error at cut {}: {}", cut, e),
            Ok((recovered, salvage)) => {
                prop_assert!(recovered.len() <= records.len());
                prop_assert_eq!(&recovered[..], &records[..recovered.len()]);
                prop_assert_eq!(salvage.complete, cut == bytes.len());
                prop_assert!(salvage.bytes_used <= cut);
                prop_assert_eq!(salvage.bytes_total, cut);
            }
        }
    }

    /// A single bit flip anywhere in a journal is either fatal (header
    /// damage) or salvaged: the recovered records are an exact prefix
    /// of the originals. CRC-32 catches every single-bit flip, so a
    /// flipped record can never be silently misread.
    #[test]
    fn catalog_journal_bit_flips_never_corrupt_records(
        seeds in vec(0u64..1_000_000, 0..8),
        byte_pick in 0usize..100_000,
        bit in 0u8..8,
    ) {
        let records = records_from(&seeds);
        let mut bytes = journal::encode(&records).unwrap();
        let offset = byte_pick % bytes.len();
        bytes[offset] ^= 1 << bit;
        match journal::decode(&bytes) {
            Err(wmrd_catalog::CatalogError::Corrupt { .. }) => {
                prop_assert!(offset < wmrd_catalog::journal::HEADER_BYTES);
            }
            Err(e) => prop_assert!(false, "untyped journal error: {}", e),
            Ok((recovered, salvage)) => {
                prop_assert!(recovered.len() <= records.len());
                prop_assert_eq!(&recovered[..], &records[..recovered.len()]);
                prop_assert!(salvage.bytes_used <= bytes.len());
            }
        }
    }

    /// Catalog aggregation is ingest-order independent: feeding the
    /// same records forward and reversed yields byte-identical `races`
    /// and `traces` query output (only `since=` may depend on order —
    /// it asks about order by design). This is the invariant that lets
    /// the daemon ingest from concurrent submitters deterministically.
    #[test]
    fn catalog_race_table_is_ingest_order_independent(seeds in vec(0u64..1_000_000, 0..10)) {
        let records = records_from(&seeds);
        let mut forward = Catalog::in_memory();
        for r in &records {
            forward.ingest(r).unwrap();
        }
        let mut reversed = Catalog::in_memory();
        for r in records.iter().rev() {
            reversed.ingest(r).unwrap();
        }
        prop_assert_eq!(
            forward.query(&Query::Races).unwrap(),
            reversed.query(&Query::Races).unwrap()
        );
        prop_assert_eq!(
            forward.query(&Query::Traces).unwrap(),
            reversed.query(&Query::Traces).unwrap()
        );
        prop_assert_eq!(forward.race_count(), reversed.race_count());
        prop_assert_eq!(forward.trace_count(), reversed.trace_count());

        // Re-ingesting every record is a no-op: content addressing
        // deduplicates by digest.
        let before = forward.query(&Query::Races).unwrap();
        for r in &records {
            let outcome = forward.ingest(r).unwrap();
            prop_assert!(outcome.duplicate);
            prop_assert_eq!(outcome.new_races, 0);
        }
        prop_assert_eq!(forward.query(&Query::Races).unwrap(), before);
    }

    /// Amendment records (the `PREDICT` verb's journal form) round-trip
    /// through the journal encoding, commute with each other, and are
    /// idempotent: re-applying an amendment is a duplicate that changes
    /// nothing. Text and JSON renderings must agree on the invariance.
    #[test]
    fn catalog_amendments_commute_and_roundtrip(seeds in vec(0u64..1_000_000, 1..8)) {
        let records = records_from(&seeds);
        let amendments: Vec<JournalRecord> = records
            .iter()
            .zip(&seeds)
            .map(|(r, &s)| JournalRecord {
                races: sorted_races(
                    (0..s % 4)
                        .map(|j| {
                            let mut o = observation_from(
                                s.wrapping_mul(1_640_531_527).wrapping_add(j * 131),
                            );
                            o.provenance = Provenance::PREDICTED;
                            o.first_partition = false;
                            o
                        })
                        .collect(),
                ),
                amend: true,
                ..r.clone()
            })
            .collect();

        // Journal round-trip preserves the amend flag and provenance.
        let all: Vec<JournalRecord> =
            records.iter().chain(&amendments).cloned().collect();
        let bytes = journal::encode(&all).unwrap();
        let (back, salvage) = journal::decode(&bytes).unwrap();
        prop_assert_eq!(&back, &all);
        prop_assert!(salvage.complete);

        // Amendments commute: forward vs reversed amendment order
        // yields byte-identical text and JSON renderings.
        let mut forward = Catalog::in_memory();
        let mut reversed = Catalog::in_memory();
        for r in &records {
            forward.ingest(r).unwrap();
            reversed.ingest(r).unwrap();
        }
        for a in &amendments {
            forward.ingest(a).unwrap();
        }
        for a in amendments.iter().rev() {
            reversed.ingest(a).unwrap();
        }
        for q in [Query::Races, Query::Traces] {
            prop_assert_eq!(forward.query(&q).unwrap(), reversed.query(&q).unwrap());
            prop_assert_eq!(
                forward.query_json(&q).unwrap(),
                reversed.query_json(&q).unwrap()
            );
        }

        // Idempotence: re-amending adds no knowledge and is reported
        // as a duplicate.
        let before = forward.query(&Query::Races).unwrap();
        for a in &amendments {
            let outcome = forward.ingest(a).unwrap();
            prop_assert!(outcome.duplicate || a.races.is_empty());
            prop_assert_eq!(outcome.new_races, 0);
        }
        prop_assert_eq!(forward.query(&Query::Races).unwrap(), before);
    }
}

// --- Out-of-order pipeline: Condition 3.4 in property form ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Condition 3.4 for the speculative pipeline, property form:
    /// random *locked* (data-race-free) programs run through the
    /// conditioned OoO backend always linearize — out-of-order load
    /// completion, store forwarding, and renaming never escape the SC
    /// envelope when the program is properly synchronized.
    #[test]
    fn ooo_locked_runs_match_sc_outcomes(prog_seed in 0u64..60, sched_seed in 0u64..10) {
        let cfg = generate::GenConfig {
            procs: 2,
            sections_per_proc: 2,
            ops_per_section: 3,
            ..generate::GenConfig::default().with_seed(prog_seed)
        };
        let program = generate::locked(&cfg);
        let mut sink = wmrd_trace::OpRecorder::new(program.num_procs());
        let mut sched = wmrd_sim::RandomWeakSched::new(sched_seed, 0.4);
        wmrd_sim::run_weak_hw(
            wmrd_sim::HwImpl::Ooo,
            &program,
            MemoryModel::Wo,
            Fidelity::Conditioned,
            &mut sched,
            &mut sink,
            RunConfig::uniform(),
        )
        .unwrap();
        prop_assert!(is_sequentially_consistent(
            &sink.finish(),
            &program.initial_memory()
        ));
    }

    /// The racy half of the same property: random programs *with*
    /// races still satisfy Condition 3.4 on the conditioned pipeline —
    /// racy executions' first partitions contain races the SC
    /// enumeration also exhibits, and the race-free prefix linearizes.
    /// Reuses the verify crate's full decision procedure.
    #[test]
    fn ooo_random_programs_satisfy_condition_3_4(prog_seed in 0u64..16) {
        use std::collections::HashSet;
        use wmrd_core::PairingPolicy;
        use wmrd_verify::theorems::{check_condition_3_4_hw, sc_race_signatures};
        use wmrd_verify::{enumerate_sc, EnumConfig};

        let cfg = generate::GenConfig {
            procs: 2,
            sections_per_proc: 1,
            ops_per_section: 3,
            rogue_fraction: 0.6,
            ..generate::GenConfig::default().with_seed(prog_seed)
        };
        let program = generate::racy(&cfg);
        let sc = enumerate_sc(&program, &EnumConfig::default()).unwrap();
        let sigs: HashSet<_> =
            sc_race_signatures(&sc.executions, PairingPolicy::ByRole).unwrap();
        let outcomes = check_condition_3_4_hw(
            wmrd_sim::HwImpl::Ooo,
            &program,
            MemoryModel::Wo,
            Fidelity::Conditioned,
            0..4,
            &sigs,
            PairingPolicy::ByRole,
        )
        .unwrap();
        for o in &outcomes {
            prop_assert!(o.holds(), "seed {}: Condition 3.4 violated on OoO: {o:?}", o.seed);
        }
    }
}

// --- StreamWriter flush-on-drop: the salvage contract for panicking
// --- workloads (capture PR satellite).

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dropping a `StreamWriter` without `finish` must leave every
    /// committed record recoverable: the documented flush-on-drop
    /// guarantee. We write a random prefix of a run's records, drop the
    /// writer mid-stream, and check `salvage_stream` recovers exactly
    /// the committed prefix with identical analysis results.
    #[test]
    fn dropped_stream_writer_salvages_committed_prefix(
        prog_seed in 0u64..40,
        sched_seed in 0u64..6,
    ) {
        let cfg = generate::GenConfig {
            procs: 3,
            shared_locations: 3,
            sections_per_proc: 2,
            ops_per_section: 3,
            rogue_fraction: 0.6,
            seed: prog_seed,
        };
        let program = generate::racy(&cfg);

        // Reference: full run through a finished writer.
        let mut writer = StreamWriter::new(Vec::new(), program.num_procs());
        let mut sched = wmrd_sim::RandomWeakSched::new(sched_seed, 0.4);
        wmrd_sim::run_weak(
            &program,
            MemoryModel::Wo,
            Fidelity::Conditioned,
            &mut sched,
            &mut writer,
            RunConfig::uniform(),
        )
        .unwrap();
        let full_records = writer.records();
        let bytes = writer.finish().unwrap();

        // Abandoned: same bytes, writer dropped instead of finished.
        // The shared buffer outlives the writer so we can inspect what
        // the drop left behind.
        let committed = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        {
            let mut writer =
                StreamWriter::new(ArcSink(committed.clone()), program.num_procs());
            let mut sched = wmrd_sim::RandomWeakSched::new(sched_seed, 0.4);
            wmrd_sim::run_weak(
                &program,
                MemoryModel::Wo,
                Fidelity::Conditioned,
                &mut sched,
                &mut writer,
                RunConfig::uniform(),
            )
            .unwrap();
            // No finish(): the writer is dropped here.
        }
        let salvaged_bytes = committed.lock().unwrap().clone();
        prop_assert_eq!(&salvaged_bytes, &bytes, "drop lost committed bytes");

        let salvage = wmrd_trace::salvage_stream(salvaged_bytes.as_slice()).unwrap();
        prop_assert!(salvage.complete, "fully committed stream salvages cleanly");
        prop_assert_eq!(salvage.records, full_records);
    }

    /// A torn tail — the stream cut mid-record, as when a process dies
    /// inside a `write` — salvages every record before the cut and
    /// reports the byte boundary of the committed prefix.
    #[test]
    fn torn_stream_tail_salvages_whole_records(
        prog_seed in 0u64..40,
        sched_seed in 0u64..6,
        cut_back in 1usize..30,
    ) {
        let cfg = generate::GenConfig {
            procs: 3,
            shared_locations: 3,
            sections_per_proc: 2,
            ops_per_section: 3,
            rogue_fraction: 0.6,
            seed: prog_seed,
        };
        let program = generate::racy(&cfg);
        let mut writer = StreamWriter::new(Vec::new(), program.num_procs());
        let mut sched = wmrd_sim::RandomWeakSched::new(sched_seed, 0.4);
        wmrd_sim::run_weak(
            &program,
            MemoryModel::Wo,
            Fidelity::Conditioned,
            &mut sched,
            &mut writer,
            RunConfig::uniform(),
        )
        .unwrap();
        let total = writer.records();
        let bytes = writer.finish().unwrap();
        prop_assume!(bytes.len() > 6 + cut_back);

        let torn = &bytes[..bytes.len() - cut_back];
        let salvage = wmrd_trace::salvage_stream(torn).unwrap();
        prop_assert!(salvage.records < total || salvage.complete);
        prop_assert!(salvage.bytes_used <= torn.len());
        // Replaying the salvaged prefix byte-for-byte re-salvages to the
        // same record count: the boundary is stable.
        let again = wmrd_trace::salvage_stream(&torn[..salvage.bytes_used]).unwrap();
        prop_assert_eq!(again.records, salvage.records);
    }
}

/// A `Write` impl backed by a shared buffer, so bytes survive the
/// writer being dropped (standing in for an OS file during a panic).
struct ArcSink(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl std::io::Write for ArcSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A workload that panics mid-capture still yields every record it
/// committed before the panic — exercised end-to-end through a real
/// unwind, not a simulated drop.
#[test]
fn panicking_writer_thread_leaves_salvageable_stream() {
    let committed = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
    let sink = ArcSink(committed.clone());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut writer = StreamWriter::new(sink, 2);
        use wmrd_trace::TraceSink;
        writer.data_access(
            ProcId::new(0),
            Location::new(0),
            AccessKind::Write,
            wmrd_trace::Value::new(7),
            None,
        );
        writer.sync_access(
            ProcId::new(1),
            Location::new(1),
            AccessKind::Write,
            wmrd_trace::SyncRole::Release,
            wmrd_trace::Value::new(1),
            None,
        );
        panic!("workload died");
        // `writer` is dropped by the unwind; flush-on-drop commits.
    }));
    assert!(result.is_err());
    let bytes = committed.lock().unwrap().clone();
    let salvage = wmrd_trace::salvage_stream(bytes.as_slice()).unwrap();
    assert!(salvage.complete);
    assert_eq!(salvage.records, 2);
    let trace = salvage.trace;
    // The stream header carries no processor count: the salvaged trace
    // has exactly the processors whose records were committed.
    assert_eq!(trace.num_procs(), 2);
    assert!(trace.validate().is_ok());
}

// --- Assembly writer: parse ∘ write == id (fence-repair satellite) ---

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The `.wmrd` assembly layer is a faithful codec: for random
    /// generated programs — locked and racy alike — writing the
    /// program as assembly and parsing it back is the identity, and
    /// the same holds after the fence synthesizer has edited the
    /// program (inserted `fence`s, strengthened `ld`/`st` to
    /// `ld.acq`/`st.rel`, remapped branch targets). This is what makes
    /// `wmrd lint --repair out.wmrd` trustworthy: the file on disk IS
    /// the verified program.
    #[test]
    fn asm_write_parse_round_trips_generated_and_repaired_programs(
        prog_seed in 0u64..120,
        racy in any::<bool>(),
    ) {
        let cfg = generate::GenConfig {
            procs: 3,
            sections_per_proc: 2,
            ops_per_section: 3,
            ..generate::GenConfig::default().with_seed(prog_seed)
        };
        let program = if racy { generate::racy(&cfg) } else { generate::locked(&cfg) };
        let text = wmrd_sim::write_asm(&program);
        let again = wmrd_sim::parse_asm(&text).unwrap();
        prop_assert_eq!(&program, &again, "parse(write_asm(p)) == p:\n{}", text);

        let report = wmrd_lint::analyze(&program);
        let rep = wmrd_lint::repair(&program, &report);
        let text = wmrd_sim::write_asm(&rep.repaired);
        let again = wmrd_sim::parse_asm(&text).unwrap();
        prop_assert_eq!(&rep.repaired, &again, "repaired round-trip:\n{}", text);
    }
}
