//! Differential validation of the out-of-order pipeline backend.
//!
//! `OooMachine` is the third weak-hardware implementation style, and the
//! most aggressive: loads complete out of program order, stores forward
//! to younger loads, and the reorder buffer retires in order. These
//! tests pin it against the two existing backends and against the
//! verify crate's bounded weak enumeration:
//!
//! * every catalog entry runs on all three backends over a seed matrix,
//!   and the race verdicts agree with the catalog's ground truth;
//! * the race identities the conditioned OoO pipeline reaches on small
//!   entries lie inside the union the store-buffer enumeration admits
//!   across the weak models — speculation widens *scheduling*, not the
//!   set of racy access pairs;
//! * fully-fenced programs, and properly synchronized programs under
//!   `MemoryModel::Sc`, produce identical final memory on all three
//!   backends — when nothing may reorder, the pipeline is invisible.

use std::collections::BTreeSet;

use wmrd_core::{event_race_keys, PostMortem, RaceKey};
use wmrd_progs::catalog;
use wmrd_sim::{
    run_sc, run_weak_hw, Addr, Fidelity, HwImpl, Instr, MemoryModel, Program, RandomSched,
    RandomWeakSched, Reg, RunConfig,
};
use wmrd_trace::{Location, NullSink, TraceBuilder, TraceSet, Value};
use wmrd_verify::{enumerate_weak, EnumConfig};

fn weak_trace(program: &Program, hw: HwImpl, model: MemoryModel, seed: u64) -> TraceSet {
    let mut sched = RandomWeakSched::new(seed, 0.3);
    let mut sink = TraceBuilder::new(program.num_procs());
    run_weak_hw(
        hw,
        program,
        model,
        Fidelity::Conditioned,
        &mut sched,
        &mut sink,
        RunConfig::uniform(),
    )
    .unwrap();
    sink.finish()
}

fn race_keys(trace: &TraceSet) -> BTreeSet<RaceKey> {
    let report = PostMortem::new(trace).analyze().unwrap();
    event_race_keys(&report.races, trace)
}

/// Union of race identities reached over a seed sweep on one backend.
fn swept_keys(
    program: &Program,
    hw: HwImpl,
    model: MemoryModel,
    seeds: std::ops::Range<u64>,
) -> BTreeSet<RaceKey> {
    let mut keys = BTreeSet::new();
    for seed in seeds {
        keys.extend(race_keys(&weak_trace(program, hw, model, seed)));
    }
    keys
}

/// Every catalog entry, all three backends, one seed matrix: race-free
/// entries stay race-free on every backend, and racy entries are caught
/// by each backend somewhere in the sweep — including the new pipeline.
#[test]
fn three_backends_sweep_every_catalog_entry() {
    for entry in catalog::all() {
        for hw in HwImpl::ALL {
            let keys = swept_keys(&entry.program, hw, MemoryModel::Wo, 0..8);
            if entry.racy {
                assert!(
                    !keys.is_empty(),
                    "{} on {hw}: racy entry produced no race over the seed matrix",
                    entry.name
                );
            } else {
                assert!(
                    keys.is_empty(),
                    "{} on {hw}: DRF entry produced races: {keys:?}",
                    entry.name
                );
            }
        }
    }
}

/// The conditioned pipeline's race identities on small entries are a
/// subset of what the verify oracle's bounded weak enumeration admits
/// (union over the weak models, store-buffer machine). Out-of-order
/// completion reaches *schedules* the store buffer cannot, but never an
/// access pair outside the enumerated race universe.
#[test]
fn ooo_races_lie_within_the_weak_enumeration() {
    let cfg = EnumConfig { max_executions: 50_000, max_steps_per_path: 300, spin_unroll_limit: 1 };
    for entry in [catalog::fig1a(), catalog::producer_consumer_racy(), catalog::fig1b()] {
        let mut admitted = BTreeSet::new();
        for model in [MemoryModel::Wo, MemoryModel::RCsc] {
            let weak = enumerate_weak(&entry.program, model, Fidelity::Conditioned, &cfg)
                .unwrap_or_else(|e| panic!("{}: enumeration failed: {e}", entry.name));
            for exec in &weak.executions {
                admitted.extend(race_keys(&exec.events));
            }
        }
        for model in [MemoryModel::Wo, MemoryModel::RCsc] {
            let ooo = swept_keys(&entry.program, HwImpl::Ooo, model, 0..32);
            assert!(
                ooo.is_subset(&admitted),
                "{} ({model}): OoO reached race keys outside the enumerated universe: {:?}",
                entry.name,
                ooo.difference(&admitted).collect::<Vec<_>>()
            );
            if !entry.racy {
                assert!(ooo.is_empty(), "{} ({model}): DRF entry raced on OoO", entry.name);
            }
        }
    }
}

/// A straight-line program with a fence after every instruction: no
/// reordering is possible on any backend, so final memory is fixed by
/// program order alone.
fn fully_fenced(name: &'static str, locations: u32, procs: Vec<Vec<Instr>>) -> Program {
    let mut prog = Program::new(name, locations);
    for code in procs {
        let mut fenced = Vec::with_capacity(code.len() * 2);
        for instr in code {
            fenced.push(instr);
            fenced.push(Instr::Fence);
        }
        fenced.push(Instr::Halt);
        prog.push_proc(fenced);
    }
    prog
}

fn st(value: i64, loc: u32) -> Instr {
    Instr::St { src: value.into(), addr: Addr::Abs(Location::new(loc)) }
}

fn ld(reg: u8, loc: u32) -> Instr {
    Instr::Ld { dst: Reg::new(reg), addr: Addr::Abs(Location::new(loc)) }
}

/// Fully-fenced programs (every instruction followed by `Fence`, each
/// location written by one processor) have determinate final memory;
/// all three backends must agree on it, at every seed, under a weak
/// model — the fences alone forbid every reordering.
#[test]
fn fully_fenced_programs_agree_on_final_memory() {
    let programs = vec![
        // Figure-1a shape, fenced: writer on x/y, reader on y/x.
        fully_fenced("fenced-fig1a", 2, vec![vec![st(1, 0), st(2, 1)], vec![ld(0, 1), ld(1, 0)]]),
        // Message passing: data then flag, reader polls nothing (reads
        // whatever is there) — memory is still determined by the writer.
        fully_fenced(
            "fenced-handoff",
            3,
            vec![vec![st(7, 0), st(1, 1)], vec![ld(0, 1), ld(1, 0), st(9, 2)]],
        ),
        // Disjoint read-modify-write targets: `Test&Set` leaves 1 at
        // each lock word no matter who wins.
        fully_fenced(
            "fenced-testset",
            2,
            vec![
                vec![Instr::TestSet { dst: Reg::new(0), addr: Addr::Abs(Location::new(0)) }],
                vec![Instr::TestSet { dst: Reg::new(0), addr: Addr::Abs(Location::new(1)) }],
            ],
        ),
    ];
    for program in programs {
        let reference =
            run_sc(&program, &mut RandomSched::new(0), &mut NullSink::new(), RunConfig::uniform())
                .unwrap()
                .final_memory;
        for hw in HwImpl::ALL {
            for seed in 0..6 {
                let mut sched = RandomWeakSched::new(seed, 0.3);
                let out = run_weak_hw(
                    hw,
                    &program,
                    MemoryModel::Wo,
                    Fidelity::Conditioned,
                    &mut sched,
                    &mut NullSink::new(),
                    RunConfig::uniform(),
                )
                .unwrap();
                assert_eq!(
                    out.final_memory,
                    reference,
                    "{} on {hw} seed {seed}: fenced program diverged from the SC reference",
                    program.name()
                );
            }
        }
    }
}

/// Under `MemoryModel::Sc` every backend executes strongly — the store
/// buffer is bufferless, the invalidation queue empty, the pipeline
/// non-speculative. Properly synchronized catalog programs with a
/// determinate result must then produce identical final memory on all
/// three backends at every seed.
#[test]
fn sc_model_final_memory_is_backend_independent() {
    for entry in [catalog::counter_locked(2, 3), catalog::producer_consumer(), catalog::ping_pong()]
    {
        let mut reference: Option<Vec<Value>> = None;
        for hw in HwImpl::ALL {
            for seed in 0..6 {
                let mut sched = RandomWeakSched::new(seed, 0.3);
                let out = run_weak_hw(
                    hw,
                    &entry.program,
                    MemoryModel::Sc,
                    Fidelity::Conditioned,
                    &mut sched,
                    &mut NullSink::new(),
                    RunConfig::uniform(),
                )
                .unwrap();
                match &reference {
                    None => reference = Some(out.final_memory),
                    Some(want) => assert_eq!(
                        &out.final_memory, want,
                        "{} on {hw} seed {seed}: SC-model final memory diverged",
                        entry.name
                    ),
                }
            }
        }
    }
}

/// Trace-shape parity: OoO traces decode through the same v2 binary
/// format and post-mortem pipeline as the other backends — per-proc
/// event order is program order, and a round trip through the binary
/// encoding is lossless.
#[test]
fn ooo_traces_round_trip_the_v2_format() {
    for entry in [catalog::fig1a(), catalog::work_queue_buggy(), catalog::peterson_racy()] {
        for seed in 0..4 {
            let trace = weak_trace(&entry.program, HwImpl::Ooo, MemoryModel::Wo, seed);
            let bytes = trace.to_binary();
            let decoded = TraceSet::from_binary(&bytes).unwrap();
            assert_eq!(decoded, trace, "{} seed {seed}: binary round trip", entry.name);
            // The decoded trace analyzes identically.
            assert_eq!(
                race_keys(&decoded),
                race_keys(&trace),
                "{} seed {seed}: analysis differs after round trip",
                entry.name
            );
        }
    }
}

// --- The raw ablation: speculated synchronization breaks Condition 3.4 ---

/// A deterministic, dependency-free weak scheduler (splitmix64) used for
/// the raw-fidelity golden test below: unlike `RandomWeakSched`, its
/// decisions do not depend on any external RNG crate, so the golden file
/// it produces is stable across toolchains and platforms.
struct SplitMixSched {
    state: u64,
    /// Drain probability in percent.
    drain_pct: u64,
}

impl SplitMixSched {
    fn new(seed: u64) -> Self {
        SplitMixSched { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15), drain_pct: 30 }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl wmrd_sim::WeakScheduler for SplitMixSched {
    fn next(&mut self, machine: &dyn wmrd_sim::DrainView) -> Option<wmrd_sim::WeakAction> {
        let runnable = machine.runnable_procs();
        let mut drains = Vec::new();
        for p in 0..machine.num_procs() {
            let proc = wmrd_trace::ProcId::new(p as u16);
            for idx in machine.drainable(proc) {
                drains.push(wmrd_sim::WeakAction::Drain(proc, idx));
            }
        }
        if runnable.is_empty() && drains.is_empty() {
            return None;
        }
        let drain_first =
            !drains.is_empty() && (runnable.is_empty() || self.next_u64() % 100 < self.drain_pct);
        if drain_first {
            let pick = self.next_u64() as usize % drains.len();
            Some(drains[pick])
        } else {
            let pick = self.next_u64() as usize % runnable.len();
            Some(wmrd_sim::WeakAction::Step(runnable[pick]))
        }
    }
}

/// Figure 1b with the `Unset`/`Test&Set` pairing replaced by a
/// `st_rel`/`ld_acq` flag handoff — the same race-free shape, but the
/// reader spins on an acquire *load*, so the raw pipeline can
/// speculate past it without the Test&Set self-observation livelock
/// raw buffer-style machines exhibit on the original.
fn fig1b_relacq() -> Program {
    let (x, y, s) = (Location::new(0), Location::new(1), Location::new(2));
    let mut prog = Program::new("fig1b-relacq", 3);
    prog.set_init(s, Value::new(1)); // "held" until P0 releases
    prog.push_proc(vec![
        st(1, 0),
        st(1, 1),
        Instr::StRel { src: 0i64.into(), addr: Addr::Abs(s) },
        Instr::Halt,
    ]);
    prog.push_proc(vec![
        Instr::LdAcq { dst: Reg::new(0), addr: Addr::Abs(s) }, // 0: spin
        Instr::Bnz { cond: Reg::new(0), target: 0 },
        Instr::Ld { dst: Reg::new(1), addr: Addr::Abs(y) },
        Instr::Ld { dst: Reg::new(2), addr: Addr::Abs(x) },
        Instr::Halt,
    ]);
    prog
}

/// Condition 3.4 on the conditioned OoO pipeline, raw ablation on the
/// deliberately broken one: the default pipeline keeps every race-free
/// execution of these race-free programs sequentially consistent,
/// while `Fidelity::Raw` produces witnesses that are race-free yet
/// non-SC on Figure-1b-style flag handoffs. The full per-seed verdict
/// table is pinned as a golden file
/// (`tests/data/ooo/raw_witnesses.txt`; regenerate with
/// `WMRD_REGOLD=1 cargo test -p wmrd-xtests --test ooo`).
#[test]
fn ooo_raw_fidelity_yields_non_sc_witnesses_with_golden_table() {
    let mut lines = Vec::new();
    let mut raw_violations = 0usize;
    let programs =
        vec![fig1b_relacq(), catalog::producer_consumer().program, catalog::ping_pong().program];
    for program in &programs {
        for fidelity in [Fidelity::Conditioned, Fidelity::Raw] {
            for seed in 0..12u64 {
                let mut sched = SplitMixSched::new(seed);
                let mut sink = wmrd_trace::OpRecorder::new(program.num_procs());
                run_weak_hw(
                    HwImpl::Ooo,
                    program,
                    MemoryModel::Wo,
                    fidelity,
                    &mut sched,
                    &mut sink,
                    RunConfig::uniform(),
                )
                .unwrap();
                let sc = wmrd_verify::is_sequentially_consistent(
                    &sink.finish(),
                    &program.initial_memory(),
                );
                if fidelity == Fidelity::Conditioned {
                    // These programs are DRF: the conditioned pipeline
                    // must keep every execution SC (Condition 3.4(1)).
                    assert!(sc, "{} seed {seed}: conditioned OoO broke SC", program.name());
                } else if !sc {
                    raw_violations += 1;
                }
                let tag = match fidelity {
                    Fidelity::Conditioned => "conditioned",
                    Fidelity::Raw => "raw",
                };
                lines.push(format!(
                    "{:<20} {:<11} seed={:<2} sc={}",
                    program.name(),
                    tag,
                    seed,
                    if sc { "yes" } else { "NO" }
                ));
            }
        }
    }
    assert!(raw_violations >= 1, "raw OoO produced no race-free-but-non-SC witness over the sweep");
    let rendered = format!("{}\n", lines.join("\n"));
    let path = std::path::PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/data/ooo/raw_witnesses.txt"
    ));
    if std::env::var("WMRD_REGOLD").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path:?} ({e}); run with WMRD_REGOLD=1"));
    assert_eq!(rendered, expected, "raw-witness table diverged (WMRD_REGOLD=1 regenerates)");
}
