//! Cross-crate contracts of the exploration engine: seeded-scheduler
//! reproducibility, worker-count independence, the cross-execution
//! yield over the catalog, and the repro loop.

use std::collections::BTreeSet;

use wmrd_core::{event_race_keys, PairingPolicy, PostMortem, RaceKey};
use wmrd_explore::{replay, run_campaign, CampaignSpec, PostMortemPolicy};
use wmrd_progs::catalog;
use wmrd_sim::{
    run_sc, run_weak_hw, Fidelity, HwImpl, MemoryModel, Program, RandomSched, RandomWeakSched,
    RunConfig,
};
use wmrd_trace::{Metrics, TraceBuilder, TraceSet};

fn sc_trace(program: &Program, seed: u64) -> TraceSet {
    let mut sink = TraceBuilder::new(program.num_procs());
    run_sc(program, &mut RandomSched::new(seed), &mut sink, RunConfig::default()).unwrap();
    sink.finish()
}

fn weak_trace(program: &Program, hw: HwImpl, seed: u64) -> TraceSet {
    let mut sched = RandomWeakSched::new(seed, 0.3);
    let mut sink = TraceBuilder::new(program.num_procs());
    run_weak_hw(
        hw,
        program,
        MemoryModel::Wo,
        Fidelity::Conditioned,
        &mut sched,
        &mut sink,
        RunConfig::default(),
    )
    .unwrap();
    sink.finish()
}

/// The races one single default-configuration run reaches: exactly what
/// `wmrd run <prog> --model wo` analyzes (seed 0, store buffers, drain
/// probability 0.3).
fn single_default_run_keys(program: &Program) -> BTreeSet<RaceKey> {
    let trace = weak_trace(program, HwImpl::StoreBuffer, 0);
    let report = PostMortem::new(&trace).analyze().unwrap();
    event_race_keys(&report.races, &trace)
}

/// Every seeded scheduler must replay byte-identically: same seed, same
/// trace, down to the binary encoding.
#[test]
fn seeded_schedulers_replay_byte_identically() {
    let program = catalog::work_queue_buggy().program;
    for seed in [0u64, 1, 17, 4096] {
        let a = sc_trace(&program, seed);
        let b = sc_trace(&program, seed);
        assert_eq!(a, b, "RandomSched seed {seed}");
        assert_eq!(a.to_binary(), b.to_binary(), "RandomSched seed {seed}: bytes");
        for hw in HwImpl::ALL {
            let a = weak_trace(&program, hw, seed);
            let b = weak_trace(&program, hw, seed);
            assert_eq!(a, b, "RandomWeakSched seed {seed} on {hw}");
            assert_eq!(a.to_binary(), b.to_binary(), "RandomWeakSched seed {seed} on {hw}: bytes");
        }
    }
    // Different seeds must actually diversify schedules somewhere.
    let traces: BTreeSet<Vec<u8>> =
        (0..16).map(|seed| weak_trace(&program, HwImpl::StoreBuffer, seed).to_binary()).collect();
    assert!(traces.len() > 1, "16 seeds produced one schedule — the seeding is broken");
}

/// Campaign reports are a function of (program, spec) alone: any worker
/// count produces the same report, so findings can be quoted from a
/// parallel hunt and re-checked serially.
#[test]
fn campaign_report_is_independent_of_worker_count() {
    let program = catalog::work_queue_buggy().program;
    let spec = CampaignSpec::new(0, 24)
        .with_hws(HwImpl::ALL.to_vec())
        .with_models(vec![MemoryModel::Wo, MemoryModel::RCsc]);
    let serial = run_campaign(&program, &spec, 1, &Metrics::disabled()).unwrap();
    for jobs in [2, 4, 8] {
        let parallel = run_campaign(&program, &spec, jobs, &Metrics::disabled()).unwrap();
        assert_eq!(serial, parallel, "jobs=1 vs jobs={jobs}");
    }
}

/// The tentpole claim: across the racy half of the catalog, a seed
/// sweep finds race identities that the single default-seed `run`
/// misses — and never loses one it found.
#[test]
fn campaign_extends_single_seed_coverage_over_the_catalog() {
    let mut extended = Vec::new();
    for entry in catalog::all().into_iter().filter(|e| e.racy) {
        let baseline = single_default_run_keys(&entry.program);
        // `Always` makes the per-seed analysis exhaustive, so superset
        // is a hard guarantee (seed 0 is one of the campaign's points).
        let spec = CampaignSpec::new(0, 96).with_postmortem(PostMortemPolicy::Always);
        let report = run_campaign(&entry.program, &spec, 4, &Metrics::disabled()).unwrap();
        let campaign: BTreeSet<RaceKey> = report.keys().copied().collect();
        assert!(!campaign.is_empty(), "{}: campaign found no races in a racy program", entry.name);
        assert!(
            campaign.is_superset(&baseline),
            "{}: campaign lost races the single run found",
            entry.name
        );
        if campaign.len() > baseline.len() {
            extended.push(entry.name);
        }
    }
    assert!(
        !extended.is_empty(),
        "no catalog program had a race reachable only beyond the default seed"
    );
}

/// Every campaign finding must reproduce: feeding its first-reaching
/// coordinates back through `replay` reaches the same race identity.
#[test]
fn findings_reproduce_from_their_first_reaching_seed() {
    for entry in [catalog::work_queue_buggy(), catalog::fig1a(), catalog::peterson_racy()] {
        let spec = CampaignSpec::new(0, 32).with_hws(vec![HwImpl::StoreBuffer, HwImpl::InvalQueue]);
        let report = run_campaign(&entry.program, &spec, 4, &Metrics::disabled()).unwrap();
        assert!(!report.is_race_free(), "{} is racy", entry.name);
        for finding in &report.races {
            let replayed =
                replay(&entry.program, &finding.first, spec.config, spec.pairing).unwrap();
            assert!(
                replayed.keys.contains(&finding.key),
                "{}: seed {} on {} does not reproduce {:?}",
                entry.name,
                finding.first.seed,
                finding.first.hw,
                finding.key
            );
        }
    }
}

/// Race-free catalog programs stay race-free under the sweep, on both
/// hardware styles: exploration must not invent races.
#[test]
fn race_free_catalog_programs_survive_the_sweep() {
    for entry in [catalog::producer_consumer(), catalog::fig1b()] {
        let spec = CampaignSpec::new(0, 24).with_hws(vec![HwImpl::StoreBuffer, HwImpl::InvalQueue]);
        let report = run_campaign(&entry.program, &spec, 4, &Metrics::disabled()).unwrap();
        assert!(
            report.is_race_free(),
            "{}: exploration reported races in a DRF program: {:?}",
            entry.name,
            report.races
        );
    }
}

/// The default pairing the engine analyzes with matches what the
/// single-run pipeline uses, so coverage comparisons are apples to
/// apples.
#[test]
fn campaign_defaults_match_the_single_run_pipeline() {
    let spec = CampaignSpec::new(0, 4);
    assert_eq!(spec.hws, vec![HwImpl::StoreBuffer]);
    assert_eq!(spec.models, vec![MemoryModel::Wo]);
    assert_eq!(spec.drain_probs, vec![0.3]);
    assert_eq!(spec.pairing, PairingPolicy::ByRole);
    assert_eq!(spec.fidelity, Fidelity::Conditioned);
}
