//! Cross-validation of the two analysis granularities.
//!
//! Section 4.1 lifts the operation-level race definition to events and
//! argues nothing is lost: an event-level race stands for one or more
//! operation-level races and vice versa. Because coarsening can only
//! *add* ordering between whole events when their constituent operations
//! are already ordered, the two analyses must agree exactly on which
//! (processor, location, access-kind) race signatures an execution
//! exhibits. These tests enforce that equivalence on the catalog and on
//! random programs.

use wmrd_core::{ops::OpAnalysis, PairingPolicy, PostMortem};
use wmrd_progs::{catalog, generate};
use wmrd_sim::{run_sc, run_weak, Fidelity, MemoryModel, RandomSched, RandomWeakSched, RunConfig};
use wmrd_trace::{MultiSink, OpRecorder, OpTrace, TraceBuilder, TraceSet};
use wmrd_verify::{event_race_signatures, op_race_signatures, RaceSignature};

fn traced_sc(program: &wmrd_sim::Program, seed: u64) -> (TraceSet, OpTrace) {
    let mut sink = MultiSink::new(
        TraceBuilder::new(program.num_procs()),
        OpRecorder::new(program.num_procs()),
    );
    run_sc(program, &mut RandomSched::new(seed), &mut sink, RunConfig::uniform()).unwrap();
    let (b, r) = sink.into_inner();
    (b.finish(), r.finish())
}

fn traced_weak(program: &wmrd_sim::Program, model: MemoryModel, seed: u64) -> (TraceSet, OpTrace) {
    let mut sink = MultiSink::new(
        TraceBuilder::new(program.num_procs()),
        OpRecorder::new(program.num_procs()),
    );
    let mut sched = RandomWeakSched::new(seed, 0.3);
    run_weak(program, model, Fidelity::Conditioned, &mut sched, &mut sink, RunConfig::uniform())
        .unwrap();
    let (b, r) = sink.into_inner();
    (b.finish(), r.finish())
}

fn signatures_agree(events: &TraceSet, ops: &OpTrace, context: &str) {
    for policy in [PairingPolicy::ByRole, PairingPolicy::AllSync] {
        let report = PostMortem::new(events).pairing(policy).analyze().unwrap();
        let esigs: std::collections::HashSet<RaceSignature> =
            event_race_signatures(&report.races, events);
        let analysis = OpAnalysis::analyze(ops, policy).unwrap();
        let osigs = op_race_signatures(analysis.races(), ops);
        assert_eq!(
            esigs, osigs,
            "{context} ({policy}): event-level and operation-level race signatures differ"
        );
    }
}

#[test]
fn granularities_agree_on_catalog_sc_executions() {
    for entry in catalog::all() {
        for seed in 0..5 {
            let (events, ops) = traced_sc(&entry.program, seed);
            signatures_agree(&events, &ops, &format!("{} seed {seed}", entry.name));
        }
    }
}

#[test]
fn granularities_agree_on_catalog_weak_executions() {
    for entry in catalog::all() {
        for model in [MemoryModel::Wo, MemoryModel::RCsc] {
            for seed in 0..3 {
                let (events, ops) = traced_weak(&entry.program, model, seed);
                signatures_agree(&events, &ops, &format!("{} {model} seed {seed}", entry.name));
            }
        }
    }
}

#[test]
fn granularities_agree_on_random_programs() {
    for seed in 0..15 {
        let cfg = generate::GenConfig {
            procs: 3,
            shared_locations: 6,
            sections_per_proc: 4,
            ops_per_section: 5,
            rogue_fraction: 0.5,
            seed,
        };
        let program = generate::racy(&cfg);
        let (events, ops) = traced_sc(&program, seed);
        signatures_agree(&events, &ops, &format!("gen-racy seed {seed}"));
    }
}

#[test]
fn event_analysis_never_invents_or_loses_racy_verdicts() {
    // The boolean verdict (any data race at all) must agree even when the
    // signature sets are built differently.
    for seed in 0..20 {
        let cfg = generate::GenConfig {
            rogue_fraction: seed as f64 / 20.0,
            ..generate::GenConfig::default().with_seed(seed)
        };
        let program = generate::racy(&cfg);
        let (events, ops) = traced_sc(&program, 3);
        let report = PostMortem::new(&events).analyze().unwrap();
        let analysis = OpAnalysis::analyze(&ops, PairingPolicy::ByRole).unwrap();
        assert_eq!(
            report.is_race_free(),
            analysis.data_races().count() == 0,
            "seed {seed}: verdicts diverge"
        );
    }
}

#[test]
fn on_the_fly_matches_postmortem_verdict_with_unbounded_history() {
    use wmrd_core::{OnTheFly, OnTheFlyConfig};
    use wmrd_trace::{OpClass, TraceSink};
    for seed in 0..10 {
        let cfg = generate::GenConfig {
            rogue_fraction: 0.5,
            ..generate::GenConfig::default().with_seed(seed)
        };
        let program = generate::racy(&cfg);
        let (events, ops) = traced_sc(&program, seed);
        let report = PostMortem::new(&events).analyze().unwrap();

        let mut detector = OnTheFly::new(program.num_procs(), OnTheFlyConfig::default());
        // Replay in the recorded issue order — what the detector would
        // have observed live.
        for op in ops.iter_issue_order() {
            match op.class {
                OpClass::Data => {
                    detector.data_access(op.id.proc, op.loc, op.kind, op.value, op.observed_write)
                }
                OpClass::Sync(role) => detector.sync_access(
                    op.id.proc,
                    op.loc,
                    op.kind,
                    role,
                    op.value,
                    op.observed_write,
                ),
            };
        }
        let otf_races = detector.finish();
        // The on-the-fly detector's location-clock pairing is coarser
        // than exact so1 pairing, so it may *miss* races the post-mortem
        // finds, but a race-free post-mortem verdict means the on-the-fly
        // detector must also find nothing... the reverse containment: if
        // on-the-fly reports a race, the execution really races.
        if report.is_race_free() {
            assert!(
                otf_races.is_empty(),
                "seed {seed}: on-the-fly reported races on a race-free execution"
            );
        }
    }
}
