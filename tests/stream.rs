//! Tentpole cross-check for online detection: the incremental
//! [`StreamDetector`] — epoch-compressed, fed operation records in
//! arbitrary chunks — reports exactly the race identities the
//! post-mortem analysis finds on the reassembled trace. Checked over
//! every catalog workload, several seeds, both pairing policies, and
//! several chunk granularities, because the detector's fast path
//! (exclusive epochs) and slow path (shared class tables) partition
//! the inputs in ways a single workload would not cover.

use wmrd_core::{event_race_keys, PairingPolicy, PostMortem, StreamDetector};
use wmrd_progs::catalog;
use wmrd_sim::{run_weak_hw, Fidelity, HwImpl, MemoryModel, Program, RandomWeakSched, RunConfig};
use wmrd_trace::{StreamDecoder, StreamWriter, TraceBuilder};

/// One weak execution captured as operation-granular `WMRS` bytes.
fn wmrs_bytes(program: &Program, hw: HwImpl, seed: u64) -> Vec<u8> {
    let mut sched = RandomWeakSched::new(seed, 0.3);
    let mut writer = StreamWriter::new(Vec::new(), program.num_procs());
    run_weak_hw(
        hw,
        program,
        MemoryModel::Wo,
        Fidelity::Conditioned,
        &mut sched,
        &mut writer,
        RunConfig::default(),
    )
    .unwrap();
    writer.finish().unwrap()
}

/// Streams `bytes` through decoder + detector in `chunk`-sized pieces
/// while reassembling the trace, then asserts the online race-key set
/// equals the post-mortem one.
fn assert_streamed_equals_postmortem(
    name: &str,
    bytes: &[u8],
    pairing: PairingPolicy,
    chunk: usize,
) {
    let mut decoder = StreamDecoder::new();
    let mut detector = StreamDetector::new(0, pairing);
    let mut builder = TraceBuilder::new(0);
    let mut fed = 0u64;
    for part in bytes.chunks(chunk) {
        let mut records = Vec::new();
        decoder.push(part, &mut records).unwrap();
        for r in &records {
            r.apply(&mut builder);
        }
        detector.feed(&records);
        fed += records.len() as u64;
    }
    decoder.finish().unwrap();
    assert_eq!(detector.events(), fed, "{name}: detector event accounting drifted");

    let trace = builder.finish();
    let report = PostMortem::new(&trace).pairing(pairing).analyze().unwrap();
    let postmortem = event_race_keys(&report.races, &trace);
    assert_eq!(
        detector.race_keys(),
        &postmortem,
        "{name}: online race keys diverged from post-mortem ({pairing:?}, chunk {chunk})"
    );
}

/// The headline equivalence, swept across the whole catalog. Chunk
/// sizes include one that splits the 6-byte header and every record
/// (7), a mid-size that splits some records (256), and one covering
/// the entire stream.
#[test]
fn streamed_race_keys_equal_postmortem_across_the_catalog() {
    let entries = catalog::all();
    assert!(entries.len() >= 17, "catalog shrank to {} entries", entries.len());
    for entry in &entries {
        for seed in 0..3u64 {
            let bytes = wmrs_bytes(&entry.program, HwImpl::StoreBuffer, seed);
            for pairing in [PairingPolicy::ByRole, PairingPolicy::AllSync] {
                for chunk in [7usize, 256, usize::MAX] {
                    assert_streamed_equals_postmortem(entry.name, &bytes, pairing, chunk);
                }
            }
        }
    }
}

/// The other weak-hardware style drives different interleavings into
/// the detector; the equivalence must not depend on the store-buffer
/// shape of reordering.
#[test]
fn streamed_race_keys_equal_postmortem_under_invalidation_queues() {
    for entry in [catalog::fig1a(), catalog::work_queue_buggy(), catalog::peterson_racy()] {
        for seed in 0..3u64 {
            let bytes = wmrs_bytes(&entry.program, HwImpl::InvalQueue, seed);
            assert_streamed_equals_postmortem(entry.name, &bytes, PairingPolicy::ByRole, 64);
        }
    }
}

/// Online means online: a race is reported by `feed` the moment its
/// second access arrives, so a strict prefix of the stream already
/// carries the finding — there is no end-of-stream settlement step.
#[test]
fn races_surface_the_moment_the_second_access_arrives() {
    let entry = catalog::fig1a();
    let bytes = wmrs_bytes(&entry.program, HwImpl::StoreBuffer, 2);
    let mut decoder = StreamDecoder::new();
    let mut records = Vec::new();
    decoder.push(&bytes, &mut records).unwrap();
    decoder.finish().unwrap();

    let mut detector = StreamDetector::new(0, PairingPolicy::ByRole);
    let mut first_hit = None;
    for (i, r) in records.iter().enumerate() {
        let new = detector.feed(std::slice::from_ref(r));
        if first_hit.is_none() && !new.is_empty() {
            first_hit = Some(i);
        }
    }
    let hit = first_hit.expect("fig1a under WO with seed 2 is a known racy execution");

    // Replaying exactly that prefix reproduces the mid-stream finding.
    let mut prefix = StreamDetector::new(0, PairingPolicy::ByRole);
    prefix.feed(&records[..=hit]);
    assert!(
        !prefix.race_keys().is_empty(),
        "the prefix that triggered the race must already contain it"
    );
}
