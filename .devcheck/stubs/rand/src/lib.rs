//! Offline stand-in for `rand` 0.8: just enough surface for the wmrd
//! workspace (StdRng::seed_from_u64, gen_range over integer ranges,
//! gen_bool). Deterministic splitmix64 stream — sequences differ from
//! the real StdRng, so seed-keyed golden values will not match, but
//! every seed is still a reproducible schedule.

use std::ops::Range;

/// Seed-construction surface used by the workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable from a `Range` by `Rng::gen_range`.
pub trait UniformInt: Copy {
    fn sample(next: u64, range: Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(next: u64, range: Range<Self>) -> Self {
                assert!(
                    range.start < range.end,
                    "gen_range called with empty range"
                );
                let span = (range.end as i128 - range.start as i128) as u128;
                let off = (next as u128 % span) as i128;
                (range.start as i128 + off) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The sampling surface used by the workspace.
pub trait Rng {
    /// Advances the stream by one raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range` (panics when empty, like real rand).
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Concrete generators.
pub mod rngs {
    /// Deterministic splitmix64 generator standing in for rand's StdRng.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9e3779b97f4a7c15) }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}
