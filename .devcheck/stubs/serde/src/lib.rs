//! Offline stand-in for `serde`: marker traits with blanket impls, so
//! `#[derive(Serialize, Deserialize)]` (expanding to nothing via the
//! stub `serde_derive`) and all `T: Serialize` bounds compile. No
//! actual serialization happens — `serde_json` stubs error at runtime.

/// Marker standing in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`; satisfied by every type.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
