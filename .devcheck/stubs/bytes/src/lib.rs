//! Offline stand-in for `bytes`: the `BufMut` methods the wmrd trace
//! encoder calls, implemented for `Vec<u8>` with the same big-endian
//! byte order as the real crate, so binary traces are byte-identical.

/// Append-only buffer writer (big-endian, like real `bytes`).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);
    fn put_u8(&mut self, v: u8);
    fn put_u16(&mut self, v: u16);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_i64(&mut self, v: i64);
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_i64(&mut self, v: i64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
}
