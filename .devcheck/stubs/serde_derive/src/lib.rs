//! Offline stand-in for `serde_derive`: the derives expand to nothing.
//! The stub `serde` traits have blanket impls, so every type already
//! satisfies `Serialize`/`Deserialize` bounds; the macros only need to
//! exist (and accept `#[serde(...)]` attributes) for the real sources
//! to compile unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
