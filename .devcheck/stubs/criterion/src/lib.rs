//! Offline placeholder for `criterion` so dev-dependency resolution
//! succeeds when building the experiments binary. Bench targets are
//! NOT compiled in the devcheck workspace; run them in the real one.
