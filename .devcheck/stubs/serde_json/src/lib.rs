//! Offline stand-in for `serde_json`: every entry point compiles with
//! the real signatures but returns `Err` at runtime. Paths that
//! round-trip JSON (`--trace t.json`, `query ... stats`, file-backed
//! catalogs) therefore fail with a clear message in the devcheck
//! build; binary traces and the in-memory daemon are unaffected.

use std::fmt;

/// Runtime error carried by every stubbed entry point.
pub struct Error {
    msg: &'static str,
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: {}", self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: {}", self.msg)
    }
}

impl std::error::Error for Error {}

fn unsupported() -> Error {
    Error { msg: "JSON serialization is unavailable in the devcheck stub build" }
}

#[allow(clippy::missing_errors_doc)]
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String, Error> {
    Err(unsupported())
}

#[allow(clippy::missing_errors_doc)]
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String, Error> {
    Err(unsupported())
}

#[allow(clippy::missing_errors_doc)]
pub fn to_vec<T: ?Sized + serde::Serialize>(_value: &T) -> Result<Vec<u8>, Error> {
    Err(unsupported())
}

#[allow(clippy::missing_errors_doc)]
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T, Error> {
    Err(unsupported())
}

/// Stand-in for `serde_json::Map` (object key order is irrelevant to
/// the stub — nothing ever serializes).
pub type Map<K, V> = std::collections::BTreeMap<K, V>;

/// Minimal stand-in for `serde_json::Value`: just enough shape for
/// code that builds JSON envelopes (`to_value` + `as_object_mut` +
/// `insert`) to compile. `to_value` errors at runtime like every other
/// stubbed entry point, so no `Value` is ever actually constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The only variant the `json!` stub macro produces.
    Null,
    /// An object, for `as_object_mut`-style envelope edits.
    Object(Map<String, Value>),
}

impl Value {
    /// Mutable object access, mirroring the real API.
    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            Value::Null => None,
        }
    }
}

/// Stand-in for `serde_json::json!`: type-checks, produces `Null`.
#[macro_export]
macro_rules! json {
    ($($json:tt)*) => {
        $crate::Value::Null
    };
}

#[allow(clippy::missing_errors_doc)]
pub fn to_value<T: serde::Serialize>(_value: T) -> Result<Value, Error> {
    Err(unsupported())
}

#[allow(clippy::missing_errors_doc)]
pub fn from_slice<'a, T: serde::Deserialize<'a>>(_v: &'a [u8]) -> Result<T, Error> {
    Err(unsupported())
}
