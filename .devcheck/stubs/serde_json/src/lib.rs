//! Offline stand-in for `serde_json`: every entry point compiles with
//! the real signatures but returns `Err` at runtime. Paths that
//! round-trip JSON (`--trace t.json`, `query ... stats`, file-backed
//! catalogs) therefore fail with a clear message in the devcheck
//! build; binary traces and the in-memory daemon are unaffected.

use std::fmt;

/// Runtime error carried by every stubbed entry point.
pub struct Error {
    msg: &'static str,
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: {}", self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: {}", self.msg)
    }
}

impl std::error::Error for Error {}

fn unsupported() -> Error {
    Error { msg: "JSON serialization is unavailable in the devcheck stub build" }
}

#[allow(clippy::missing_errors_doc)]
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String, Error> {
    Err(unsupported())
}

#[allow(clippy::missing_errors_doc)]
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String, Error> {
    Err(unsupported())
}

#[allow(clippy::missing_errors_doc)]
pub fn to_vec<T: ?Sized + serde::Serialize>(_value: &T) -> Result<Vec<u8>, Error> {
    Err(unsupported())
}

#[allow(clippy::missing_errors_doc)]
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T, Error> {
    Err(unsupported())
}

#[allow(clippy::missing_errors_doc)]
pub fn from_slice<'a, T: serde::Deserialize<'a>>(_v: &'a [u8]) -> Result<T, Error> {
    Err(unsupported())
}
