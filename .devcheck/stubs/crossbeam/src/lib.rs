//! Offline stand-in for `crossbeam`: the `scope`/`spawn`/`join` shape
//! used by `wmrd_core::parallel`, executed INLINE (no threads). Results
//! are identical — the sharded detector is deterministic and
//! order-insensitive — only the parallel speedup is lost.

use std::any::Any;

/// Inline "scope": `spawn` runs the closure immediately.
pub struct Scope(());

/// Holds the already-computed result of an inline "spawn".
pub struct ScopedJoinHandle<T>(T);

impl Scope {
    /// Runs `f` now and wraps its result in a join handle.
    pub fn spawn<T, F: FnOnce(&Scope) -> T>(&self, f: F) -> ScopedJoinHandle<T> {
        ScopedJoinHandle(f(self))
    }
}

impl<T> ScopedJoinHandle<T> {
    /// Returns the stored result; never fails inline.
    #[allow(clippy::missing_errors_doc)]
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        Ok(self.0)
    }
}

/// Runs `f` with an inline scope; always `Ok`.
#[allow(clippy::missing_errors_doc)]
pub fn scope<R, F: FnOnce(&Scope) -> R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>> {
    Ok(f(&Scope(())))
}
