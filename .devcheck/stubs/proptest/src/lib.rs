//! Offline placeholder for `proptest` so dev-dependency resolution
//! succeeds when building examples. Property tests are NOT compiled in
//! the devcheck workspace; run them in the real workspace.
