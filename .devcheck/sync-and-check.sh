#!/bin/sh
# Sync the real workspace sources into the stub workspace and build the
# three runtime surfaces offline. Run from anywhere:
#
#   sh .devcheck/sync-and-check.sh
#
# then drive .devcheck/target/debug/{wmrd,experiments,examples/*}.
# See Cargo.toml in this directory for what the stubs do and don't
# guarantee.
set -eu

cd "$(dirname "$0")"

rm -rf crates tests examples
cp -r ../crates ../tests ../examples .

echo "devcheck: sources synced; building surfaces (offline, stub deps)"
cargo build --offline -p wmrd-cli
cargo build --offline -p wmrd-xtests --examples
cargo build --offline -p wmrd-bench --bin experiments
echo "devcheck: surfaces built under .devcheck/target/debug"
