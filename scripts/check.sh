#!/bin/sh
# The full local gate: formatting, lints as errors, and the test suite.
# Run from the repository root (or any subdirectory):
#
#   sh scripts/check.sh
#
# CI and reviewers run exactly this; a clean exit here means the PR is
# mergeable from the code-quality side.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "check.sh: all gates passed"
