#!/bin/sh
# The full local gate: formatting, lints as errors, and the test suite.
# Run from the repository root (or any subdirectory):
#
#   sh scripts/check.sh
#
# CI and reviewers run exactly this; a clean exit here means the PR is
# mergeable from the code-quality side.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== exploration engine tests"
cargo test -q -p wmrd-explore

echo "== fault-injection and trace-hardening suites"
# The corrupt-trace corpus, the v2 round-trip/prefix properties, and
# the fault-injection e2e campaign (tests/faults.rs) — the graceful-
# degradation contract of the trace pipeline.
cargo test -q -p wmrd-xtests --test trace_files --test props --test faults

echo "== serve smoke (daemon + catalog e2e)"
# The daemon contract end to end: 8 concurrent submitters over a unix
# socket converge to byte-identical query output at any worker count,
# corrupt submissions (tests/data/corrupt) are rejected with a typed
# error without killing the daemon, zero-capacity queues answer BUSY,
# interleaved STREAM sessions land in the same catalog as SUBMITs with
# slot-bounded backpressure, and a torn journal tail reopens to the
# committed record prefix.
cargo test -q -p wmrd-xtests --test serve
cargo test -q -p wmrd-serve -p wmrd-catalog

echo "== stream smoke (online detector == post-mortem)"
# The tentpole equivalence: the streaming detector's race-key set must
# equal the post-mortem set over the entire program catalog, every
# chunking, both pairing policies (tests/stream.rs).
cargo test -q -p wmrd-xtests --test stream

echo "== serve smoke (CLI round trip)"
# The wmrd serve/submit/stream/query commands against a live daemon,
# plus explore --sink chunked streaming — asserted from the CLI test
# suite so the user-facing surface is exercised, not just the library.
cargo test -q -p wmrd-cli submit_and_query_against_a_live_daemon
cargo test -q -p wmrd-cli stream_against_a_live_daemon
cargo test -q -p wmrd-cli explore_sink_streams_racy_traces

echo "== protocol documentation gate (SERVING.md)"
# Every verb the protocol parses must be documented with a framing
# example in SERVING.md; adding a verb without documenting it fails
# here. The verb list is extracted from the parser itself.
verbs=$(sed -n 's/^ *("\([A-Z]*\)", .*$/\1/p' crates/serve/src/protocol.rs | sort -u)
if [ -z "$verbs" ]; then
    echo "check.sh: could not extract verb list from crates/serve/src/protocol.rs" >&2
    exit 1
fi
for verb in $verbs; do
    if ! grep -q "$verb" SERVING.md; then
        echo "check.sh: protocol verb $verb is not documented in SERVING.md" >&2
        exit 1
    fi
done

echo "== lint smoke (static may-race analysis)"
# The static analyzer's unit suite, the golden/soundness xtest (every
# dynamic race from 64-seed campaigns over the catalog must be inside
# the static may-race set), and the CLI exit-status contract: race-free
# inputs exit 0, findings exit non-zero.
cargo test -q -p wmrd-lint
cargo test -q -p wmrd-xtests --test lint
cargo run -q -p wmrd-cli --bin wmrd -- lint examples/spinlock.wmrd counter-locked > /dev/null
if cargo run -q -p wmrd-cli --bin wmrd -- lint fig1a > /dev/null 2>&1; then
    echo "check.sh: wmrd lint fig1a must exit non-zero (it has may-race findings)" >&2
    exit 1
fi

echo "== fence smoke (delay-set classification + verified repair)"
# The delay-set layer end to end: the whole catalog classifies under
# --cycles without panicking (findings exit 1 — `all` includes racy
# entries), fig1b classifies weak-only with a no-op repair (the
# canonical false positive explained, not fenced), and a repaired
# racy entry verifies dynamically — race-free and Condition-3.4-clean
# on every backend, with the raw-ooo ablation still racing unrepaired.
rc=0
cargo run -q -p wmrd-cli --bin wmrd -- lint all --cycles > /dev/null 2>&1 || rc=$?
if [ "$rc" -gt 1 ]; then
    echo "check.sh: wmrd lint all --cycles crashed (exit $rc)" >&2
    exit 1
fi
fig1b_out=$(cargo run -q -p wmrd-cli --bin wmrd -- lint examples/fig1b.wmrd --cycles 2>/dev/null || true)
if ! echo "$fig1b_out" | grep -q "weak-only (sync chain via m\[2\])"; then
    echo "check.sh: fig1b must classify weak-only via the m[2] sync chain" >&2
    exit 1
fi
if ! echo "$fig1b_out" | grep -q "no-op (nothing to fix)"; then
    echo "check.sh: fig1b's repair must be a no-op (no fences on a race-free program)" >&2
    exit 1
fi
cargo run -q -p wmrd-cli --bin wmrd -- explore fig1a --verify-repair --seeds 0..16 --jobs 2 | grep -q "repair verified"
cargo run -q -p wmrd-cli --bin wmrd -- explore peterson-sync --verify-repair --seeds 0..24 --jobs 2 | grep -q "repair verified"

echo "== fence documentation gates"
# The --cycles/--repair surface must stay documented in the help text,
# DESIGN.md must keep §11 (delay-set analysis), E18 in EXPERIMENTS.md,
# and every lint.cycles.*/lint.repair.* metric key the code defines
# must appear in OBSERVABILITY.md (same discipline as the other gates).
if ! cargo run -q -p wmrd-cli --bin wmrd -- help | grep -q -- "--cycles"; then
    echo "check.sh: wmrd help does not document lint --cycles" >&2
    exit 1
fi
if ! grep -q "^## 11\. Delay-set" DESIGN.md; then
    echo "check.sh: DESIGN.md is missing the §11 delay-set section" >&2
    exit 1
fi
if ! grep -q "^## E18" EXPERIMENTS.md; then
    echo "check.sh: EXPERIMENTS.md is missing the E18 section" >&2
    exit 1
fi
fence_keys=$(sed -n 's/^.*"\(lint\.cycles\.[a-z_][a-z_]*\)".*$/\1/p
s/^.*"\(lint\.repair\.[a-z_][a-z_]*\)".*$/\1/p' crates/trace/src/metrics.rs | sort -u)
if [ -z "$fence_keys" ]; then
    echo "check.sh: could not extract lint.cycles.*/lint.repair.* keys from crates/trace/src/metrics.rs" >&2
    exit 1
fi
for key in $fence_keys; do
    if ! grep -q "$key" OBSERVABILITY.md; then
        echo "check.sh: metric key $key is not documented in OBSERVABILITY.md" >&2
        exit 1
    fi
done

echo "== predict smoke (predictive engine + soundness gate)"
# The predictive engine's unit suite, the golden/soundness xtest (every
# WCP prediction from the committed catalog traces must be reached by a
# real 64-seed campaign; >= 3 entries must show predicted-only yield —
# the E15 domination claim), and the CLI exit-status contract.
cargo test -q -p wmrd-predict
cargo test -q -p wmrd-xtests --test predict
cargo run -q -p wmrd-cli --bin wmrd -- predict counter-locked --model wo > /dev/null
if cargo run -q -p wmrd-cli --bin wmrd -- predict lazy-publish-racy --model wo --seed 2 --order wcp > /dev/null 2>&1; then
    echo "check.sh: wmrd predict lazy-publish-racy must exit non-zero (it predicts a race)" >&2
    exit 1
fi

echo "== predict documentation gates"
# The predict CLI surface must stay documented in the help text, E15 in
# EXPERIMENTS.md, and every predict.* metric key the code defines must
# appear in OBSERVABILITY.md (same discipline as the protocol gate).
if ! cargo run -q -p wmrd-cli --bin wmrd -- help | grep -q "wmrd predict"; then
    echo "check.sh: wmrd help does not document the predict command" >&2
    exit 1
fi
if ! grep -q "^## E15" EXPERIMENTS.md; then
    echo "check.sh: EXPERIMENTS.md is missing the E15 section" >&2
    exit 1
fi
predict_keys=$(sed -n 's/^.*"\(predict\.[a-z_][a-z_]*\)".*$/\1/p' crates/trace/src/metrics.rs | sort -u)
if [ -z "$predict_keys" ]; then
    echo "check.sh: could not extract predict.* keys from crates/trace/src/metrics.rs" >&2
    exit 1
fi
for key in $predict_keys serve.predictions; do
    if ! grep -q "$key" OBSERVABILITY.md; then
        echo "check.sh: metric key $key is not documented in OBSERVABILITY.md" >&2
        exit 1
    fi
done

echo "== ooo smoke (out-of-order pipeline backend)"
# The pipeline's in-module suite, the three-backend differential xtest
# (catalog sweep, enumeration subset, fenced/SC final-memory parity,
# raw-witness golden), and the CLI surface: every hardware style must
# parse on every command that takes --hw.
cargo test -q -p wmrd-sim ooo
cargo test -q -p wmrd-xtests --test ooo
cargo run -q -p wmrd-cli --bin wmrd -- run fig1a --hw ooo --model wo > /dev/null
cargo run -q -p wmrd-cli --bin wmrd -- check fig1b --hw ooo --seeds 4 > /dev/null
if cargo run -q -p wmrd-cli --bin wmrd -- run fig1a --hw rob --model wo > /dev/null 2>&1; then
    echo "check.sh: wmrd run --hw rob must exit non-zero (unknown hardware style)" >&2
    exit 1
fi

echo "== ooo documentation gates"
# The ooo hardware style must stay documented in the help text, E16 in
# EXPERIMENTS.md, and every ooo.* metric key the code defines must
# appear in OBSERVABILITY.md (same discipline as the predict gate).
if ! cargo run -q -p wmrd-cli --bin wmrd -- help | grep -q -- "--hw store-buffer|inval-queue|ooo"; then
    echo "check.sh: wmrd help does not document --hw ooo" >&2
    exit 1
fi
if ! grep -q "^## E16" EXPERIMENTS.md; then
    echo "check.sh: EXPERIMENTS.md is missing the E16 section" >&2
    exit 1
fi
ooo_keys=$(sed -n 's/^.*"\(ooo\.[a-z_][a-z_]*\)".*$/\1/p' crates/trace/src/metrics.rs | sort -u)
if [ -z "$ooo_keys" ]; then
    echo "check.sh: could not extract ooo.* keys from crates/trace/src/metrics.rs" >&2
    exit 1
fi
for key in $ooo_keys; do
    if ! grep -q "$key" OBSERVABILITY.md; then
        echo "check.sh: metric key $key is not documented in OBSERVABILITY.md" >&2
        exit 1
    fi
done

echo "== capture smoke (real-thread tracing frontend)"
# The capture crate's unit suite, the e2e xtest (every registry
# workload analyzes across a seed matrix, racy workloads reach their
# expected RaceKeys from capture alone, clean workloads stay race-free
# under hb1 AND WCP prediction, zero-sync-event threads salvage, and a
# live daemon ingests captured traces over SUBMIT and STREAM), and the
# CLI surface: a racy capture must report its races inline.
cargo test -q -p wmrd-capture
cargo test -q -p wmrd-xtests --test capture
cargo run -q -p wmrd-cli --bin wmrd -- capture list > /dev/null
if ! cargo run -q -p wmrd-cli --bin wmrd -- capture publish-racy --seed 0 | grep -q "race "; then
    echo "check.sh: wmrd capture publish-racy must report at least one race key" >&2
    exit 1
fi

echo "== capture documentation gates"
# The capture CLI surface must stay documented in the help text, E17 in
# EXPERIMENTS.md, and every capture.* metric key the code defines must
# appear in OBSERVABILITY.md (same discipline as the predict gate).
if ! cargo run -q -p wmrd-cli --bin wmrd -- help | grep -q "wmrd capture"; then
    echo "check.sh: wmrd help does not document the capture command" >&2
    exit 1
fi
if ! grep -q "^## E17" EXPERIMENTS.md; then
    echo "check.sh: EXPERIMENTS.md is missing the E17 section" >&2
    exit 1
fi
capture_keys=$(sed -n 's/^.*"\(capture\.[a-z_][a-z_]*\)".*$/\1/p' crates/trace/src/metrics.rs | sort -u)
if [ -z "$capture_keys" ]; then
    echo "check.sh: could not extract capture.* keys from crates/trace/src/metrics.rs" >&2
    exit 1
fi
for key in $capture_keys; do
    if ! grep -q "$key" OBSERVABILITY.md; then
        echo "check.sh: metric key $key is not documented in OBSERVABILITY.md" >&2
        exit 1
    fi
done

echo "== explore crate hygiene"
# An #[ignore]d test in the exploration crate must carry its reason
# inline (`#[ignore = "..."]`); a bare #[ignore] silently shrinks the
# campaign engine's coverage.
if grep -rn '#\[ignore' crates/explore --include='*.rs' | grep -v 'ignore = "'; then
    echo "check.sh: bare #[ignore] in crates/explore — add a tracking reason" >&2
    exit 1
fi

echo "check.sh: all gates passed"
