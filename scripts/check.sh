#!/bin/sh
# The full local gate: formatting, lints as errors, and the test suite.
# Run from the repository root (or any subdirectory):
#
#   sh scripts/check.sh
#
# CI and reviewers run exactly this; a clean exit here means the PR is
# mergeable from the code-quality side.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== exploration engine tests"
cargo test -q -p wmrd-explore

echo "== fault-injection and trace-hardening suites"
# The corrupt-trace corpus, the v2 round-trip/prefix properties, and
# the fault-injection e2e campaign (tests/faults.rs) — the graceful-
# degradation contract of the trace pipeline.
cargo test -q -p wmrd-xtests --test trace_files --test props --test faults

echo "== explore crate hygiene"
# An #[ignore]d test in the exploration crate must carry its reason
# inline (`#[ignore = "..."]`); a bare #[ignore] silently shrinks the
# campaign engine's coverage.
if grep -rn '#\[ignore' crates/explore --include='*.rs' | grep -v 'ignore = "'; then
    echo "check.sh: bare #[ignore] in crates/explore — add a tracking reason" >&2
    exit 1
fi

echo "check.sh: all gates passed"
